"""Validated simulation configuration.

A :class:`SimulationConfig` pins every input of a run -- system size,
fault setup, algorithm, termination, seed -- so a run is a pure function
of its config.  Validation happens eagerly at construction time via
:meth:`SimulationConfig.validate`, with a configurable posture towards
the resilience bound: experiments that *deliberately* run below the
paper's bounds (the lower-bound demonstrations) opt out explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

from ..faults.adversary import Adversary
from ..faults.mixed_mode import StaticFaultAssignment
from ..faults.models import MobileModel, get_semantics
from ..msr.base import MSRFunction
from ..topology import DEFAULT_TOPOLOGY, Topology, topology_from_spec
from .families import DEFAULT_FAMILY
from .termination import FixedRounds, TerminationRule

__all__ = ["MobileFaultSetup", "StaticMixedSetup", "SimulationConfig"]

BoundCheck = Literal["error", "warn", "ignore"]


@dataclass(frozen=True)
class MobileFaultSetup:
    """Fault side of a run under a mobile Byzantine model."""

    model: MobileModel
    adversary: Adversary

    def min_processes(self, f: int) -> int:
        """Table 2 requirement for this model."""
        return get_semantics(self.model).required_n(f)

    def describe(self) -> str:
        return f"{self.model.value}/{self.adversary.describe()}"


@dataclass(frozen=True)
class StaticMixedSetup:
    """Fault side of a run under the static mixed-mode model."""

    assignment: StaticFaultAssignment
    adversary: Adversary

    def min_processes(self, f: int) -> int:
        """Kieckhafer-Azadmanesh requirement ``n > 3a + 2s + b``."""
        return self.assignment.counts.min_processes()

    def describe(self) -> str:
        return f"mixed{self.assignment.counts}/{self.adversary.describe()}"


@dataclass(frozen=True)
class SimulationConfig:
    """Complete, validated description of one simulation run."""

    n: int
    f: int
    initial_values: tuple[float, ...]
    algorithm: MSRFunction
    setup: MobileFaultSetup | StaticMixedSetup
    termination: TerminationRule = field(default_factory=lambda: FixedRounds(30))
    epsilon: float = 1e-3
    seed: int = 0
    max_rounds: int = 10_000
    #: "error" rejects configurations below the resilience bound,
    #: "warn" records the violation in the trace description,
    #: "ignore" is for deliberate below-bound experiments.
    bound_check: BoundCheck = "error"
    #: Protocol family executing the run (see
    #: :mod:`repro.runtime.families`): ``"bonomi"`` is the source
    #: paper's MSR voting protocol, ``"tseng"`` the improved
    #: mobile-fault algorithm of arXiv:1707.07659, ``"witness"`` the
    #: partial-connectivity relay protocol of arXiv:1206.0089.  The
    #: resilience bound is the *family's* requirement for the
    #: configured setup.
    family: str = DEFAULT_FAMILY
    #: Communication-graph spec (see :mod:`repro.topology`): the
    #: default ``"complete"`` is the paper's full mesh.  Validation
    #: resolves the spec at ``n`` and asks the configured family to
    #: accept the graph -- ``bonomi``/``tseng`` require completeness,
    #: ``witness`` runs on connected partially-connected graphs.
    topology: str = DEFAULT_TOPOLOGY

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise :class:`ValueError` on any inconsistent field."""
        if self.n < 1:
            raise ValueError(f"n must be positive, got {self.n}")
        if self.f < 0:
            raise ValueError(f"f must be non-negative, got {self.f}")
        if len(self.initial_values) != self.n:
            raise ValueError(
                f"got {len(self.initial_values)} initial values for n={self.n}"
            )
        if self.epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {self.epsilon}")
        if self.max_rounds < 1:
            raise ValueError(f"max_rounds must be positive, got {self.max_rounds}")
        if self.bound_check not in ("error", "warn", "ignore"):
            raise ValueError(f"invalid bound_check {self.bound_check!r}")
        try:
            family = self.protocol_family()
        except KeyError as exc:
            # args[0], not str(exc): str() of a KeyError re-quotes it.
            raise ValueError(exc.args[0]) from None
        # The family owns the topology admission rule: scalar MSR
        # voting needs the full mesh, relay-based families accept
        # connected partial graphs (and say which ones).
        family.check_topology(self.resolve_topology(), self)
        if isinstance(self.setup, StaticMixedSetup):
            self.setup.assignment.validate_for(self.n)
        if self.bound_check == "error" and not self.meets_bound():
            raise ValueError(
                f"n={self.n} is below the resilience bound "
                f"{self.required_n()} for {self.setup.describe()} with "
                f"f={self.f}; pass bound_check='ignore' to run anyway "
                "(lower-bound experiments do this deliberately)"
            )

    def protocol_family(self):
        """Resolve the configured :class:`~repro.runtime.families.ProtocolFamily`."""
        # Imported lazily: families may import runtime modules that in
        # turn import this one.
        from .families import get_family

        return get_family(self.family)

    def resolve_topology(self) -> Topology:
        """Resolve the configured topology spec at this ``n``.

        Memoized inside :func:`~repro.topology.topology_from_spec`, so
        repeated resolution (validation, network construction, family
        protocol builds) shares one graph object.
        """
        return topology_from_spec(self.topology, self.n)

    def required_n(self) -> int:
        """Minimum ``n`` the theory requires for this setup and family."""
        return self.protocol_family().min_processes(self.setup, self.f)

    def meets_bound(self) -> bool:
        """Whether this configuration satisfies the resilience bound."""
        return self.n >= self.required_n()

    def describe(self) -> str:
        """One-line config summary recorded in traces.

        The family tag is emitted only off the default so descriptions
        (and the golden reports embedding them) of pre-family configs
        are byte-identical.
        """
        bound_note = "" if self.meets_bound() else " [BELOW BOUND]"
        family_note = (
            "" if self.family == DEFAULT_FAMILY else f" family={self.family}"
        )
        # Like the family tag, the topology is emitted only off the
        # default so pre-topology descriptions stay byte-identical.
        topology_note = (
            "" if self.topology == DEFAULT_TOPOLOGY else f" topo={self.topology}"
        )
        return (
            f"n={self.n} f={self.f} {self.setup.describe()} "
            f"alg={self.algorithm.name} term={self.termination.describe()} "
            f"seed={self.seed}{family_note}{topology_note}{bound_note}"
        )

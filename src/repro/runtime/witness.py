"""The witness-based partial-connectivity family (arXiv:1206.0089).

Implements an approximate-agreement family after Li, Hurfin & Wang,
*Reaching Approximate Byzantine Consensus in Partially-Connected Mobile
Networks*: the first in-tree protocol defined over non-complete
communication graphs (:mod:`repro.topology`).  Where the Bonomi and
Tseng families fold "everybody's broadcast" each round -- which only
exists on the full mesh -- the witness family *relays* values hop by
hop and accepts a relayed value only when enough distinct neighbors
vouch for it.

**Phase structure.**  Rounds are grouped into gossip *phases* of
``L = diameter(topology)`` communication rounds (``L = 1`` on the
complete graph, where the family degenerates to a direct-broadcast MSR
fold).  Within phase ``p``:

* **every round** -- every correct node broadcasts its whole table of
  *verified* claims ``(origin, value)`` to its neighbors (at phase
  start that table is just its own estimate) and re-folds the table
  with the configured MSR function, healing corrupted estimates as the
  scalar families' per-round compute does;
* **phase end** -- the fold is strict (every node must have gathered
  enough verified mass) and its result is the value decisions and
  termination are read from.

Tables are re-sent whole each round rather than as one-shot deltas:
verified claims keep flowing, so a node whose gossip memory a
departing agent scrambled mid-phase re-verifies its neighborhood from
the repeats instead of starving at the fold, and a temporarily
fault-heavy neighborhood only *delays* verification by a round.  Per
round the work is O(edges x verified claims) with an early-out for
already-verified origins.

**Witness verification.**  A node ``i`` verifies a claim ``(o, x)``
when

* ``o`` is ``i`` itself or a direct neighbor that sent ``x``
  first-hand (the channel is authenticated), or
* at least ``f + 1`` *distinct neighbors relayed the identical claim
  in the same round* -- the witness set.  At most ``f`` processes are
  faulty in any round, so one of the witnesses was correct when it
  relayed, and correct nodes only relay claims they verified: by
  induction every verified claim traces back through correct
  relayers to a first-hand receipt from ``o``.

Synchrony makes the per-round threshold natural: all correct nodes at
hop distance ``d`` from an origin verify its claim by round ``d - 1``
of the phase and relay it from the next round on, so honest witness
sets arrive together (and keep arriving -- tables are re-sent whole).
The rule also neutralizes *forged* relays structurally: a fabricated
claim for a correct-at-phase-start origin can only ever gather the
``<= f`` faulty relayers of a round -- short of the threshold by
construction -- so the adversary's only levers are first-hand lies and
withholding.  Both are exactly what the repo's scalar fault plans
express (per-recipient send overrides and silence), which is why every
existing :class:`~repro.faults.value_strategies.ValueStrategy` applies
to this family unchanged: a faulty sender's message carries its
per-recipient scalar lie as its own claim and relays nothing.

If two different values for one origin reach the threshold at a node
(a first-hand equivocation relayed through disjoint witness sets), the
origin is provably faulty and the node excludes it from the fold
altogether.  Origins that never verify are omissions; the MSR
reduction tolerates the varying multiset sizes exactly as it tolerates
silence on the full mesh.

**Mobile faults.**  A departing agent's corruption travels through the
scalar seam (one value per cured node, exactly as in the Tseng
family): it scrambles the node's *estimate* and therefore its own
claim.  Cured-aware nodes (M1) generalize the paper's Lemma 1 guard to
phases -- knowing the estimate is garbage, they withhold their own
claim until the phase-end fold restores them -- while unaware cured
nodes (M2/M3) believe the garbage and claim it, paying into the same
trim budget as on the full mesh.  Verified *relay* entries survive a
departure: they are authenticated message-log state the neighborhood
re-confirms every round, so corrupting them is dominated by the
withholding the model already covers.  Occupied nodes end every round
with adversary-chosen garbage via the plan's compute corruptions,
exactly like the scalar families.  One caveat is inherited from the
phase structure: under the *unaware* models, each round of a phase can
mint fresh cured-garbage claims, so on graphs whose diameter exceeds
the Table 1 cured allowance the trim may no longer cover out-of-range
garbage -- the split-style in-range adversaries converge regardless,
and M1/M4 are unaffected.

**Resilience.**  The family keeps the model's Table 2 requirement on
``n`` and adds a graph admission rule checked at config validation:
the topology must be connected and every node needs degree at least
``2f + 1`` (``f`` neighbors may be faulty and withhold, and ``f + 1``
distinct honest-capable witnesses must remain reachable).  Heavier
partitioning degrades to omissions and, in the extreme, to the MSR
fold's canonical below-bound error.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Sequence

from ..msr.base import MSRFunction
from ..msr.multiset import ValueMultiset
from .families import ProtocolFamily, register_family
from .kernel import RoundKernel, compile_msr
from .protocol import StatefulRoundProtocol
from .trace import BroadcastOutbox

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..topology import Topology
    from .config import SimulationConfig
    from .controllers import RoundPlan

__all__ = ["WitnessFamily", "WitnessProtocol"]


class WitnessProtocol(StatefulRoundProtocol):
    """Per-run instance of the witness relay protocol."""

    family_name = "witness"
    #: Messages are variable-length claim tables, not scalars.
    message_arity = 2

    def __init__(
        self, n: int, f: int, function: MSRFunction, topology: "Topology"
    ) -> None:
        self.n = n
        self.f = f
        self.function = function
        self.topology = topology
        diameter = topology.diameter()
        if diameter != diameter or diameter == float("inf"):  # NaN/inf guard
            raise ValueError(
                f"witness: topology {topology.spec!r} is disconnected; "
                "relays cannot reach every node"
            )
        #: Communication rounds per gossip phase: far enough for every
        #: claim to cross the graph (1 on the complete graph).
        self.phase_length = max(1, int(diameter))
        # The topology is immutable for the protocol's lifetime: sort
        # each neighborhood once instead of per node per round (the
        # receive loop iterates senders in deterministic order).
        self._sorted_neighbors: list[list[int]] = [
            sorted(hood) for hood in topology.neighbor_sets
        ]
        self._values: dict[int, float] = {}
        # Per-node phase state: verified claims (origin -> value, None
        # marking a provably-faulty origin excluded from the fold).
        self._verified: list[dict[int, float | None]] = []
        self._kernel: RoundKernel | None = None
        self._evaluate = None
        self._grouped = True

    # -- StatefulRoundProtocol interface ---------------------------------------

    def reset(self, kernel: RoundKernel) -> None:
        self._kernel = kernel
        self._evaluate = compile_msr(self.function) if kernel.flat_msr else None
        # group_inboxes governs the fold memo (identical accepted
        # multisets share one MSR evaluation), mirroring the scalar
        # kernel's distinct-inbox toggle for the equivalence suite.
        self._grouped = kernel.group_inboxes
        self._verified = [{} for _ in range(self.n)]

    def start(self, initial_values: Sequence[float]) -> None:
        self._values = {
            pid: float(value) for pid, value in enumerate(initial_values)
        }

    @property
    def values(self) -> dict[int, float]:
        return self._values

    def decision_ready(self, round_index: int) -> bool:
        """Decisions exist only at phase boundaries (fold rounds)."""
        return (round_index + 1) % self.phase_length == 0

    # -- one synchronous round -------------------------------------------------

    def run_round(
        self, plan: "RoundPlan", cured_aware: bool, need_diameter: bool
    ) -> float:
        n, f = self.n, self.f
        values = self._values
        verified = self._verified
        offset = plan.round_index % self.phase_length

        if offset == 0:
            # Phase start: wipe the gossip tables; every node's own
            # estimate seeds its table.
            for pid in range(n):
                verified[pid] = {pid: values[pid]}

        # Departing agents corrupt the node's estimate -- and with it
        # the node's own claim (the scalar corruption seam, exactly as
        # in the Tseng family).  Cured-*aware* nodes (M1) apply the
        # paper's Lemma 1 guard in phase form: knowing the estimate is
        # garbage, they withhold their own claim until the phase-end
        # fold restores them (neighbors keep the pre-corruption claim,
        # first verification wins).  Unaware cured nodes (M2/M3)
        # believe the garbage and claim it, which the MSR trim must
        # absorb exactly as on the full mesh.  Verified *relay* entries
        # survive the departure: they are re-verified against the
        # neighborhood's repeats every round, so corrupting them is
        # dominated by the withholding already in the model.
        for pid, corrupted in plan.memory_corruptions.items():
            values[pid] = corrupted
            if cured_aware:
                verified[pid].pop(pid, None)
            else:
                verified[pid][pid] = corrupted

        # -- send phase ------------------------------------------------------
        # outgoing[pid] is what pid puts on the wire this round:
        #   ("lie", outbox)   -- adversary-run send: per-recipient own-
        #                        claim lies, no relays (forged relays
        #                        can never reach the witness threshold,
        #                        so abstaining loses the adversary
        #                        nothing -- see the module docstring);
        #   ("claims", dict)  -- a correct node's whole verified table,
        #                        snapshotted at round start (synchrony:
        #                        receivers must see pre-round state);
        #   None              -- silence (benign faults, aware-cured
        #                        nodes under M1).
        overrides = plan.send_overrides
        forced_silent = plan.forced_silent
        cured = plan.cured_at_send if cured_aware else frozenset()
        recording = self.recording
        # Full-trace wire record: the representative scalar per sender
        # is its *own* claim (what the P1/P2 checkers and the
        # send-behavior classifier consume); relayed-claim tables ride
        # as payloads.  A correct node gossiping relays while
        # withholding its own claim (aware-cured mid-phase) records as
        # ``None`` -- excluded from the honest reference set, which
        # only ever weakens the checked property, never fakes it.
        sent_rec: dict[int, Mapping[int, float] | None] | None = (
            {} if recording else None
        )
        payloads: dict[int, object] | None = {} if recording else None
        complete = self.topology.is_complete
        outgoing: list[tuple[str, Mapping] | None] = []
        for pid in range(n):
            outbox = overrides.get(pid)
            if outbox is not None:
                outgoing.append(("lie", outbox))
                if recording:
                    sent_rec[pid] = outbox
                continue
            if pid in forced_silent or pid in cured:
                outgoing.append(None)
                if recording:
                    sent_rec[pid] = None
                continue
            table = verified[pid]
            snap = {
                origin: value
                for origin, value in table.items()
                if value is not None
            }
            outgoing.append(("claims", snap))
            if recording:
                payloads[pid] = snap
                own = snap.get(pid)
                if own is None:
                    sent_rec[pid] = None
                elif complete:
                    sent_rec[pid] = BroadcastOutbox(n, own)
                else:
                    sent_rec[pid] = {
                        q: own for q in self._sorted_neighbors[pid]
                    }

        # -- receive phase ---------------------------------------------------
        sorted_neighbors = self._sorted_neighbors
        threshold = f + 1
        for q in range(n):
            table = verified[q]
            tally: dict[tuple[int, float], int] = {}
            for s in sorted_neighbors[q]:
                message = outgoing[s]
                if message is None:
                    continue
                kind, payload = message
                if kind == "lie":
                    # A faulty sender's first-hand claim towards q: the
                    # channel is authenticated, so it verifies like any
                    # direct value (the lie lands in the fold and the
                    # MSR trim must absorb it, as on the full mesh).
                    value = payload.get(q)
                    if value is not None and s not in table:
                        table[s] = float(value)
                    continue
                for origin, value in payload.items():
                    if origin == s:
                        # First-hand: direct claims verify immediately.
                        if s not in table:
                            table[s] = value
                    elif origin != q and origin not in table:
                        tally[(origin, value)] = tally.get((origin, value), 0) + 1
            if tally:
                qualified: dict[int, list[float]] = {}
                for (origin, value), count in tally.items():
                    if count >= threshold:
                        qualified.setdefault(origin, []).append(value)
                for origin in sorted(qualified):
                    if origin in table:
                        continue
                    witnessed = qualified[origin]
                    if len(witnessed) == 1:
                        table[origin] = witnessed[0]
                    else:
                        # Two verified values for one origin: a proven
                        # first-hand equivocation.  Exclude the origin
                        # from the fold, permanently for this phase.
                        table[origin] = None

        # -- compute phase (phase boundary only) -----------------------------
        max_diameter = 0.0
        if need_diameter:
            # Round 0's received-value spread, mirroring the scalar
            # drivers' first-round diameter bookkeeping.
            for q in range(n):
                heard = [v for v in verified[q].values() if v is not None]
                if heard:
                    spread = max(heard) - min(heard)
                    if spread > max_diameter:
                        max_diameter = spread

        # Every round, every node re-folds its verified table: exactly
        # the scalar families' compute-every-round structure, so a
        # cured node's garbage estimate heals within its cure round
        # (Lemma 5 in phase form) instead of lingering until the phase
        # boundary.  Mid-phase tables can be too thin for the trim
        # (claims still in flight); those folds are skipped and the
        # estimate carries over -- but the *phase-end* fold, where
        # decisions are read, is strict.  Claims are unaffected either
        # way: a node gossips its phase-start value, not its estimate.
        compute_corruptions = plan.compute_corruptions
        strict = offset == self.phase_length - 1
        evaluate = self._evaluate
        cache: dict[tuple, float] | None = {} if self._grouped else None
        # The P1/P2 checkers read per-round aggregation snapshots; for
        # this family those exist only where decisions do -- at the
        # strict phase-boundary fold.  Mid-phase rounds record empty
        # mappings (claims still in flight, nothing is decided), which
        # the checkers treat as trivially satisfied.
        record_fold = recording and strict
        received_rec: dict[int, ValueMultiset] | None = {} if recording else None
        heard_rec: dict[int, frozenset[int]] | None = {} if recording else None
        applications_rec: dict[int, object] | None = {} if recording else None
        app_cache: dict[tuple, object] = {}
        for q in range(n):
            if q in compute_corruptions:
                continue
            accepted = sorted(
                value for value in verified[q].values() if value is not None
            )
            if not accepted:
                if strict:
                    raise ValueError(
                        f"witness: process p{q} verified no values this "
                        "phase -- the run is below the family's "
                        "connectivity/resilience requirement"
                    )
                continue
            key = tuple(accepted)
            result = cache.get(key) if cache is not None else None
            if result is None:
                try:
                    if evaluate is not None:
                        result = evaluate(accepted)
                    else:
                        result = self.function.apply_value(
                            ValueMultiset.from_trusted_floats(accepted)
                        )
                except ValueError:
                    if strict:
                        raise ValueError(
                            f"witness: process p{q} verified only "
                            f"{len(accepted)} values at the phase boundary "
                            "-- the run is below the family's connectivity/"
                            "resilience requirement (the MSR fold needs "
                            "more mass than the neighborhood delivered)"
                        ) from None
                    result = float("nan")  # marks a skipped thin fold
                if cache is not None:
                    cache[key] = result
            if result != result:
                continue
            if record_fold:
                multiset = ValueMultiset.from_trusted_floats(accepted)
                received_rec[q] = multiset
                heard_rec[q] = frozenset(
                    origin
                    for origin, value in verified[q].items()
                    if value is not None
                )
                application = app_cache.get(key)
                if application is None:
                    # One full application per distinct fold, shared by
                    # every node that verified the same multiset.
                    application = self.function.apply(multiset)
                    app_cache[key] = application
                applications_rec[q] = application
            values[q] = result
            if q not in verified[q]:
                # An aware-cured node whose fold just restored it
                # re-claims its own entry: the recovered value is a
                # trim-fold of verified mass (in range by Validity), so
                # rejoining the gossip repairs the neighborhoods its
                # withheld claim was thinning out.
                verified[q][q] = result
        for pid, garbage in compute_corruptions.items():
            values[pid] = garbage
        if recording:
            self.wire_record = {
                "sent": sent_rec,
                "payloads": payloads,
                "received": received_rec,
                "heard": heard_rec,
                "applications": applications_rec,
            }
        return max_diameter

    def __repr__(self) -> str:
        return (
            f"WitnessProtocol(n={self.n}, f={self.f}, "
            f"{self.function.name}, {self.topology.spec})"
        )


class WitnessFamily(ProtocolFamily):
    """Registry entry for the partial-connectivity relay protocol.

    Reuses the run's configured MSR function (the model's Table 1 trim
    parameter) and the model's Table 2 requirement on ``n``; its
    topology admission rule is what sets it apart from the
    complete-graph families.
    """

    name = "witness"
    requires_complete = False

    def build_protocol(self, config: "SimulationConfig") -> WitnessProtocol:
        return WitnessProtocol(
            config.n, config.f, config.algorithm, config.resolve_topology()
        )

    def check_topology(self, topology, config: "SimulationConfig") -> None:
        if not topology.is_connected():
            raise ValueError(
                f"the witness family needs a connected communication "
                f"graph; topology {topology.spec!r} at n={topology.n} is "
                "disconnected (values cannot relay across components)"
            )
        required = 2 * config.f + 1
        if config.f > 0 and topology.min_degree() < required:
            raise ValueError(
                f"the witness family needs minimum degree >= 2f+1 = "
                f"{required} at f={config.f} (f neighbors may withhold "
                f"and f+1 distinct witnesses must remain); topology "
                f"{topology.spec!r} has minimum degree "
                f"{topology.min_degree()} -- use a denser graph "
                "(e.g. a wider ring lattice or higher-degree "
                "random-regular graph)"
            )

    def describe(self) -> str:
        return "witness (partial-connectivity relay, arXiv:1206.0089)"


register_family(WitnessFamily())

"""Round-based synchronous simulation substrate (paper Section 3).

Authenticated reliable full-mesh messaging, the three-phase round
structure (send / receive / compute), fault controllers realising the
mobile Byzantine models M1-M4 and the static mixed-mode model, and the
trace machinery every experiment consumes.
"""

from .config import MobileFaultSetup, SimulationConfig, StaticMixedSetup
from .controllers import (
    FaultController,
    MobileFaultController,
    RoundPlan,
    StaticMixedController,
)
from .families import (
    BonomiFamily,
    ProtocolFamily,
    family_names,
    get_family,
    register_family,
)
from .kernel import RoundKernel, compile_msr, distinct_inbox_groups
from .network import Message, RoundDelivery, SynchronousNetwork
from .protocol import MSRVotingProtocol, StatefulRoundProtocol, VotingProtocol
from .tseng import TsengFamily, TsengProtocol
from .witness import WitnessFamily, WitnessProtocol
from .rng import derive_rng, spawn_seeds
from .serialize import dump_trace, load_trace, trace_from_dict, trace_to_dict
from .simulator import (
    SynchronousSimulator,
    TraceDetail,
    run_simulation,
    simulate_batch,
)
from .termination import (
    EstimatedRounds,
    FixedRounds,
    OracleDiameter,
    TerminationRule,
    rounds_to_reach,
)
from .trace import LiteTrace, RoundRecord, Trace

__all__ = [
    "SimulationConfig",
    "MobileFaultSetup",
    "StaticMixedSetup",
    "FaultController",
    "MobileFaultController",
    "StaticMixedController",
    "RoundPlan",
    "SynchronousNetwork",
    "Message",
    "RoundDelivery",
    "VotingProtocol",
    "MSRVotingProtocol",
    "StatefulRoundProtocol",
    "ProtocolFamily",
    "BonomiFamily",
    "TsengFamily",
    "TsengProtocol",
    "WitnessFamily",
    "WitnessProtocol",
    "register_family",
    "get_family",
    "family_names",
    "TerminationRule",
    "FixedRounds",
    "OracleDiameter",
    "EstimatedRounds",
    "rounds_to_reach",
    "SynchronousSimulator",
    "run_simulation",
    "simulate_batch",
    "RoundKernel",
    "compile_msr",
    "distinct_inbox_groups",
    "TraceDetail",
    "RoundRecord",
    "Trace",
    "LiteTrace",
    "derive_rng",
    "spawn_seeds",
    "trace_to_dict",
    "trace_from_dict",
    "dump_trace",
    "load_trace",
]

"""The synchronous, authenticated, reliable communication substrate.

Paper Section 3: processes disseminate messages to all other processes;
communication is *authenticated* (a sender's identity cannot be forged)
and *reliable* (messages are neither created, lost nor duplicated).
Rounds have a send phase followed by a receive phase in which all
messages sent at the beginning of the round are delivered.

:class:`SynchronousNetwork` realises exactly this: senders submit their
round's messages once, the round is then delivered atomically, and
omissions (silent senders) are recorded -- in a synchronous system an
omission is immediately evident to every receiver, which is what makes
M1's cured silence a *benign* fault in the mixed-mode image.

Authentication is enforced structurally: the simulator is the only
caller and always submits under the true process id; the API offers no
way to spoof a different sender.

Since the communication-topology subsystem (:mod:`repro.topology`) the
full mesh is the *default*, not an assumption: constructed with a
non-complete :class:`~repro.topology.Topology`, the network delivers a
message only along an edge of the graph (or to the sender itself --
self-links are implicit).  Broadcasts address the sender's neighborhood
and messages submitted towards non-neighbors are dropped at delivery
time, exactly as a physical link layer would: reliability holds *per
edge*, not per pair.  With the complete (or no) topology every path
below is byte-identical to the pre-topology code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..topology import Topology

__all__ = ["Message", "RoundDelivery", "SynchronousNetwork"]


@dataclass(frozen=True)
class Message:
    """One authenticated point-to-point message within a round."""

    round_index: int
    sender: int
    recipient: int
    value: float


@dataclass(frozen=True)
class RoundDelivery:
    """The outcome of one round's receive phase.

    ``by_recipient[q][p]`` is the value ``p`` sent to ``q``; senders
    absent from the inner mapping omitted (benign/silent).  ``silent``
    lists the senders every receiver detected as omitting.
    """

    round_index: int
    by_recipient: dict[int, dict[int, float]]
    silent: frozenset[int]

    def received_values(self, recipient: int) -> tuple[float, ...]:
        """Values delivered to ``recipient`` this round (sender-sorted)."""
        inbox = self.by_recipient.get(recipient, {})
        return tuple(inbox[sender] for sender in sorted(inbox))

    def senders_heard_by(self, recipient: int) -> frozenset[int]:
        """Senders whose message reached ``recipient`` this round."""
        return frozenset(self.by_recipient.get(recipient, {}))


class SynchronousNetwork:
    """Round-scoped reliable message exchange, full-mesh by default.

    ``topology`` optionally restricts delivery to the edges of a
    :class:`~repro.topology.Topology` (plus the implicit self-link).
    ``None`` or a complete topology reproduces the paper's network
    byte-for-byte.
    """

    def __init__(self, n: int, topology: "Topology | None" = None) -> None:
        if n < 1:
            raise ValueError(f"network needs at least one process, got n={n}")
        if topology is not None and topology.n != n:
            raise ValueError(
                f"topology {topology.spec!r} covers {topology.n} processes, "
                f"network has n={n}"
            )
        self.n = n
        self.topology = topology
        # Complete graphs take the exact pre-topology code paths.
        self._restricted = topology is not None and not topology.is_complete
        self._round_index: int | None = None
        self._outboxes: dict[int, dict[int, float]] = {}
        self._silent: set[int] = set()

    @property
    def round_open(self) -> bool:
        """Whether a send phase is currently accepting submissions."""
        return self._round_index is not None

    def begin_round(self, round_index: int) -> None:
        """Open the send phase of ``round_index``."""
        if self.round_open:
            raise RuntimeError(
                f"round {self._round_index} still open; deliver it first"
            )
        self._round_index = round_index
        self._outboxes = {}
        self._silent = set()

    def submit(self, sender: int, messages: dict[int, float]) -> None:
        """Sender deposits its messages for this round (exactly once).

        ``messages`` maps recipient ids to values; the mapping must
        cover only valid process ids.  Reliability means every submitted
        message will be delivered; authentication means ``sender`` is
        bound by the caller (the simulator), never by message content.
        """
        self._require_open()
        self._require_fresh(sender)
        bad = [q for q in messages if q < 0 or q >= self.n]
        if bad:
            raise ValueError(f"sender {sender} addressed invalid recipients {bad}")
        self._outboxes[sender] = dict(messages)

    def broadcast(self, sender: int, value: float) -> None:
        """Sender sends ``value`` to everyone it can reach (incl. itself).

        On the full mesh that is every process; on a restricted
        topology it is the sender's neighborhood plus itself.
        """
        if self._restricted:
            recipients = sorted(self.topology.neighbor_sets[sender] | {sender})
            self.submit(sender, {q: value for q in recipients})
            return
        self.submit(sender, {q: value for q in range(self.n)})

    def silent(self, sender: int) -> None:
        """Sender explicitly omits this round (detected by everyone)."""
        self._require_open()
        self._require_fresh(sender)
        self._silent.add(sender)

    def deliver(self) -> RoundDelivery:
        """Close the round and deliver all submitted messages.

        Every process that neither submitted nor declared silence is
        treated as silent too: in a synchronous system, not sending
        within the round *is* a detected omission.

        Under a restricted topology, a message travels only when its
        ``(sender, recipient)`` pair is an edge (or the self-link):
        anything addressed across a missing link is dropped here, the
        way a physical link layer would never carry it.
        """
        self._require_open()
        round_index = self._round_index
        assert round_index is not None
        by_recipient: dict[int, dict[int, float]] = {q: {} for q in range(self.n)}
        if self._restricted:
            neighbor_sets = self.topology.neighbor_sets
            for sender, outbox in self._outboxes.items():
                reachable = neighbor_sets[sender]
                for recipient, value in outbox.items():
                    if recipient == sender or recipient in reachable:
                        by_recipient[recipient][sender] = value
        else:
            for sender, outbox in self._outboxes.items():
                for recipient, value in outbox.items():
                    by_recipient[recipient][sender] = value
        silent = frozenset(range(self.n)) - frozenset(self._outboxes)
        self._round_index = None
        self._outboxes = {}
        self._silent = set()
        return RoundDelivery(
            round_index=round_index, by_recipient=by_recipient, silent=silent
        )

    # -- internals -----------------------------------------------------------

    def _require_open(self) -> None:
        if not self.round_open:
            raise RuntimeError("no round open; call begin_round() first")

    def _require_fresh(self, sender: int) -> None:
        if sender < 0 or sender >= self.n:
            raise ValueError(f"invalid sender id {sender}")
        if sender in self._outboxes or sender in self._silent:
            raise RuntimeError(
                f"sender {sender} already acted this round (duplicate send)"
            )

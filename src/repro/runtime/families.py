"""Algorithm families: the registry of protocol-level algorithms.

The reproduction started as a single-paper harness: one protocol shape
(the MSR voting protocol of Bonomi et al., arXiv:1604.03871) hard-wired
into the simulator, the kernel and the sweep layers.  A *protocol
family* abstracts that shape away: each family owns

* how a run's per-node state is structured and carried across rounds,
* the message structure exchanged each round (scalar or multi-value),
* its round schedule (when termination may be evaluated),
* its resilience requirement (which may differ from the fault model's
  Table 2 bound), and
* its convergence prediction for the comparison experiments.

Families are registered by short name and referenced from
:class:`~repro.runtime.config.SimulationConfig` (``family=``), the
sweep grid (``families=`` axis on :class:`~repro.sweep.grid.GridSpec`)
and the CLI, which makes "run the same scenario under two algorithms
and compare" a first-class sweep axis.

Three families ship in-tree:

``bonomi``
    The source paper's MSR voting protocol.  Builds the exact
    :class:`~repro.runtime.protocol.MSRVotingProtocol` the simulator
    always used, so runs are bit-identical to the pre-family code.
``tseng``
    Tseng's improved mobile-fault approximate consensus algorithm
    (arXiv:1707.07659); see :mod:`repro.runtime.tseng`.
``witness``
    The witness-based partial-connectivity protocol after Li, Hurfin &
    Wang (arXiv:1206.0089); see :mod:`repro.runtime.witness`.  The
    first family whose :meth:`ProtocolFamily.check_topology` accepts
    non-complete communication graphs (:mod:`repro.topology`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterator
from typing import TYPE_CHECKING

from .protocol import MSRVotingProtocol, StatefulRoundProtocol, VotingProtocol

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids module cycles
    from .config import MobileFaultSetup, SimulationConfig, StaticMixedSetup

__all__ = [
    "ProtocolFamily",
    "BonomiFamily",
    "register_family",
    "get_family",
    "family_names",
    "DEFAULT_FAMILY",
]

#: The family every config runs unless told otherwise: the source paper.
DEFAULT_FAMILY = "bonomi"


class ProtocolFamily(ABC):
    """One protocol-level algorithm family.

    A family is a stateless singleton: per-run state lives in the
    protocol object :meth:`build_protocol` returns, never in the family
    itself (families are shared across worker processes and runs).
    """

    #: Registry name; also the value of ``SimulationConfig.family``.
    name: str = "?"

    #: Whether the family's protocol is defined over the complete
    #: communication graph only.  The scalar MSR voting shape folds
    #: "everyone's broadcast" and has no relay mechanism, so it keeps
    #: the default; families built for partial connectivity (message
    #: relay through witnesses) override to ``False`` and refine
    #: :meth:`check_topology` with their own admission rule.
    requires_complete: bool = True

    @abstractmethod
    def build_protocol(
        self, config: "SimulationConfig"
    ) -> VotingProtocol | StatefulRoundProtocol:
        """Build the per-run protocol instance for ``config``.

        Returning a :class:`VotingProtocol` selects the scalar
        simulator paths (full-trace recorder + round-kernel fast path);
        returning a :class:`StatefulRoundProtocol` selects the
        multi-round stateful driver.
        """

    def min_processes(
        self, setup: "MobileFaultSetup | StaticMixedSetup", f: int
    ) -> int:
        """Resilience requirement of this family under ``setup``.

        Defaults to the fault model's own bound (Table 2 for mobile
        setups); families with tighter or looser requirements override.
        """
        return setup.min_processes(f)

    def check_topology(self, topology, config: "SimulationConfig") -> None:
        """Reject communication graphs this family is not defined over.

        Called from :meth:`SimulationConfig.validate` with the resolved
        :class:`~repro.topology.Topology`.  The default enforces
        :attr:`requires_complete`; partial-connectivity families
        override with their own admission rule (connectivity, degree
        bounds) and must raise :class:`ValueError` with actionable
        guidance.
        """
        if self.requires_complete and not topology.is_complete:
            raise ValueError(
                f"the {self.name!r} family is defined over the complete "
                f"communication graph only (every process must hear every "
                f"other's broadcast); topology {topology.spec!r} has "
                f"minimum degree {topology.min_degree()} of {topology.n - 1} "
                "-- partially-connected runs need a relay-based family, "
                "e.g. family='witness' (arXiv:1206.0089)"
            )

    def decision_ready(self, round_index: int) -> bool:
        """Round-schedule hook: may termination fire after this round?

        Families whose protocol phases span several communication
        rounds return ``False`` mid-phase so the termination rule is
        only consulted at phase boundaries.  Every simulator driver
        (full, lite, stateful) checks it; both in-tree families run one
        phase per round.  ``max_rounds`` still caps the run regardless,
        so a buggy always-``False`` schedule cannot loop forever.
        """
        return True

    def predicted_contraction(self, config: "SimulationConfig") -> float | None:
        """Worst-case per-round diameter contraction factor, if known."""
        return None

    def describe(self) -> str:
        """Short description for tables and CLI banners."""
        return self.name

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class BonomiFamily(ProtocolFamily):
    """The source paper's family: the scalar MSR voting protocol.

    ``build_protocol`` constructs exactly the object the pre-family
    simulator constructed, so the re-based path is bit-identical to the
    original -- the golden-report and equivalence suites assert it.
    """

    name = "bonomi"

    def build_protocol(self, config: "SimulationConfig") -> VotingProtocol:
        return MSRVotingProtocol(config.algorithm)

    def predicted_contraction(self, config: "SimulationConfig") -> float | None:
        from ..core.convergence import mobile_contraction
        from .config import MobileFaultSetup

        if not isinstance(config.setup, MobileFaultSetup):
            return None
        return mobile_contraction(
            config.algorithm, config.setup.model, config.n, config.f
        ).factor

    def describe(self) -> str:
        return "bonomi (MSR voting, arXiv:1604.03871)"


_REGISTRY: dict[str, ProtocolFamily] = {}


def register_family(family: ProtocolFamily) -> None:
    """Register a family under its ``name`` (case-insensitive).

    Raises :class:`ValueError` on collisions to catch accidental
    shadowing.  Families used in parallel sweeps must be registered at
    import time of a module worker processes also import.
    """
    key = family.name.strip().lower()
    if not key or key == "?":
        raise ValueError(f"family {family!r} must declare a non-empty name")
    if key in _REGISTRY:
        raise ValueError(f"algorithm family {family.name!r} is already registered")
    _REGISTRY[key] = family


def get_family(name: str) -> ProtocolFamily:
    """Resolve a family by name with a helpful error."""
    key = name.strip().lower() if isinstance(name, str) else name
    try:
        return _REGISTRY[key]
    except (KeyError, TypeError):
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown algorithm family {name!r}; known: {known}"
        ) from None


def family_names() -> Iterator[str]:
    """Iterate over registered family names, sorted."""
    return iter(sorted(_REGISTRY))


register_family(BonomiFamily())

# The Tseng and witness families register themselves on import;
# importing them here makes the registry complete for every process
# that imports the runtime.
from . import tseng as _tseng  # noqa: E402,F401  (registration side effect)
from . import witness as _witness  # noqa: E402,F401  (registration side effect)

"""Termination rules: when voting stops and processes decide.

The paper inherits Termination from the classic solutions ([10, 11],
Lemma 6): with a geometric per-round contraction, a finite number of
rounds reaches any ``epsilon``.  Three interchangeable rules cover the
needs of experiments and applications:

* :class:`FixedRounds` -- run exactly ``R`` rounds.  Used when the
  harness precomputes ``R`` from the convergence theory.
* :class:`OracleDiameter` -- stop as soon as the true diameter of
  non-faulty values is at most ``epsilon``.  Uses global knowledge, so
  it is a *measurement* device (how many rounds were really needed),
  not a distributed algorithm.
* :class:`EstimatedRounds` -- the Dolev et al. [10] approach: after the
  first exchange, derive a round budget from the largest received-value
  spread and the algorithm's contraction factor.  Byzantine values can
  inflate the estimate (delaying termination) but never truncate it
  below what convergence needs, because the received range always
  contains the non-faulty range.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

__all__ = [
    "TerminationRule",
    "FixedRounds",
    "OracleDiameter",
    "EstimatedRounds",
    "rounds_to_reach",
]


def rounds_to_reach(initial_diameter: float, epsilon: float, contraction: float) -> int:
    """Rounds needed to shrink ``initial_diameter`` to ``epsilon``.

    Solves ``initial * contraction**R <= epsilon`` for the smallest
    non-negative integer ``R``.  ``contraction`` must lie in (0, 1);
    a contraction of 0 (one-shot convergence) returns 1 round.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if initial_diameter <= epsilon:
        return 0
    if contraction <= 0:
        return 1
    if contraction >= 1:
        raise ValueError(
            f"contraction factor {contraction} does not converge; "
            "the configuration is below the resilience bound"
        )
    ratio = initial_diameter / epsilon
    return max(0, math.ceil(math.log(ratio) / math.log(1.0 / contraction)))


class TerminationRule(ABC):
    """Decides, after each round, whether processes decide now."""

    @abstractmethod
    def should_stop(
        self,
        round_index: int,
        nonfaulty_diameter: float,
        first_round_received_diameter: float | None,
    ) -> bool:
        """Return True when the protocol should decide after this round.

        ``first_round_received_diameter`` is the largest diameter of any
        non-faulty process's round-0 received multiset (None before the
        first round completes); only :class:`EstimatedRounds` uses it.
        """

    def describe(self) -> str:
        """Short name used in tables."""
        return type(self).__name__


class FixedRounds(TerminationRule):
    """Run exactly ``rounds`` voting rounds, then decide."""

    def __init__(self, rounds: int) -> None:
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        self.rounds = rounds

    def should_stop(
        self,
        round_index: int,
        nonfaulty_diameter: float,
        first_round_received_diameter: float | None,
    ) -> bool:
        return round_index + 1 >= self.rounds

    def describe(self) -> str:
        return f"fixed({self.rounds})"


class OracleDiameter(TerminationRule):
    """Stop when the true non-faulty diameter is at most ``epsilon``.

    ``min_rounds`` forces at least one voting round so a trivially
    agreeing start still exercises the protocol.
    """

    def __init__(self, epsilon: float, min_rounds: int = 1) -> None:
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.epsilon = epsilon
        self.min_rounds = min_rounds

    def should_stop(
        self,
        round_index: int,
        nonfaulty_diameter: float,
        first_round_received_diameter: float | None,
    ) -> bool:
        return (
            round_index + 1 >= self.min_rounds
            and nonfaulty_diameter <= self.epsilon
        )

    def describe(self) -> str:
        return f"oracle(eps={self.epsilon:g})"


class EstimatedRounds(TerminationRule):
    """Derive the round budget from the first exchange (Dolev et al.).

    After round 0 each process knows the spread of values it received;
    the largest such spread over non-faulty processes upper-bounds the
    non-faulty initial diameter, so running

        R = rounds_to_reach(spread, epsilon, contraction)

    further rounds guarantees epsilon-agreement.  The rule is
    conservative under Byzantine value inflation: lies can only raise
    the spread and hence the budget.
    """

    def __init__(self, epsilon: float, contraction: float) -> None:
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if not 0.0 <= contraction < 1.0:
            raise ValueError("contraction must lie in [0, 1)")
        self.epsilon = epsilon
        self.contraction = contraction
        self._budget: int | None = None

    def should_stop(
        self,
        round_index: int,
        nonfaulty_diameter: float,
        first_round_received_diameter: float | None,
    ) -> bool:
        if self._budget is None:
            if first_round_received_diameter is None:
                return False
            # Round 0 itself already contracted once, hence the +1.
            self._budget = 1 + rounds_to_reach(
                first_round_received_diameter, self.epsilon, self.contraction
            )
        return round_index + 1 >= self._budget

    def describe(self) -> str:
        return f"estimated(eps={self.epsilon:g})"

"""The voting protocol executed by non-faulty processes.

Paper Section 4: each round of an MSR convergent voting algorithm is

1. *send-phase*: send the current voted value to everybody -- except
   that, per the paper's modification for model M1, a process that
   **knows** it is cured performs ``nop`` instead (Lemma 1);
2. *receive-phase*: aggregate received values into a multiset ``N``;
3. *computation-phase*: adopt ``F_MSR(N)`` as the next voted value.

The protocol object is the *tamper-proof code* of the failure model: it
is immutable and shared by all processes; a mobile agent can corrupt a
process's value (its state) but never this logic.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..msr.base import MSRApplication, MSRFunction
from ..msr.multiset import ValueMultiset

__all__ = ["VotingProtocol", "MSRVotingProtocol"]


class VotingProtocol(ABC):
    """Abstract round behaviour of a non-faulty process."""

    #: Whether :meth:`compute_value` depends only on the received
    #: multiset, never on ``pid``.  The round kernel exploits this to
    #: evaluate the computation phase once per *distinct inbox* instead
    #: of once per process; protocols whose computation reads the
    #: process identity must leave this ``False``.
    pid_independent_compute: bool = False

    @abstractmethod
    def send_value(self, pid: int, value: float, aware_cured: bool) -> float | None:
        """Value to broadcast this round, or ``None`` to stay silent."""

    @abstractmethod
    def compute(self, pid: int, received: ValueMultiset) -> MSRApplication:
        """Computation phase: derive the next voted value from ``received``."""

    def compute_value(self, pid: int, received: ValueMultiset) -> float:
        """Result-only computation phase for trace-lite hot loops.

        Must be numerically identical to ``compute(pid, received).result``;
        the default delegates, subclasses may skip the snapshot.
        """
        return self.compute(pid, received).result


class MSRVotingProtocol(VotingProtocol):
    """The MSR voting protocol with the M1 cured-silence guard."""

    # F_MSR(N) = mean(Sel(Red(N))) reads only the multiset (paper
    # Section 4), which is what lets the kernel share one evaluation
    # across every recipient of the same inbox.
    pid_independent_compute = True

    def __init__(self, function: MSRFunction) -> None:
        self.function = function

    def send_value(self, pid: int, value: float, aware_cured: bool) -> float | None:
        # Paper, Lemma 1: "if (cured) nop; else send(vote)".  Processes
        # that cannot diagnose their cured state (M2/M3) always have
        # aware_cured=False and fall through to the normal send.
        if aware_cured:
            return None
        return value

    def compute(self, pid: int, received: ValueMultiset) -> MSRApplication:
        return self.function.apply(received)

    def compute_value(self, pid: int, received: ValueMultiset) -> float:
        return self.function.apply_value(received)

    def __repr__(self) -> str:
        return f"MSRVotingProtocol({self.function.name})"

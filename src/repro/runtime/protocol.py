"""The voting protocol executed by non-faulty processes.

Paper Section 4: each round of an MSR convergent voting algorithm is

1. *send-phase*: send the current voted value to everybody -- except
   that, per the paper's modification for model M1, a process that
   **knows** it is cured performs ``nop`` instead (Lemma 1);
2. *receive-phase*: aggregate received values into a multiset ``N``;
3. *computation-phase*: adopt ``F_MSR(N)`` as the next voted value.

The protocol object is the *tamper-proof code* of the failure model: it
is immutable and shared by all processes; a mobile agent can corrupt a
process's value (its state) but never this logic.

Two protocol shapes exist:

* :class:`VotingProtocol` -- the *scalar* shape of the source paper:
  one float per node, one broadcast per round, no state beyond the
  voted value.  The simulator's full-trace recorder, the specification
  checker's per-round P1/P2 invariants and the round kernel's
  distinct-inbox fast path are all built for this shape.
* :class:`StatefulRoundProtocol` -- the *multi-round* shape introduced
  by the algorithm-family abstraction (see
  :mod:`repro.runtime.families`): a per-run object that owns per-node
  state carried across rounds and exchanges multi-value messages.
  Tseng's improved mobile-fault algorithm (arXiv:1707.07659) is the
  first such family; its messages are ``(value, previous broadcast)``
  pairs and its receive phase filters on cross-round consistency.

Which shape a run uses is decided by the configured *protocol family*
(:class:`~repro.runtime.families.ProtocolFamily`), never hard-coded in
the simulator.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

from ..msr.base import MSRApplication, MSRFunction
from ..msr.multiset import ValueMultiset

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .controllers import RoundPlan
    from .kernel import RoundKernel

__all__ = ["VotingProtocol", "MSRVotingProtocol", "StatefulRoundProtocol"]


class VotingProtocol(ABC):
    """Abstract round behaviour of a non-faulty process."""

    #: Whether :meth:`compute_value` depends only on the received
    #: multiset, never on ``pid``.  The round kernel exploits this to
    #: evaluate the computation phase once per *distinct inbox* instead
    #: of once per process; protocols whose computation reads the
    #: process identity must leave this ``False``.
    pid_independent_compute: bool = False

    @abstractmethod
    def send_value(self, pid: int, value: float, aware_cured: bool) -> float | None:
        """Value to broadcast this round, or ``None`` to stay silent."""

    @abstractmethod
    def compute(self, pid: int, received: ValueMultiset) -> MSRApplication:
        """Computation phase: derive the next voted value from ``received``."""

    def compute_value(self, pid: int, received: ValueMultiset) -> float:
        """Result-only computation phase for trace-lite hot loops.

        Must be numerically identical to ``compute(pid, received).result``;
        the default delegates, subclasses may skip the snapshot.
        """
        return self.compute(pid, received).result


class MSRVotingProtocol(VotingProtocol):
    """The MSR voting protocol with the M1 cured-silence guard."""

    # F_MSR(N) = mean(Sel(Red(N))) reads only the multiset (paper
    # Section 4), which is what lets the kernel share one evaluation
    # across every recipient of the same inbox.
    pid_independent_compute = True

    def __init__(self, function: MSRFunction) -> None:
        self.function = function

    def send_value(self, pid: int, value: float, aware_cured: bool) -> float | None:
        # Paper, Lemma 1: "if (cured) nop; else send(vote)".  Processes
        # that cannot diagnose their cured state (M2/M3) always have
        # aware_cured=False and fall through to the normal send.
        if aware_cured:
            return None
        return value

    def compute(self, pid: int, received: ValueMultiset) -> MSRApplication:
        return self.function.apply(received)

    def compute_value(self, pid: int, received: ValueMultiset) -> float:
        return self.function.apply_value(received)

    def __repr__(self) -> str:
        return f"MSRVotingProtocol({self.function.name})"


class StatefulRoundProtocol(ABC):
    """A per-run protocol instance that owns per-node multi-round state.

    Families whose messages are not a single float (or whose
    computation reads state carried across rounds) implement this
    interface instead of :class:`VotingProtocol`.  The simulator drives
    the run through :meth:`reset` / :meth:`run_round` on both trace
    levels: ``trace_detail="full"`` flips :attr:`recording` on, and the
    protocol then deposits the round's wire activity into
    :attr:`wire_record` (see below) for the simulator to fold into
    :class:`~repro.runtime.trace.RoundRecord` objects -- multi-value
    message payloads ride in ``RoundRecord.payloads``.

    The adversary layer stays *scalar*: fault controllers plan rounds
    in terms of per-recipient float lies (see
    :class:`~repro.runtime.controllers.RoundPlan`), and the family's
    message codec expands each scalar into its message structure inside
    :meth:`run_round`.  This keeps every existing
    :class:`~repro.faults.value_strategies.ValueStrategy` applicable to
    every family.
    """

    #: Family registry name this protocol instance belongs to.
    family_name: str = "?"
    #: Number of float components per message (1 = scalar).
    message_arity: int = 1
    #: Set by the full-trace driver: when True, :meth:`run_round` must
    #: leave a wire record (below) describing the round it just ran.
    recording: bool = False
    #: The last recorded round, written by :meth:`run_round` when
    #: :attr:`recording`.  Keys: ``sent`` (pid -> Mapping|None message
    #: matrix of representative scalars), ``payloads`` (pid -> the
    #: structured message actually on the wire, or None/absent for
    #: scalar-message senders), ``received`` (pid -> ValueMultiset of
    #: representative scalars; may be empty for rounds whose fold
    #: happens elsewhere, e.g. mid-phase witness gossip), ``heard``
    #: (pid -> frozenset of senders) and ``applications`` (pid ->
    #: MSRApplication-compatible objects) with the same key policy.
    wire_record: dict | None = None

    @abstractmethod
    def reset(self, kernel: "RoundKernel") -> None:
        """(Re)initialize per-node state for a fresh run.

        ``kernel`` supplies shared scratch buffers and the
        ``group_inboxes`` / ``flat_msr`` evaluation toggles, which
        stateful families honour exactly like the scalar kernel path
        (the equivalence suites flip them to obtain the in-tree
        reference implementation).
        """

    @abstractmethod
    def start(self, initial_values) -> None:
        """Load the run's round-0 estimates (called after :meth:`reset`)."""

    @property
    @abstractmethod
    def values(self) -> dict[int, float]:
        """Live representative vote per node (read-only by convention).

        This is what fault controllers see as process "memory", what
        diameters and decisions are computed from, and what termination
        rules observe.
        """

    @abstractmethod
    def run_round(
        self, plan: "RoundPlan", cured_aware: bool, need_diameter: bool
    ) -> float:
        """Execute one synchronous round under ``plan``.

        Applies the plan's memory corruptions, runs the family's
        send/receive/compute phases (expanding scalar overrides through
        the message codec), applies compute corruptions, and returns
        the maximum received-inbox diameter (0.0 unless
        ``need_diameter``, which only round 0 asks for).
        """

    def decision_ready(self, round_index: int) -> bool:
        """Per-run round schedule: may termination fire after this round?

        The per-run counterpart of
        :meth:`~repro.runtime.families.ProtocolFamily.decision_ready`
        for protocols whose phase length depends on run parameters the
        stateless family singleton cannot know (the witness family's
        gossip phases span ``diameter(topology)`` communication
        rounds).  The stateful driver consults both; ``max_rounds``
        still caps the run regardless.
        """
        return True

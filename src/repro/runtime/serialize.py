"""Trace serialization: export executions as plain data / JSON.

Experiments often need to archive runs, diff executions across library
versions, or feed traces to external tooling (plotting, statistics).
This module turns a :class:`~repro.runtime.trace.Trace` into
JSON-compatible dictionaries and back.

The round-trip is *semantically* lossless for everything the checkers
consume: fault pattern, message matrix, received multisets, per-process
results, decisions.  The only field not reconstructed is the live
:class:`~repro.msr.base.MSRApplication` stage breakdown (reduced /
selected multisets), which is re-derivable by re-running the recorded
algorithm; the serialized form keeps each application's ``result``.
"""

from __future__ import annotations

import json
from types import MappingProxyType
from typing import Any

from ..faults.mixed_mode import FaultClass
from ..faults.models import MobileModel
from ..msr.base import MSRApplication
from ..msr.multiset import ValueMultiset
from .trace import LiteTrace, RoundRecord, Trace

__all__ = [
    "trace_to_dict",
    "trace_from_dict",
    "dump_trace",
    "load_trace",
    "SCHEMA_VERSION",
]

#: Bumped whenever the serialized layout changes incompatibly.
SCHEMA_VERSION = 1


def trace_to_dict(trace: Trace) -> dict[str, Any]:
    """Convert a trace to a JSON-compatible dictionary.

    Only full traces serialize: a :class:`LiteTrace` deliberately drops
    the per-round records this format archives, so it is rejected
    eagerly rather than failing deep inside JSON encoding.
    """
    if isinstance(trace, LiteTrace):
        raise TypeError(
            "lite traces cannot be serialized (per-round records were "
            "not kept); rerun with trace_detail='full' to archive the run"
        )
    return {
        "schema": SCHEMA_VERSION,
        "n": trace.n,
        "f": trace.f,
        "model": trace.model.value if trace.model else None,
        "algorithm": trace.algorithm_name,
        "epsilon": trace.epsilon,
        "initial_values": _int_keys_to_str(dict(trace.initial_values)),
        "initially_nonfaulty": sorted(trace.initially_nonfaulty),
        "terminated": trace.terminated,
        "decisions": _int_keys_to_str(trace.decisions),
        "controller": trace.controller_description,
        "rounds": [_round_to_dict(record) for record in trace.rounds],
    }


def trace_from_dict(payload: dict[str, Any]) -> Trace:
    """Rebuild a trace from :func:`trace_to_dict` output."""
    schema = payload.get("schema")
    if schema != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported trace schema {schema!r}; this build reads "
            f"version {SCHEMA_VERSION}"
        )
    model = MobileModel(payload["model"]) if payload["model"] else None
    trace = Trace(
        n=payload["n"],
        f=payload["f"],
        model=model,
        algorithm_name=payload["algorithm"],
        epsilon=payload["epsilon"],
        initial_values=MappingProxyType(_str_keys_to_int(payload["initial_values"])),
        initially_nonfaulty=frozenset(payload["initially_nonfaulty"]),
        terminated=payload["terminated"],
        decisions=_str_keys_to_int(payload["decisions"]),
        controller_description=payload["controller"],
    )
    trace.rounds.extend(
        _round_from_dict(entry) for entry in payload["rounds"]
    )
    return trace


def dump_trace(trace: Trace, indent: int | None = None) -> str:
    """Serialize a trace to a JSON string."""
    return json.dumps(trace_to_dict(trace), indent=indent, sort_keys=True)


def load_trace(text: str) -> Trace:
    """Deserialize a trace from :func:`dump_trace` output."""
    return trace_from_dict(json.loads(text))


# -- internals -----------------------------------------------------------------


def _round_to_dict(record: RoundRecord) -> dict[str, Any]:
    return {
        "round": record.round_index,
        "faulty_at_send": sorted(record.faulty_at_send),
        "cured_at_send": sorted(record.cured_at_send),
        "positions_after": sorted(record.positions_after),
        "values_before": _int_keys_to_str(dict(record.values_before)),
        "values_after": _int_keys_to_str(dict(record.values_after)),
        "sent": {
            str(pid): (None if outbox is None else _int_keys_to_str(dict(outbox)))
            for pid, outbox in record.sent.items()
        },
        "received": {
            str(pid): list(multiset.values)
            for pid, multiset in record.received.items()
        },
        "heard": {
            str(pid): sorted(senders) for pid, senders in record.heard.items()
        },
        "results": {
            str(pid): app.result for pid, app in record.applications.items()
        },
        "static_classes": (
            None
            if record.static_classes is None
            else {
                str(pid): cls.value for pid, cls in record.static_classes.items()
            }
        ),
    }


def _round_from_dict(entry: dict[str, Any]) -> RoundRecord:
    received = {
        int(pid): ValueMultiset(values)
        for pid, values in entry["received"].items()
    }
    applications = {}
    for pid, result in entry["results"].items():
        multiset = received[int(pid)]
        # Stage breakdown is not archived; store the result with the
        # received multiset standing in for the reduced/selected stages.
        applications[int(pid)] = MSRApplication(
            received=multiset,
            reduced=multiset,
            selected=multiset,
            result=float(result),
        )
    static_classes = entry.get("static_classes")
    return RoundRecord(
        round_index=entry["round"],
        faulty_at_send=frozenset(entry["faulty_at_send"]),
        cured_at_send=frozenset(entry["cured_at_send"]),
        positions_after=frozenset(entry["positions_after"]),
        values_before=MappingProxyType(_str_keys_to_int(entry["values_before"])),
        sent=MappingProxyType(
            {
                int(pid): (
                    None if outbox is None else _str_keys_to_int(outbox)
                )
                for pid, outbox in entry["sent"].items()
            }
        ),
        received=MappingProxyType(received),
        heard=MappingProxyType(
            {int(pid): frozenset(s) for pid, s in entry["heard"].items()}
        ),
        applications=MappingProxyType(applications),
        values_after=MappingProxyType(_str_keys_to_int(entry["values_after"])),
        static_classes=(
            None
            if static_classes is None
            else MappingProxyType(
                {int(pid): FaultClass(cls) for pid, cls in static_classes.items()}
            )
        ),
    )


def _int_keys_to_str(mapping: dict[int, float]) -> dict[str, float]:
    return {str(key): float(value) for key, value in mapping.items()}


def _str_keys_to_int(mapping: dict[str, float]) -> dict[int, float]:
    return {int(key): float(value) for key, value in mapping.items()}

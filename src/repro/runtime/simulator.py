"""The round-based synchronous simulator (paper Section 3).

Executes the paper's computational model: a sequence of synchronous
rounds, each divided into *send*, *receive* and *computation* phases,
with mobile Byzantine agents (or static mixed-mode faults) driven by a
:class:`~repro.runtime.controllers.FaultController`.

One round proceeds as:

1. **fault planning** -- the controller moves agents per the model's
   timing and fixes every corrupted send/compute of the round;
2. **send** -- correct processes broadcast their value via the
   protocol's send rule (which silences aware-cured processes, M1);
   faulty processes submit the adversary's per-recipient messages;
3. **receive** -- the network delivers all messages; omissions are
   detected (benign);
4. **computation** -- every non-occupied process applies the MSR
   function to its received multiset; occupied processes end the round
   with adversary-chosen garbage.  Cured processes thereby return to
   the correct state (Lemma 5).

The simulator is deterministic: a config (including its seed) fully
determines the produced trace.

Two levels of trace detail are supported.  ``trace_detail="full"`` (the
default) records everything the checkers and mapping experiments need:
message matrices, per-process multisets, MSR applications.  For large
scenario sweeps that only consume decisions and diameters,
``trace_detail="lite"`` executes the *same* value dynamics -- the
adversary RNG stream, fault plans, multisets and MSR arithmetic are
identical operation-for-operation -- but skips every per-round snapshot
(``sent``/``received``/``heard``/``applications``), bypasses the
network's bookkeeping, and returns a compact
:class:`~repro.runtime.trace.LiteTrace`.  Decisions, round counts and
diameter trajectories are bit-identical between the two modes.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence
from types import MappingProxyType
from typing import Literal

from ..msr.base import MSRApplication
from ..msr.multiset import ValueMultiset
from .config import MobileFaultSetup, SimulationConfig, StaticMixedSetup
from .controllers import (
    CrossRunPlanner,
    FaultController,
    MobileFaultController,
    RoundPlan,
    StaticMixedController,
)
from ..telemetry import trace_span
from .families import get_family
from .kernel import RoundKernel
from .network import SynchronousNetwork
from .protocol import MSRVotingProtocol, StatefulRoundProtocol, VotingProtocol
from .rng import derive_rng
from .trace import (
    BroadcastOutbox,
    LiteTrace,
    RoundRecord,
    Trace,
    _LazyApplications,
    _LazyHeard,
    _LazyReceived,
)

try:  # numpy is optional: every scalar path below runs without it.
    import numpy as _np
except Exception:  # pragma: no cover - exercised only without numpy
    _np = None

__all__ = [
    "ArrayValues",
    "RunBatchOut",
    "ShmBatchLayout",
    "SynchronousSimulator",
    "run_simulation",
    "simulate_batch",
    "simulate_many",
    "TraceDetail",
]

TraceDetail = Literal["full", "lite"]


class RunBatchOut:
    """A caller-provided output buffer for :func:`simulate_many`.

    Holds the stacked per-run result arrays -- final values, decision
    membership, executed round counts, termination flags and the
    diameter trajectory -- as writable views over a single flat buffer
    (typically a ``multiprocessing.shared_memory`` block mapped by
    :meth:`ShmBatchLayout.attach`).  The simulator fills one row per
    finished run; the parent process reconstructs bit-identical results
    from the rows without any of the payload ever being pickled.

    ``written`` records which slots the simulator actually filled, so
    callers can tell a written row from a slot whose run was skipped
    (cache hit) or errored before producing a trace.
    """

    __slots__ = (
        "final_values",
        "decision_mask",
        "rounds",
        "terminated",
        "diameters",
        "diameter_len",
        "written",
    )

    def __init__(
        self,
        final_values,
        decision_mask,
        rounds,
        terminated,
        diameters,
        diameter_len,
    ) -> None:
        self.final_values = final_values
        self.decision_mask = decision_mask
        self.rounds = rounds
        self.terminated = terminated
        self.diameters = diameters
        self.diameter_len = diameter_len
        self.written: set[int] = set()

    def write(self, slot: int, trace) -> None:
        """Record one finished run's trace into row ``slot``.

        Works for any trace flavour (lite, full, fallback paths): only
        the condensed quantities a :class:`CellResult` needs are
        written, and float64 round-trips are exact, so reconstruction
        is bit-identical to condensing the trace in-process.
        """
        row = self.final_values[slot]
        mask = self.decision_mask[slot]
        mask[:] = 0
        for pid, value in trace.decisions.items():
            row[pid] = value
            mask[pid] = 1
        self.rounds[slot] = trace.rounds_executed()
        self.terminated[slot] = 1 if trace.terminated else 0
        series = trace.diameters()
        if len(series) > self.diameters.shape[1]:
            raise ValueError(
                f"diameter series of {len(series)} entries exceeds the "
                f"planned capacity of {self.diameters.shape[1]} (layout "
                "planned from a different round budget?)"
            )
        self.diameters[slot, : len(series)] = series
        self.diameter_len[slot] = len(series)
        self.written.add(slot)


class ShmBatchLayout:
    """Array offsets of one :class:`RunBatchOut` inside a flat buffer.

    A compact, picklable header describing where the stacked result
    arrays of ``runs`` runs of ``n`` processes live inside one
    contiguous byte buffer (a shared-memory block): float64 final
    values and diameter series, int64 round counts and series lengths,
    uint8 decision masks and termination flags, each section aligned to
    its item size.  Workers plan the layout, create a block of
    :attr:`total_bytes`, and ship only this header plus per-run scalars
    back to the parent, which re-attaches the same views.
    """

    __slots__ = ("runs", "n", "diameter_cap")

    def __init__(self, runs: int, n: int, diameter_cap: int) -> None:
        if runs < 1 or n < 1 or diameter_cap < 1:
            raise ValueError(
                f"layout dimensions must be positive, got runs={runs}, "
                f"n={n}, diameter_cap={diameter_cap}"
            )
        self.runs = runs
        self.n = n
        self.diameter_cap = diameter_cap

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShmBatchLayout(runs={self.runs}, n={self.n}, "
            f"diameter_cap={self.diameter_cap})"
        )

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ShmBatchLayout)
            and self.runs == other.runs
            and self.n == other.n
            and self.diameter_cap == other.diameter_cap
        )

    def __reduce__(self):
        return (ShmBatchLayout, (self.runs, self.n, self.diameter_cap))

    def _sections(self) -> tuple[list[tuple[str, str, tuple[int, ...], int]], int]:
        """(name, dtype, shape, offset) for every array, plus the total."""
        specs = (
            ("final_values", "float64", (self.runs, self.n)),
            ("diameters", "float64", (self.runs, self.diameter_cap)),
            ("rounds", "int64", (self.runs,)),
            ("diameter_len", "int64", (self.runs,)),
            ("decision_mask", "uint8", (self.runs, self.n)),
            ("terminated", "uint8", (self.runs,)),
        )
        itemsizes = {"float64": 8, "int64": 8, "uint8": 1}
        sections = []
        offset = 0
        for name, dtype, shape in specs:
            item = itemsizes[dtype]
            offset = -(-offset // item) * item
            sections.append((name, dtype, shape, offset))
            offset += item * math.prod(shape)
        return sections, offset

    @property
    def total_bytes(self) -> int:
        """Bytes one buffer needs to hold every section."""
        return self._sections()[1]

    def attach(self, buffer) -> RunBatchOut:
        """Map the layout's arrays over ``buffer`` (zero-copy views)."""
        if _np is None:  # pragma: no cover - numpy is a test dependency
            raise RuntimeError("ShmBatchLayout.attach requires numpy")
        sections, total = self._sections()
        if len(buffer) < total:
            raise ValueError(
                f"buffer of {len(buffer)} bytes is too small for a "
                f"layout needing {total}"
            )
        arrays = {
            name: _np.frombuffer(
                buffer, dtype=dtype, count=math.prod(shape), offset=offset
            ).reshape(shape)
            for name, dtype, shape, offset in sections
        }
        return RunBatchOut(**arrays)


class ArrayValues(Mapping):
    """A per-round value snapshot backed by a float64 array.

    The vectorized round engine keeps agent state in one numpy array;
    fault controllers and value strategies, however, consume plain
    ``{pid: value}`` mappings.  This Mapping serves both: ``array``
    keeps the float64 mirror that array-aware consumers
    (``correct_range``, the split-camp assignment) duck-type via
    ``getattr(values, "array", None)``, while any mapping access
    materializes a dict of Python floats keyed ``0..n-1`` on first use
    (bit-identical iteration order and ``repr`` to the scalar path's
    snapshots).  The camp-declaring fast path never touches the dict,
    so deferring it saves an O(n) build per planned view.  The array is
    treated as immutable for the snapshot's lifetime -- mutation always
    goes through a copy.
    """

    __slots__ = ("array", "_dict")

    def __init__(self, array) -> None:
        self.array = array
        self._dict = None

    def _materialized(self) -> dict[int, float]:
        mapping = self._dict
        if mapping is None:
            mapping = self._dict = dict(enumerate(self.array.tolist()))
        return mapping

    def __getitem__(self, pid: int) -> float:
        return self._materialized()[pid]

    def __iter__(self):
        return iter(self._materialized())

    def __len__(self) -> int:
        return self.array.shape[0]

    def __contains__(self, pid: object) -> bool:
        return pid in self._materialized()

    def get(self, pid, default=None):
        return self._materialized().get(pid, default)

    def keys(self):
        return self._materialized().keys()

    def values(self):
        return self._materialized().values()

    def items(self):
        return self._materialized().items()

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ArrayValues):
            other = other._materialized()
        if isinstance(other, Mapping):
            return self._materialized() == dict(other)
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    __hash__ = None  # mutable-adjacent snapshot: unhashable, like dict


def run_simulation(
    config: SimulationConfig,
    trace_detail: TraceDetail = "full",
    kernel: RoundKernel | None = None,
) -> Trace | LiteTrace:
    """Build a simulator from ``config``, run it to completion.

    ``kernel`` optionally supplies a shared :class:`RoundKernel` so
    callers running many lite simulations (sweep batches) reuse its
    scratch buffers; omitted, each run gets a fresh one.
    """
    return SynchronousSimulator(
        config, trace_detail=trace_detail, kernel=kernel
    ).run()


def simulate_batch(
    configs: Iterable[SimulationConfig],
    trace_detail: TraceDetail = "lite",
    kernel: RoundKernel | None = None,
) -> list[Trace | LiteTrace]:
    """Run many configs through one shared round kernel.

    The in-worker batching primitive of the sweep engine: one dispatch
    runs every config back to back, so per-simulation buffers are
    allocated once per batch instead of once per cell.  Results are
    identical to running each config through :func:`run_simulation`
    individually -- the kernel holds scratch state only, never
    simulation state.
    """
    shared = kernel if kernel is not None else RoundKernel()
    return [
        SynchronousSimulator(
            config, trace_detail=trace_detail, kernel=shared
        ).run()
        for config in configs
    ]


def simulate_many(
    configs: Iterable[SimulationConfig],
    trace_detail: TraceDetail = "lite",
    kernel: RoundKernel | None = None,
    out: RunBatchOut | None = None,
    out_slots: Sequence[int] | None = None,
) -> list[Trace | LiteTrace]:
    """Run many configs with cross-run vectorization where possible.

    The cross-run engine stacks compatible lite runs -- same ``n``,
    MSR function (algorithm/f/family) and mobile model, each passing
    the per-cell vectorized preconditions (numpy, complete topology,
    broadcast sends, batchable MSR stages) -- into one ``(R, n)``
    float64 state matrix and advances all of them in lockstep: one
    whole-matrix pass per round for exclusion masks, correct ranges,
    corruption patches, the broadcast sort and the width-grouped MSR
    fold (see :meth:`RoundKernel.fold_rows_many`).  Runs that terminate
    early drop out of the active set, so converged rows stop costing
    work.

    Results are **bit-identical** to :func:`simulate_batch` over the
    same configs: per-run decisions (movement, outboxes, RNG streams)
    still run through each run's own controller in per-cell order, and
    batched quantities are injected only where provably equal to the
    per-run derivation (the equivalence suite pins this).  Configs that
    don't qualify -- full traces, stateful families, partial graphs,
    static-mixed setups -- silently fall back to their normal
    :meth:`SynchronousSimulator.run` path, in input order.

    ``out`` -- a :class:`RunBatchOut`, typically views over a
    shared-memory block -- receives every finished run's condensed
    result (final values, decision membership, round count,
    termination flag, diameter series); ``out_slots`` maps config
    ``i`` to its output row (defaults to ``i``).  Rows are written
    only after the whole call succeeds, so a mid-flight rejection
    never leaves partially-filled output.
    """
    shared = kernel if kernel is not None else RoundKernel()
    sims = [
        SynchronousSimulator(config, trace_detail=trace_detail, kernel=shared)
        for config in configs
    ]
    with trace_span("sim.many", runs=len(sims)) as span:
        traces: list = [None] * len(sims)
        groups: dict[tuple, list[int]] = {}
        for index, sim in enumerate(sims):
            key = sim._cross_run_key()
            if key is None:
                traces[index] = sim.run()
            else:
                groups.setdefault(key, []).append(index)
        stacked = 0
        for indices in groups.values():
            if len(indices) == 1:
                # A batch of one gains nothing from stacking; the
                # per-cell vectorized path is the same computation.
                index = indices[0]
                traces[index] = sims[index].run()
                continue
            stacked += 1
            for index, trace in zip(
                indices, _run_lite_many([sims[i] for i in indices])
            ):
                traces[index] = trace
        span.set("stacked_groups", stacked)
        if out is not None:
            slots = range(len(sims)) if out_slots is None else out_slots
            for slot, trace in zip(slots, traces):
                out.write(slot, trace)
        return traces


def _run_lite_many(sims: list[SynchronousSimulator]) -> list[LiteTrace]:
    """The cross-run lite loop: R compatible runs on one (R, n) stack.

    Bit-identity with `_run_lite_vectorized` per run rests on the same
    three seams as the per-cell engine -- stable sorts over
    +inf-padded rows equal sorts of the masked subarrays, masked
    min/max reductions *select* elements (no arithmetic), and every
    signed-zero/degenerate endpoint falls back to the per-cell scalar
    rescan -- plus the :class:`CrossRunPlanner`'s per-run RNG ordering
    contract.  Round 0 always runs per cell: it needs the per-inbox
    received diameter and seeds each run's agent positions.
    """
    np = _np
    first = sims[0]
    n = first.config.n
    kernel = first.kernel
    batch = first._cross_run_batch
    run_count = len(sims)
    for sim in sims:
        sim._lite_evaluate = sim.kernel.prepare(sim.protocol)
    stack = np.array(
        [[sim._values[pid] for pid in range(n)] for sim in sims],
        dtype=np.float64,
    )
    all_pids = frozenset(range(n))
    extents: list[list] = [[] for _ in range(run_count)]
    initially_nonfaulty = [all_pids] * run_count
    positions_after: list[frozenset[int]] = [frozenset()] * run_count
    terminated = [False] * run_count
    max_rounds = [sim.config.max_rounds for sim in sims]
    planner = CrossRunPlanner(
        [sim.controller for sim in sims],
        [sim._adversary_rng for sim in sims],
        wrap=ArrayValues,
    )

    active = list(range(run_count))
    round_index = 0
    while True:
        active = [
            r
            for r in active
            if not terminated[r] and round_index < max_rounds[r]
        ]
        if not active:
            break
        if round_index == 0:
            for r in active:
                sim = sims[r]
                plan, _, arr_after = sim._advance_round_vectorized(
                    sim._cross_run_batch, stack[r], True
                )
                stack[r] = arr_after
                initially_nonfaulty[r] = all_pids - plan.faulty_at_send
                positions_after[r] = plan.positions_after
                extent = sim._array_extent(arr_after, plan.positions_after)
                extents[r].append(extent)
                diameter = 0.0 if extent is None else extent[1] - extent[0]
                sim._round_index = 1
                if sim.family.decision_ready(
                    round_index
                ) and sim.config.termination.should_stop(
                    round_index,
                    diameter,
                    sim._first_round_received_diameter,
                ):
                    terminated[r] = True
            round_index += 1
            continue

        count = len(active)
        sub = stack[active]
        plans, patched = planner.plan_many(round_index, sub, active)

        # -- send phase: one masked stable sort over the whole stack --
        silent_rows: list[int] = []
        silent_cols: list[int] = []
        counts = [0] * count
        for i, r in enumerate(active):
            plan = plans[i]
            silent = set(plan.send_overrides)
            silent.update(plan.forced_silent)
            if sims[r]._cured_aware and plan.cured_at_send:
                silent.update(plan.cured_at_send)
            counts[i] = n - len(silent)
            for pid in silent:
                silent_rows.append(i)
                silent_cols.append(pid)
        send_mask = np.ones((count, n), dtype=bool)
        if silent_rows:
            send_mask[silent_rows, silent_cols] = False
        sorted_bcast = np.sort(
            np.where(send_mask, patched, np.inf), axis=1, kind="stable"
        )

        # -- receive+compute: width-grouped fold across the runs ------
        entries: list = [None] * count
        for i in range(count):
            overrides = plans[i].send_overrides
            prepared = kernel.batch_rows(
                np,
                sorted_bcast[i, : counts[i]],
                list(overrides.values()) if overrides else None,
            )
            if prepared is not None:
                rows, codes = prepared
                entries[i] = (rows, codes, n)
        folded = kernel.fold_rows_many(batch, np, entries)

        new_stack = np.empty_like(sub)
        garbage_rows: list[int] = []
        garbage_cols: list[int] = []
        garbage_vals: list[float] = []
        for i, r in enumerate(active):
            plan = plans[i]
            new_arr = folded[i]
            if new_arr is None:
                # This run's round isn't batchable (non-camp overrides,
                # below-bound fold): the exact per-cell scalar fallback
                # of `_advance_round_vectorized`, canonical errors
                # included.
                sim = sims[r]
                work = dict(enumerate(patched[i].tolist()))
                sim._values = work
                broadcasts = sim._broadcast_values_lite(plan)
                broadcasts.sort()
                overrides = plan.send_overrides
                kernel.compute_phase(
                    sim.protocol,
                    sim._lite_evaluate,
                    n,
                    broadcasts,
                    list(overrides.values()) if overrides else None,
                    plan.compute_corruptions,
                    work,
                    False,
                )
                for pid, garbage in plan.compute_corruptions.items():
                    work[pid] = garbage
                new_stack[i] = np.array(
                    list(work.values()), dtype=np.float64
                )
            else:
                new_stack[i] = new_arr
                for pid, garbage in plan.compute_corruptions.items():
                    garbage_rows.append(i)
                    garbage_cols.append(pid)
                    garbage_vals.append(garbage)
        if garbage_rows:
            new_stack[garbage_rows, garbage_cols] = garbage_vals
        stack[active] = new_stack

        # -- extents + termination: batched reduction, per-run rescue --
        excl_rows: list[int] = []
        excl_cols: list[int] = []
        for i, r in enumerate(active):
            positions_after[r] = plans[i].positions_after
            for pid in plans[i].positions_after:
                excl_rows.append(i)
                excl_cols.append(pid)
        ext_mask = np.ones((count, n), dtype=bool)
        if excl_rows:
            ext_mask[excl_rows, excl_cols] = False
        lows = np.where(ext_mask, new_stack, np.inf).min(axis=1).tolist()
        highs = np.where(ext_mask, new_stack, -np.inf).max(axis=1).tolist()
        for i, r in enumerate(active):
            low = lows[i]
            high = highs[i]
            if (
                low == 0.0
                or high == 0.0
                or math.isinf(low)
                or math.isinf(high)
            ):
                # Signed-zero endpoints / fully-excluded rows: the
                # per-cell first-wins scan decides.
                extent = sims[r]._array_extent(
                    new_stack[i], plans[i].positions_after
                )
            else:
                extent = (low, high)
            extents[r].append(extent)
            diameter = 0.0 if extent is None else extent[1] - extent[0]
            sim = sims[r]
            sim._round_index = round_index + 1
            if sim.family.decision_ready(
                round_index
            ) and sim.config.termination.should_stop(
                round_index,
                diameter,
                sim._first_round_received_diameter,
            ):
                terminated[r] = True
        round_index += 1

    traces = []
    for r, sim in enumerate(sims):
        final = stack[r].tolist()
        sim._values = dict(enumerate(final))
        decisions = {
            pid: final[pid] for pid in sorted(all_pids - positions_after[r])
        }
        traces.append(
            LiteTrace(
                n=n,
                f=sim.config.f,
                model=sim._setup_model(sim.config),
                algorithm_name=sim.config.algorithm.name,
                epsilon=sim.config.epsilon,
                initial_values=MappingProxyType(
                    {
                        pid: float(v)
                        for pid, v in enumerate(sim.config.initial_values)
                    }
                ),
                initially_nonfaulty=initially_nonfaulty[r],
                round_extents=tuple(extents[r]),
                decisions=decisions,
                terminated=terminated[r],
                controller_description=(
                    f"{sim.controller.describe()} | {sim.config.describe()} "
                    "| trace_detail=lite"
                ),
            )
        )
    return traces


class SynchronousSimulator:
    """Drives one configured computation to its decision."""

    def __init__(
        self,
        config: SimulationConfig,
        trace_detail: TraceDetail = "full",
        kernel: RoundKernel | None = None,
    ) -> None:
        config.validate()
        if trace_detail not in ("full", "lite"):
            raise ValueError(
                f"trace_detail must be 'full' or 'lite', got {trace_detail!r}"
            )
        self.config = config
        self.trace_detail: TraceDetail = trace_detail
        self.kernel = kernel if kernel is not None else RoundKernel()
        # The configured algorithm family decides the protocol shape:
        # scalar VotingProtocols run the recorder/kernel paths below,
        # StatefulRoundProtocols run the stateful driver.
        self.family = get_family(config.family)
        self.protocol: VotingProtocol | StatefulRoundProtocol = (
            self.family.build_protocol(config)
        )
        # The communication graph of the run; the complete default
        # leaves every path below byte-identical to pre-topology code.
        self.topology = config.resolve_topology()
        self.network = SynchronousNetwork(config.n, topology=self.topology)
        self.controller = self._build_controller(config, self.topology)
        self._adversary_rng = derive_rng(config.seed, "adversary")
        self._values = {
            pid: float(value) for pid, value in enumerate(config.initial_values)
        }
        self._round_index = 0
        self._first_round_received_diameter: float | None = None
        self._cured_aware = self._model_cured_aware(config)
        self._trace = self._new_trace(config) if trace_detail == "full" else None

    # -- public API -----------------------------------------------------------

    def run(self) -> Trace | LiteTrace:
        """Execute rounds until the termination rule fires (or the cap)."""
        with trace_span(
            "sim.run", n=self.config.n, family=self.config.family
        ) as span:
            if isinstance(self.protocol, StatefulRoundProtocol):
                trace = self._run_stateful()
            elif self.trace_detail == "lite":
                trace = self._run_lite()
            else:
                trace = self._run_full()
            span.set("rounds", trace.rounds_executed())
            return trace

    def _run_full(self) -> Trace:
        """Full-trace run: vectorized recorder when available, else step()."""
        batch = self._vectorized_setup()
        if batch is not None:
            return self._run_full_vectorized(batch)
        terminated = False
        for _ in range(self.config.max_rounds):
            record = self.step()
            if self.family.decision_ready(
                record.round_index
            ) and self.config.termination.should_stop(
                record.round_index,
                record.nonfaulty_diameter_after(),
                self._first_round_received_diameter,
            ):
                terminated = True
                break
        self._trace.terminated = terminated
        final = self._trace.final_round
        self._trace.decisions = dict(final.nonfaulty_values_after())
        return self._trace

    def step(self) -> RoundRecord:
        """Execute a single synchronous round and record it (full mode)."""
        if self.trace_detail != "full":
            raise RuntimeError(
                "step() requires trace_detail='full'; the lite fast path "
                "does not materialize RoundRecords"
            )
        plan = self.controller.plan_round(
            self._round_index, dict(self._values), self._adversary_rng
        )

        # Departing agents corrupt the memories they leave behind
        # (movement happens before the send phase in M1-M3).
        for pid, corrupted in plan.memory_corruptions.items():
            self._values[pid] = corrupted
        values_before = dict(self._values)

        sent = self._send_phase(plan)
        delivery = self.network.deliver()

        received: dict[int, ValueMultiset] = {}
        heard: dict[int, frozenset[int]] = {}
        applications: dict[int, MSRApplication] = {}
        computing = [
            pid for pid in range(self.config.n) if pid not in plan.compute_corruptions
        ]
        for pid in computing:
            inbox = delivery.by_recipient.get(pid, {})
            multiset = ValueMultiset(inbox.values())
            received[pid] = multiset
            heard[pid] = frozenset(inbox)
            application = self.protocol.compute(pid, multiset)
            applications[pid] = application
            self._values[pid] = application.result
        for pid, garbage in plan.compute_corruptions.items():
            self._values[pid] = garbage

        if self._round_index == 0:
            diameters = [m.diameter() for m in received.values()]
            self._first_round_received_diameter = max(diameters, default=0.0)

        record = RoundRecord(
            round_index=self._round_index,
            faulty_at_send=plan.faulty_at_send,
            cured_at_send=plan.cured_at_send,
            positions_after=plan.positions_after,
            values_before=MappingProxyType(values_before),
            sent=MappingProxyType(sent),
            received=MappingProxyType(received),
            heard=MappingProxyType(heard),
            applications=MappingProxyType(applications),
            values_after=MappingProxyType(dict(self._values)),
            static_classes=plan.static_classes,
        )
        if self._round_index == 0:
            # Round 0 is where initial agent placement becomes known; the
            # processes outside it are the Validity reference set.
            self._trace.initially_nonfaulty = (
                frozenset(range(self.config.n)) - plan.faulty_at_send
            )
        self._trace.rounds.append(record)
        self._round_index += 1
        return record

    # -- the trace-lite fast path ----------------------------------------------

    def _run_lite(self) -> LiteTrace:
        """Run to completion recording only extents and decisions.

        The value dynamics are identical to the full path: the fault
        plan (and its RNG consumption), the per-recipient multisets and
        the MSR arithmetic match operation-for-operation.  Only the
        recording differs -- no message matrices, no MSR application
        snapshots, no mapping-proxy wrappers -- and the message exchange
        skips the network object's n^2 dictionary bookkeeping in favour
        of one shared broadcast list per round.  The receive+compute
        inner loop is delegated to the :class:`RoundKernel`, which
        evaluates the MSR function once per *distinct inbox* on flat
        sorted arrays (see :mod:`repro.runtime.kernel`).

        When the vectorized engine applies (numpy present, complete
        graph, broadcast send semantics, batchable MSR stages), the
        whole loop runs on array state instead -- bit-identical values,
        an order of magnitude faster at paper scale.
        """
        batch = self._vectorized_setup()
        if batch is not None:
            return self._run_lite_vectorized(batch)
        n = self.config.n
        termination = self.config.termination
        terminated = False
        extents: list[tuple[float, float] | None] = []
        initially_nonfaulty = frozenset(range(n))
        positions_after: frozenset[int] = frozenset()
        kernel = self.kernel
        evaluate = kernel.prepare(self.protocol)
        # In-tree scalar families require the complete graph, so this
        # is normally None; a future relay-capable VotingProtocol rides
        # the kernel's neighbor-aware path through the same loop.
        restricted = None if self.topology.is_complete else self.topology

        for _ in range(self.config.max_rounds):
            round_index = self._round_index
            plan = self.controller.plan_round(
                round_index, dict(self._values), self._adversary_rng
            )
            for pid, corrupted in plan.memory_corruptions.items():
                self._values[pid] = corrupted

            overrides = plan.send_overrides
            override_outboxes = list(overrides.values()) if overrides else None
            if restricted is None:
                broadcasts = self._broadcast_values_lite(plan)
                broadcasts.sort()
                broadcast_map = None
                override_senders = None
            else:
                broadcasts = []
                broadcast_map = self._broadcast_map_lite(plan)
                override_senders = list(overrides) if overrides else None
            compute_corruptions = plan.compute_corruptions
            first_round = round_index == 0
            max_received_diameter = kernel.compute_phase(
                self.protocol,
                evaluate,
                n,
                broadcasts,
                override_outboxes,
                compute_corruptions,
                self._values,
                first_round,
                topology=restricted,
                broadcast_by_sender=broadcast_map,
                override_senders=override_senders,
            )
            for pid, garbage in compute_corruptions.items():
                self._values[pid] = garbage

            if first_round:
                self._first_round_received_diameter = max_received_diameter
                initially_nonfaulty = frozenset(range(n)) - plan.faulty_at_send

            positions_after = plan.positions_after
            low = high = None
            for pid, value in self._values.items():
                if pid in positions_after:
                    continue
                if low is None or value < low:
                    low = value
                if high is None or value > high:
                    high = value
            extents.append(None if low is None else (low, high))
            nonfaulty_diameter = 0.0 if low is None else high - low

            self._round_index += 1
            if self.family.decision_ready(round_index) and termination.should_stop(
                round_index,
                nonfaulty_diameter,
                self._first_round_received_diameter,
            ):
                terminated = True
                break

        decisions = {
            pid: self._values[pid]
            for pid in sorted(frozenset(range(n)) - positions_after)
        }
        return LiteTrace(
            n=n,
            f=self.config.f,
            model=self._setup_model(self.config),
            algorithm_name=self.config.algorithm.name,
            epsilon=self.config.epsilon,
            initial_values=MappingProxyType(
                {pid: float(v) for pid, v in enumerate(self.config.initial_values)}
            ),
            initially_nonfaulty=initially_nonfaulty,
            round_extents=tuple(extents),
            decisions=decisions,
            terminated=terminated,
            controller_description=(
                f"{self.controller.describe()} | {self.config.describe()} "
                "| trace_detail=lite"
            ),
        )

    # -- the vectorized array engine --------------------------------------------

    def _vectorized_setup(self):
        """The batched MSR evaluator when the array engine applies.

        Returns ``None`` (staying on the scalar reference paths) unless
        every precondition holds: numpy importable, complete topology
        (one shared broadcast list per round), exactly the MSR
        broadcast-send rule (so the silence mask is ``overrides |
        forced_silent | aware-cured``), and batchable MSR stages per
        :meth:`RoundKernel.prepare_batch` -- which also encodes the
        kernel's ``vectorized``/``group_inboxes``/``flat_msr`` toggles.
        """
        if _np is None:
            return None
        protocol = self.protocol
        if isinstance(protocol, StatefulRoundProtocol):
            return None
        if type(protocol).send_value is not MSRVotingProtocol.send_value:
            return None
        if not self.topology.is_complete:
            return None
        return self.kernel.prepare_batch(protocol)

    def _cross_run_key(self):
        """Cross-run stacking class of this simulator, or ``None``.

        Two simulators sharing a key fold *interchangeable* multisets:
        same row width (``n``) and same MSR reduction (algorithm name
        plus the ``f``/family that parameterize its trim), under the
        same mobile model -- so their rounds can share one width-grouped
        fold (:meth:`RoundKernel.fold_rows_many`) and one batch
        evaluator.  Movement, attack, seeds and termination may differ
        freely: those stay per-run.  ``None`` means the run must stay
        on its per-cell path (non-lite detail, stateful family, static
        setup, or a failed vectorized precondition).
        """
        if self.trace_detail != "lite":
            return None
        if not isinstance(self.controller, MobileFaultController):
            return None
        batch = self._vectorized_setup()
        if batch is None:
            return None
        self._cross_run_batch = batch
        config = self.config
        return (
            config.n,
            config.f,
            config.algorithm.name,
            config.family,
            self._setup_model(config),
        )

    def _advance_round_vectorized(self, batch, arr, first_round: bool):
        """Advance one round on array state.

        Returns ``(plan, arr_before, arr_after)`` where ``arr_before``
        is the post-memory-corruption/pre-compute snapshot and
        ``arr_after`` the end-of-round values (compute corruptions
        applied).  Round 0 and rounds the batch engine cannot express
        (non-camp overrides, below-bound folds) run through the exact
        scalar kernel path instead -- same values, canonical errors.
        """
        np = _np
        n = self.config.n
        kernel = self.kernel
        plan = self.controller.plan_round(
            self._round_index, ArrayValues(arr), self._adversary_rng
        )
        if plan.memory_corruptions:
            arr = arr.copy()
            corruptions = plan.memory_corruptions
            arr[list(corruptions)] = list(corruptions.values())

        overrides = plan.send_overrides
        new_arr = None
        # Round 0 always takes the scalar fallback: it is the only
        # round needing the per-inbox received diameter.
        if not first_round:
            mask = np.ones(n, dtype=bool)
            silent = set(overrides)
            silent.update(plan.forced_silent)
            if self._cured_aware and plan.cured_at_send:
                silent.update(plan.cured_at_send)
            if silent:
                mask[list(silent)] = False
            # Boolean masking preserves pid order, which is exactly the
            # scalar path's append order; the stable sort then matches
            # list.sort() bit for bit (signed-zero ties included).
            broadcasts_arr = np.sort(arr[mask], kind="stable")
            new_arr = kernel.compute_phase_batch(
                batch,
                np,
                broadcasts_arr,
                list(overrides.values()) if overrides else None,
                n,
            )
        if new_arr is None:
            work = dict(enumerate(arr.tolist()))
            self._values = work
            broadcasts = self._broadcast_values_lite(plan)
            broadcasts.sort()
            max_received_diameter = kernel.compute_phase(
                self.protocol,
                self._lite_evaluate,
                n,
                broadcasts,
                list(overrides.values()) if overrides else None,
                plan.compute_corruptions,
                work,
                first_round,
            )
            for pid, garbage in plan.compute_corruptions.items():
                work[pid] = garbage
            arr_after = np.array(list(work.values()), dtype=np.float64)
            if first_round:
                self._first_round_received_diameter = max_received_diameter
        else:
            arr_after = new_arr
            garbage = plan.compute_corruptions
            if garbage:
                arr_after[list(garbage)] = list(garbage.values())
        return plan, arr, arr_after

    def _array_extent(self, arr, excluded: frozenset[int]):
        """Non-excluded (min, max) of ``arr`` as Python floats.

        Matches the scalar extent loop bit for bit: a ``0.0`` endpoint
        could be either signed zero under numpy's min/max, so those
        rounds recompute with the first-wins scalar scan.
        """
        np = _np
        if excluded:
            mask = np.ones(arr.shape[0], dtype=bool)
            mask[list(excluded)] = False
            sub = arr[mask]
        else:
            sub = arr
        if sub.shape[0] == 0:
            return None
        low = sub.min()
        high = sub.max()
        if low == 0.0 or high == 0.0:
            low = high = None
            for pid, value in enumerate(arr.tolist()):
                if pid in excluded:
                    continue
                if low is None or value < low:
                    low = value
                if high is None or value > high:
                    high = value
            return (low, high)
        return (float(low), float(high))

    def _run_lite_vectorized(self, batch) -> LiteTrace:
        """The lite loop on array state (bit-identical to `_run_lite`)."""
        n = self.config.n
        termination = self.config.termination
        terminated = False
        extents: list[tuple[float, float] | None] = []
        initially_nonfaulty = frozenset(range(n))
        positions_after: frozenset[int] = frozenset()
        self._lite_evaluate = self.kernel.prepare(self.protocol)
        arr = _np.array(
            [self._values[pid] for pid in range(n)], dtype=_np.float64
        )

        for _ in range(self.config.max_rounds):
            round_index = self._round_index
            first_round = round_index == 0
            plan, _, arr = self._advance_round_vectorized(
                batch, arr, first_round
            )
            if first_round:
                initially_nonfaulty = frozenset(range(n)) - plan.faulty_at_send

            positions_after = plan.positions_after
            extent = self._array_extent(arr, positions_after)
            extents.append(extent)
            nonfaulty_diameter = 0.0 if extent is None else extent[1] - extent[0]

            self._round_index += 1
            if self.family.decision_ready(round_index) and termination.should_stop(
                round_index,
                nonfaulty_diameter,
                self._first_round_received_diameter,
            ):
                terminated = True
                break

        final = arr.tolist()
        self._values = dict(enumerate(final))
        decisions = {
            pid: final[pid]
            for pid in sorted(frozenset(range(n)) - positions_after)
        }
        return LiteTrace(
            n=n,
            f=self.config.f,
            model=self._setup_model(self.config),
            algorithm_name=self.config.algorithm.name,
            epsilon=self.config.epsilon,
            initial_values=MappingProxyType(
                {pid: float(v) for pid, v in enumerate(self.config.initial_values)}
            ),
            initially_nonfaulty=initially_nonfaulty,
            round_extents=tuple(extents),
            decisions=decisions,
            terminated=terminated,
            controller_description=(
                f"{self.controller.describe()} | {self.config.describe()} "
                "| trace_detail=lite"
            ),
        )

    def _run_full_vectorized(self, batch) -> Trace:
        """The full-trace loop on array state.

        Runs the exact lite dynamics and records each round from the
        send-phase primitives: ``sent`` holds one O(1)
        :class:`~repro.runtime.trace.BroadcastOutbox` per broadcaster
        (instead of an ``n``-entry dict), and
        ``received``/``heard``/``applications`` are lazy per-recipient
        views derived from ``sent`` on demand -- the P1/P2 checkers read
        only ``applications[*].result``, which is O(1), so full traces
        stop paying the ``n^2`` bookkeeping that made them an order of
        magnitude slower than lite.
        """
        n = self.config.n
        protocol = self.protocol
        cured_aware = self._cured_aware
        trace = self._trace
        termination = self.config.termination
        terminated = False
        self._lite_evaluate = self.kernel.prepare(protocol)
        arr = _np.array(
            [self._values[pid] for pid in range(n)], dtype=_np.float64
        )

        for _ in range(self.config.max_rounds):
            round_index = self._round_index
            first_round = round_index == 0
            plan, before_arr, arr = self._advance_round_vectorized(
                batch, arr, first_round
            )
            values_before = dict(enumerate(before_arr.tolist()))
            values_after = dict(enumerate(arr.tolist()))

            overrides = plan.send_overrides
            sent: dict = {}
            for pid in range(n):
                outbox = overrides.get(pid)
                if outbox is not None:
                    # The plan's outboxes are immutable round snapshots
                    # (frozen dicts / CampOutbox); storing them directly
                    # keeps the recorder O(#camps) per override sender
                    # instead of materializing n-entry dicts.
                    sent[pid] = outbox
                    continue
                if pid in plan.forced_silent:
                    sent[pid] = None
                    continue
                aware_cured = cured_aware and pid in plan.cured_at_send
                value = protocol.send_value(pid, values_before[pid], aware_cured)
                sent[pid] = None if value is None else BroadcastOutbox(n, value)
            computing = tuple(
                pid for pid in range(n) if pid not in plan.compute_corruptions
            )
            received = _LazyReceived(sent, computing)
            record = RoundRecord(
                round_index=round_index,
                faulty_at_send=plan.faulty_at_send,
                cured_at_send=plan.cured_at_send,
                positions_after=plan.positions_after,
                values_before=MappingProxyType(values_before),
                sent=MappingProxyType(sent),
                received=received,
                heard=_LazyHeard(sent, computing),
                applications=_LazyApplications(
                    received, values_after, protocol.compute
                ),
                values_after=MappingProxyType(values_after),
                static_classes=plan.static_classes,
            )
            if first_round:
                trace.initially_nonfaulty = (
                    frozenset(range(n)) - plan.faulty_at_send
                )
            trace.rounds.append(record)
            self._round_index += 1
            if self.family.decision_ready(round_index) and termination.should_stop(
                round_index,
                record.nonfaulty_diameter_after(),
                self._first_round_received_diameter,
            ):
                terminated = True
                break

        self._values = dict(enumerate(arr.tolist()))
        trace.terminated = terminated
        trace.decisions = dict(trace.final_round.nonfaulty_values_after())
        return trace

    def _broadcast_values_lite(self, plan: RoundPlan) -> list[float]:
        """Values broadcast by processes following the protocol's send rule.

        Override/forced-silent processes are excluded -- their traffic
        is read straight from the plan's per-recipient maps during the
        receive phase.
        """
        broadcasts: list[float] = []
        for pid in range(self.config.n):
            if pid in plan.send_overrides or pid in plan.forced_silent:
                continue
            aware_cured = self._cured_aware and pid in plan.cured_at_send
            value = self.protocol.send_value(pid, self._values[pid], aware_cured)
            if value is not None:
                broadcasts.append(value)
        return broadcasts

    def _broadcast_map_lite(self, plan: RoundPlan) -> dict[int, float]:
        """Per-sender broadcast values for topology-restricted rounds.

        Same send rule as :meth:`_broadcast_values_lite`, but keyed by
        sender: under a restricted graph each recipient hears only a
        subset of broadcasters, so the kernel needs sender identity to
        assemble per-neighborhood inboxes.
        """
        broadcast_map: dict[int, float] = {}
        for pid in range(self.config.n):
            if pid in plan.send_overrides or pid in plan.forced_silent:
                continue
            aware_cured = self._cured_aware and pid in plan.cured_at_send
            value = self.protocol.send_value(pid, self._values[pid], aware_cured)
            if value is not None:
                broadcast_map[pid] = value
        return broadcast_map

    # -- the stateful multi-round driver ---------------------------------------

    def _run_stateful(self) -> Trace | LiteTrace:
        """Drive a :class:`StatefulRoundProtocol` family to its decision.

        The shared round structure (fault planning, diameter and
        termination bookkeeping) lives here; everything family-specific
        -- message structure, carried state, the receive/compute fold
        -- lives in the protocol's ``run_round``.  Fault controllers
        observe the protocol's representative values, so every
        adversary and movement strategy applies unchanged.

        ``trace_detail="full"`` flips the protocol's ``recording`` flag
        and folds each round's wire record (sent matrix of
        representative scalars, structured message payloads, and --
        where the family defines them -- aggregation snapshots) into
        :class:`~repro.runtime.trace.RoundRecord` objects.  The value
        dynamics are untouched: full and lite trajectories are
        bit-identical.
        """
        protocol = self.protocol
        family = self.family
        n = self.config.n
        termination = self.config.termination
        terminated = False
        extents: list[tuple[float, float] | None] = []
        initially_nonfaulty = frozenset(range(n))
        positions_after: frozenset[int] = frozenset()
        recording = self.trace_detail == "full"
        protocol.recording = recording
        trace = self._trace

        protocol.reset(self.kernel)
        protocol.start(self.config.initial_values)
        values = protocol.values

        for _ in range(self.config.max_rounds):
            round_index = self._round_index
            plan = self.controller.plan_round(
                round_index, dict(values), self._adversary_rng
            )
            first_round = round_index == 0
            if recording:
                # run_round applies memory corruptions first thing, so
                # the pre-send snapshot is the current values plus the
                # plan's corruptions.
                values_before = dict(values)
                values_before.update(plan.memory_corruptions)
            max_received_diameter = protocol.run_round(
                plan, self._cured_aware, first_round
            )
            if first_round:
                self._first_round_received_diameter = max_received_diameter
                initially_nonfaulty = frozenset(range(n)) - plan.faulty_at_send
            if recording:
                wire = protocol.wire_record or {}
                protocol.wire_record = None
                sent = wire.get("sent") or {}
                computing = tuple(
                    pid
                    for pid in range(n)
                    if pid not in plan.compute_corruptions
                )
                received = wire.get("received")
                if received is None:
                    # Scalar-matrix families (tseng): derive the
                    # per-recipient views lazily from the sent matrix.
                    received = _LazyReceived(sent, computing)
                    heard = _LazyHeard(sent, computing)
                else:
                    heard = wire.get("heard") or {}
                payloads = wire.get("payloads")
                record = RoundRecord(
                    round_index=round_index,
                    faulty_at_send=plan.faulty_at_send,
                    cured_at_send=plan.cured_at_send,
                    positions_after=plan.positions_after,
                    values_before=MappingProxyType(values_before),
                    sent=MappingProxyType(sent),
                    received=received,
                    heard=heard,
                    applications=wire.get("applications") or {},
                    values_after=MappingProxyType(dict(values)),
                    static_classes=plan.static_classes,
                    payloads=(
                        MappingProxyType(payloads) if payloads else None
                    ),
                )
                if first_round:
                    trace.initially_nonfaulty = initially_nonfaulty
                trace.rounds.append(record)

            positions_after = plan.positions_after
            low = high = None
            for pid, value in values.items():
                if pid in positions_after:
                    continue
                if low is None or value < low:
                    low = value
                if high is None or value > high:
                    high = value
            extents.append(None if low is None else (low, high))
            nonfaulty_diameter = 0.0 if low is None else high - low

            self._round_index += 1
            # Both schedules must agree the round is a decision point:
            # the family's (stateless) and the protocol's (per-run --
            # e.g. witness phases spanning diameter-many rounds).
            if (
                family.decision_ready(round_index)
                and protocol.decision_ready(round_index)
                and termination.should_stop(
                    round_index,
                    nonfaulty_diameter,
                    self._first_round_received_diameter,
                )
            ):
                terminated = True
                break

        if recording:
            trace.terminated = terminated
            trace.decisions = dict(trace.final_round.nonfaulty_values_after())
            return trace
        decisions = {
            pid: values[pid]
            for pid in sorted(frozenset(range(n)) - positions_after)
        }
        return LiteTrace(
            n=n,
            f=self.config.f,
            model=self._setup_model(self.config),
            algorithm_name=self.config.algorithm.name,
            epsilon=self.config.epsilon,
            initial_values=MappingProxyType(
                {pid: float(v) for pid, v in enumerate(self.config.initial_values)}
            ),
            initially_nonfaulty=initially_nonfaulty,
            round_extents=tuple(extents),
            decisions=decisions,
            terminated=terminated,
            controller_description=(
                f"{self.controller.describe()} | {self.config.describe()} "
                f"| trace_detail={self.trace_detail}"
            ),
        )

    # -- phases ----------------------------------------------------------------

    def _send_phase(self, plan: RoundPlan) -> dict[int, dict[int, float] | None]:
        """Run the send phase; returns the recorded message matrix."""
        self.network.begin_round(plan.round_index)
        sent: dict[int, dict[int, float] | None] = {}
        for pid in range(self.config.n):
            if pid in plan.send_overrides:
                outbox = dict(plan.send_overrides[pid])
                self.network.submit(pid, outbox)
                sent[pid] = outbox
                continue
            if pid in plan.forced_silent:
                self.network.silent(pid)
                sent[pid] = None
                continue
            aware_cured = self._cured_aware and pid in plan.cured_at_send
            value = self.protocol.send_value(pid, self._values[pid], aware_cured)
            if value is None:
                self.network.silent(pid)
                sent[pid] = None
            else:
                self.network.broadcast(pid, value)
                sent[pid] = {q: value for q in range(self.config.n)}
        return sent

    # -- construction helpers ----------------------------------------------------

    @staticmethod
    def _build_controller(
        config: SimulationConfig, topology=None
    ) -> FaultController:
        if isinstance(config.setup, MobileFaultSetup):
            return MobileFaultController(
                n=config.n,
                f=config.f,
                model=config.setup.model,
                adversary=config.setup.adversary,
                topology=topology,
            )
        if isinstance(config.setup, StaticMixedSetup):
            return StaticMixedController(
                n=config.n,
                assignment=config.setup.assignment,
                adversary=config.setup.adversary,
                topology=topology,
            )
        raise TypeError(f"unsupported fault setup {config.setup!r}")

    @staticmethod
    def _model_cured_aware(config: SimulationConfig) -> bool:
        if isinstance(config.setup, MobileFaultSetup):
            from ..faults.models import get_semantics

            return get_semantics(config.setup.model).cured_aware
        return False

    @staticmethod
    def _setup_model(config: SimulationConfig):
        return (
            config.setup.model
            if isinstance(config.setup, MobileFaultSetup)
            else None
        )

    def _new_trace(self, config: SimulationConfig) -> Trace:
        model = self._setup_model(config)
        # initially_nonfaulty is provisional until round 0 runs and the
        # initial agent placement becomes known; step() then fixes it.
        return Trace(
            n=config.n,
            f=config.f,
            model=model,
            algorithm_name=config.algorithm.name,
            epsilon=config.epsilon,
            initial_values=MappingProxyType(
                {pid: float(v) for pid, v in enumerate(config.initial_values)}
            ),
            initially_nonfaulty=frozenset(range(config.n)),
            controller_description=(
                f"{self.controller.describe()} | {config.describe()}"
            ),
        )

"""Fault controllers: who misbehaves, when, and how, each round.

A :class:`FaultController` turns a fault model plus an adversary into a
per-round :class:`RoundPlan` the simulator executes mechanically.  Two
controllers cover the paper:

* :class:`MobileFaultController` -- the four mobile Byzantine models
  M1-M4 (paper Section 3), enforcing each model's movement timing and
  cured-state semantics;
* :class:`StaticMixedController` -- the static mixed-mode model of
  Kieckhafer-Azadmanesh [11] (benign / symmetric / asymmetric), which
  doubles as the classical static Byzantine model when only asymmetric
  faults are assigned.

Keeping the plan explicit (rather than interleaving adversary calls
with simulation steps) makes each round's fault pattern a first-class
value: traces record it, checkers inspect it, tests assert on it.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

try:  # numpy is optional: scalar planning never needs it.
    import numpy as _np
except Exception:  # pragma: no cover - exercised only without numpy
    _np = None

from ..faults.adversary import Adversary
from ..faults.mixed_mode import FaultClass, StaticFaultAssignment
from ..faults.models import CuredSendBehavior, MobileModel, ModelSemantics, get_semantics
from ..faults.value_strategies import (
    CampAssignment,
    CampOutbox,
    CrossfireAttack,
    SplitAttack,
)
from ..faults.view import AdversaryView, batch_correct_ranges

__all__ = [
    "RoundPlan",
    "FaultController",
    "MobileFaultController",
    "StaticMixedController",
    "CrossRunPlanner",
]


def _frozen_mapping(mapping: Mapping) -> Mapping:
    return MappingProxyType(dict(mapping))


def _checked_value(value: float, context: str) -> float:
    """Reject non-finite adversary outputs at the model boundary.

    The failure model ranges over *real* values; NaN or infinities are
    artifacts of a buggy strategy, and letting them into multisets
    would surface as confusing arithmetic failures rounds later.
    """
    value = float(value)
    if not math.isfinite(value):
        raise ValueError(
            f"adversary produced non-finite value {value!r} ({context}); "
            "value strategies must return finite reals"
        )
    return value


def _with_corruptions(
    values: Mapping[int, float], corruptions: Mapping[int, float]
) -> Mapping[int, float]:
    """The round's value snapshot with memory corruptions applied.

    Without corruptions the snapshot itself is the answer (views never
    mutate it).  With corruptions, an array-backed snapshot (see
    :class:`~repro.runtime.simulator.ArrayValues`) is patched in array
    form so the attack view keeps its fast ``correct_range`` path;
    plain dicts take the classic copy-and-update.
    """
    if not corruptions:
        return values
    array = getattr(values, "array", None)
    if array is not None:
        patched = array.copy()
        patched[list(corruptions)] = list(corruptions.values())
        return type(values)(patched)
    attack_values = dict(values)
    attack_values.update(corruptions)
    return attack_values


def _float_outbox(outbox: dict[int, float]) -> dict[int, float]:
    """Coerce every outbox entry to ``float``, preserving order.

    Matches the per-message ``float(attack(...))`` coercion of the
    pre-batch controllers, so strategies returning ints keep working.
    """
    return {recipient: float(value) for recipient, value in outbox.items()}


def _checked_outbox(outbox: dict[int, float], context: str) -> dict[int, float]:
    """Validate a whole per-recipient map in one C-level pass.

    Equivalent to `_checked_value` on every entry, but the happy path
    (always, unless a strategy is buggy) costs one ``all(map(...))``
    instead of a Python call per message -- outbox construction is the
    hottest part of fault planning.
    """
    if not all(map(math.isfinite, outbox.values())):
        for recipient, value in outbox.items():
            _checked_value(value, f"{context}->p{recipient}")
    return outbox


def _camp_outbox(
    camps, view: AdversaryView, sender: int, n: int, context: str
) -> Mapping[int, float]:
    """Validate declared camps (O(#camps) per sender) into a CampOutbox.

    The assignment tuple is shared across the senders of a round
    (strategies memoize it on the view), so its O(n) shape scan runs
    once per round, not once per sender.  The id is stable for the
    round: the tuple stays alive in the plan's outboxes.
    """
    camps.validate_values(context)
    view.memo(
        ("camps-assignment-ok", id(camps.assignment), len(camps.values)),
        lambda: camps.validate_assignment(n, context),
    )
    return CampOutbox(camps)


def _attack_override(
    adversary: Adversary, view: AdversaryView, sender: int, n: int
) -> Mapping[int, float]:
    """One faulty sender's override map, via camps when declared.

    Camp-declaring strategies (see
    :meth:`~repro.faults.value_strategies.ValueStrategy.attack_camps`)
    skip the ``n``-entry dict entirely: validation is O(#camps), the
    shared assignment is built once per round, and the round kernel
    groups recipients by camp index.  The mapping is value-identical to
    the materialized outbox either way -- the strategy suite asserts it.
    """
    camps = adversary.attack_camps(view, sender)
    if camps is not None:
        return _camp_outbox(camps, view, sender, n, f"attack camps p{sender}")
    return MappingProxyType(
        _checked_outbox(
            _float_outbox(adversary.attack_outbox(view, sender, range(n))),
            f"attack message p{sender}",
        )
    )


def _planted_override(
    adversary: Adversary, view: AdversaryView, sender: int, n: int
) -> Mapping[int, float]:
    """One cured sender's M3 planted queue, via camps when declared.

    The planted-queue counterpart of :func:`_attack_override`: since
    most strategies plant exactly what they would attack with, their
    attack camps carry over and the per-recipient dict materialization
    (the ROADMAP's remaining O(n*f) planning floor) disappears for
    them too.  Value-identical to the materialized queue either way.
    """
    camps = adversary.planted_camps(view, sender)
    if camps is not None:
        return _camp_outbox(camps, view, sender, n, f"planted camps p{sender}")
    return MappingProxyType(
        _checked_outbox(
            _float_outbox(adversary.planted_outbox(view, sender, range(n))),
            f"planted message p{sender}",
        )
    )


@dataclass(frozen=True)
class RoundPlan:
    """Everything fault-related that happens in one round.

    Attributes
    ----------
    faulty_at_send:
        Processes whose send phase the adversary controls this round.
    cured_at_send:
        Processes in the cured state during this round's send phase.
    positions_after:
        Agent hosts at the end of the round (equals ``faulty_at_send``
        except in M4, where agents move with the messages).
    memory_corruptions:
        Values the departing agents left in cured processes' memories;
        applied before the send phase.
    send_overrides:
        Per-recipient message maps for processes whose outgoing traffic
        the adversary dictates (faulty processes; M3 planted queues;
        static symmetric/asymmetric faults).
    forced_silent:
        Processes that omit regardless of protocol logic (static benign
        faults).  M1 cured silence is *not* forced here -- it is the
        protocol's own ``if cured: nop`` guard, driven by awareness.
    compute_corruptions:
        Garbage each occupied process's computation phase ends with.
    static_classes:
        For static runs, the fixed class of each non-correct process.
    """

    round_index: int
    faulty_at_send: frozenset[int]
    cured_at_send: frozenset[int]
    positions_after: frozenset[int]
    memory_corruptions: Mapping[int, float] = field(default_factory=dict)
    send_overrides: Mapping[int, Mapping[int, float]] = field(default_factory=dict)
    forced_silent: frozenset[int] = frozenset()
    compute_corruptions: Mapping[int, float] = field(default_factory=dict)
    static_classes: Mapping[int, FaultClass] | None = None


class FaultController(ABC):
    """Produces the per-round fault plan the simulator executes."""

    @abstractmethod
    def plan_round(
        self, round_index: int, values: Mapping[int, float], rng: random.Random
    ) -> RoundPlan:
        """Plan faults for ``round_index`` given the true current values."""

    @abstractmethod
    def describe(self) -> str:
        """Short description used in tables and traces."""


class MobileFaultController(FaultController):
    """Mobile Byzantine agents under one of the models M1-M4.

    The controller owns the agent positions between rounds.  Timing
    (paper Section 3):

    * M1-M3: agents move at the *beginning* of each round ``r >= 1``
      (before the send phase); the vacated processes are cured for
      round ``r``.
    * M4: agents move *with the messages*: the round-``r`` Byzantine
      senders are the current hosts, the agents then ride to their next
      hosts, whose computation phase is corrupted in round ``r`` --
      hence no process is ever cured at send time (Lemma 4).
    """

    def __init__(
        self,
        n: int,
        f: int,
        model: MobileModel,
        adversary: Adversary,
        topology=None,
    ) -> None:
        if n < 1:
            raise ValueError(f"n must be positive, got {n}")
        if f < 0:
            raise ValueError(f"f must be non-negative, got {f}")
        if f > n:
            raise ValueError(f"cannot place f={f} agents on n={n} processes")
        self.n = n
        self.f = f
        self.semantics: ModelSemantics = get_semantics(model)
        self.adversary = adversary
        #: The run's communication graph, exposed to strategies through
        #: the adversary view (the omniscient adversary reads wiring).
        self.topology = topology
        self._positions: frozenset[int] | None = None
        # Resolved once per run: whether the adversary's scalar
        # corruption hooks are pid-independent (see
        # Adversary.shares_scalar_values), letting the planning hot
        # path compute each round's departure/compute value once
        # instead of once per agent.
        self._shared_scalars = adversary.shares_scalar_values

    @property
    def positions(self) -> frozenset[int]:
        """Current agent hosts (after the last planned round)."""
        if self._positions is None:
            raise RuntimeError("no round planned yet")
        return self._positions

    def plan_round(
        self, round_index: int, values: Mapping[int, float], rng: random.Random
    ) -> RoundPlan:
        if self.f == 0:
            self._positions = frozenset()
            return RoundPlan(
                round_index=round_index,
                faulty_at_send=frozenset(),
                cured_at_send=frozenset(),
                positions_after=frozenset(),
            )
        if self.semantics.moves_with_message:
            plan = self._plan_buhrman(round_index, values, rng)
        else:
            plan = self._plan_round_start_movement(round_index, values, rng)
        self._positions = plan.positions_after
        return plan

    def describe(self) -> str:
        return (
            f"{self.semantics.model.value}"
            f"[{self.adversary.describe()}]"
        )

    # -- M1 / M2 / M3 -----------------------------------------------------------

    def _plan_round_start_movement(
        self, round_index: int, values: Mapping[int, float], rng: random.Random
    ) -> RoundPlan:
        if round_index == 0 or self._positions is None:
            # "During the first round r0 no Byzantine agent moved yet."
            positions = self.adversary.initial_positions(self.n, self.f, rng)
            cured: frozenset[int] = frozenset()
        else:
            movement_view = self._view(round_index, values, self._positions, frozenset(), rng)
            positions = self.adversary.next_positions(movement_view)
            self._check_positions(positions)
            cured = self._positions - positions

        # Departing agents corrupt the memories they leave behind.
        departure_view = self._view(round_index, values, positions, cured, rng)

        # Both value views this round share one exclusion mask over the
        # array snapshot (identical positions/cured); precomputing it
        # here spares each ``correct_range`` the set-union and the
        # boolean-buffer build.
        range_mask = None
        if _np is not None and getattr(values, "array", None) is not None:
            range_mask = _np.ones(self.n, dtype=bool)
            excluded = positions | cured
            if excluded:
                range_mask[list(excluded)] = False
            object.__setattr__(departure_view, "_range_mask", range_mask)

        memory_corruptions = self._departure_values(departure_view, cured)

        attack_values = _with_corruptions(values, memory_corruptions)
        attack_view = self._view(round_index, attack_values, positions, cured, rng)
        if range_mask is not None:
            # attack_values is either the same snapshot or its patched
            # ArrayValues copy -- array-backed either way.
            object.__setattr__(attack_view, "_range_mask", range_mask)

        # Sender-agnostic strategies emit the same outbox from every
        # agent, so one shared mapping per round serves all of them
        # (the values would be identical anyway; sharing skips the
        # rebuild per sender).
        shared = self.adversary.shares_round_outboxes
        send_overrides: dict[int, Mapping[int, float]] = {}
        if shared and positions:
            # One outbox for every agent: build it once (from the same
            # first pid the per-sender loop would use) and fan the
            # reference out at C speed.
            shared_attack = _attack_override(
                self.adversary, attack_view, next(iter(positions)), self.n
            )
            send_overrides = dict.fromkeys(positions, shared_attack)
        else:
            shared_attack: Mapping[int, float] | None = None
            for pid in positions:
                if shared_attack is None:
                    shared_attack = _attack_override(
                        self.adversary, attack_view, pid, self.n
                    )
                send_overrides[pid] = shared_attack
                if not shared:
                    shared_attack = None
        if self.semantics.cured_send is CuredSendBehavior.PLANTED_QUEUE:
            shared_planted: Mapping[int, float] | None = None
            for pid in cured:
                if shared_planted is None:
                    shared_planted = _planted_override(
                        self.adversary, attack_view, pid, self.n
                    )
                send_overrides[pid] = shared_planted
                if not shared:
                    shared_planted = None

        compute_corruptions = self._corrupted_computes(attack_view, positions)
        # The three mappings are freshly built above (never aliased),
        # so the read-only proxy can wrap them without the defensive
        # copy `_frozen_mapping` pays for caller-supplied dicts.
        return RoundPlan(
            round_index=round_index,
            faulty_at_send=positions,
            cured_at_send=cured,
            positions_after=positions,
            memory_corruptions=MappingProxyType(memory_corruptions),
            send_overrides=MappingProxyType(send_overrides),
            compute_corruptions=MappingProxyType(compute_corruptions),
        )

    def _departure_values(self, view, pids) -> dict[int, float]:
        """Checked departure value per pid; one shared call when legal.

        Bit-identical to the per-pid loop: under the sharing contract
        the hook is pid-independent and randomness-free, so every call
        would return the same float anyway.
        """
        if not pids:
            return {}
        adversary = self.adversary
        if self._shared_scalars:
            first = next(iter(pids))
            value = _checked_value(
                adversary.departure_value(view, first),
                f"departure value for p{first}",
            )
            return {pid: value for pid in pids}
        return {
            pid: _checked_value(
                adversary.departure_value(view, pid),
                f"departure value for p{pid}",
            )
            for pid in pids
        }

    def _corrupted_computes(self, view, pids) -> dict[int, float]:
        """Checked corrupted-compute value per pid; shared when legal."""
        if not pids:
            return {}
        adversary = self.adversary
        if self._shared_scalars:
            first = next(iter(pids))
            value = _checked_value(
                adversary.corrupted_compute(view, first),
                f"corrupted compute for p{first}",
            )
            return {pid: value for pid in pids}
        return {
            pid: _checked_value(
                adversary.corrupted_compute(view, pid),
                f"corrupted compute for p{pid}",
            )
            for pid in pids
        }

    # -- M4 ----------------------------------------------------------------------

    def _plan_buhrman(
        self, round_index: int, values: Mapping[int, float], rng: random.Random
    ) -> RoundPlan:
        if round_index == 0 or self._positions is None:
            hosts = self.adversary.initial_positions(self.n, self.f, rng)
        else:
            hosts = self._positions

        attack_view = self._view(round_index, values, hosts, frozenset(), rng)
        shared = self.adversary.shares_round_outboxes
        send_overrides: dict[int, Mapping[int, float]] = {}
        shared_attack: Mapping[int, float] | None = None
        for pid in hosts:
            if shared_attack is None:
                shared_attack = _attack_override(
                    self.adversary, attack_view, pid, self.n
                )
            send_overrides[pid] = shared_attack
            if not shared:
                shared_attack = None

        # Agents ride the messages to their next hosts, whose computation
        # phase this round is under agent control.  Vacated hosts are
        # cured *during the computation phase*, aware, and recompute
        # correctly -- so they need no plan entry beyond not being in
        # ``compute_corruptions``.
        movement_view = self._view(round_index, values, hosts, frozenset(), rng)
        next_hosts = self.adversary.next_positions(movement_view)
        self._check_positions(next_hosts)
        compute_corruptions = self._corrupted_computes(attack_view, next_hosts)
        return RoundPlan(
            round_index=round_index,
            faulty_at_send=hosts,
            cured_at_send=frozenset(),
            positions_after=next_hosts,
            send_overrides=_frozen_mapping(send_overrides),
            compute_corruptions=_frozen_mapping(compute_corruptions),
        )

    # -- helpers -----------------------------------------------------------------

    def _view(
        self,
        round_index: int,
        values: Mapping[int, float],
        positions: frozenset[int],
        cured: frozenset[int],
        rng: random.Random,
    ) -> AdversaryView:
        # The simulator hands a fresh per-round snapshot, so the view
        # can hold it directly -- no defensive copy -- and leave
        # ``correct_values`` to the view's lazy derivation (strategies
        # that only need correct_range() never pay for the dict).
        return AdversaryView(
            round_index=round_index,
            n=self.n,
            f=self.f,
            values=values,
            positions=positions,
            cured=cured,
            rng=rng,
            topology=self.topology,
        )

    def _check_positions(self, positions: frozenset[int]) -> None:
        if len(positions) > self.f:
            raise ValueError(
                f"adversary placed {len(positions)} agents, only f={self.f} exist"
            )
        bad = [pid for pid in positions if pid < 0 or pid >= self.n]
        if bad:
            raise ValueError(f"adversary placed agents on invalid ids {bad}")


class StaticMixedController(FaultController):
    """Static mixed-mode faults: the same processes misbehave forever.

    Realises Definitions 1-3 of the paper (quoting [11]):

    * benign processes omit every round (forced silence -- the
      self-incriminating fault every receiver detects);
    * symmetric processes broadcast one adversarial value, identical
      towards every receiver;
    * asymmetric processes send adversarially chosen per-recipient
      values -- classical Byzantine behaviour.
    """

    def __init__(
        self,
        n: int,
        assignment: StaticFaultAssignment,
        adversary: Adversary,
        topology=None,
    ) -> None:
        assignment.validate_for(n)
        self.n = n
        self.assignment = assignment
        self.adversary = adversary
        self.topology = topology
        self._classes = dict(assignment.items())

    def plan_round(
        self, round_index: int, values: Mapping[int, float], rng: random.Random
    ) -> RoundPlan:
        faulty = self.assignment.faulty_ids
        view = AdversaryView(
            round_index=round_index,
            n=self.n,
            f=len(faulty),
            values=values,
            positions=faulty,
            cured=frozenset(),
            rng=rng,
            topology=self.topology,
        )

        shared = self.adversary.shares_round_outboxes
        send_overrides: dict[int, Mapping[int, float]] = {}
        forced_silent: set[int] = set()
        shared_symmetric: Mapping[int, float] | None = None
        shared_asymmetric: Mapping[int, float] | None = None
        for pid, fault_class in self._classes.items():
            if fault_class is FaultClass.BENIGN:
                forced_silent.add(pid)
            elif fault_class is FaultClass.SYMMETRIC:
                if shared_symmetric is None:
                    value = _checked_value(
                        self.adversary.attack_message(view, pid, None),
                        f"symmetric message from p{pid}",
                    )
                    shared_symmetric = _frozen_mapping(
                        {q: value for q in range(self.n)}
                    )
                send_overrides[pid] = shared_symmetric
                if not shared:
                    shared_symmetric = None
            else:
                if shared_asymmetric is None:
                    shared_asymmetric = _attack_override(
                        self.adversary, view, pid, self.n
                    )
                send_overrides[pid] = shared_asymmetric
                if not shared:
                    shared_asymmetric = None

        compute_corruptions = {
            pid: _checked_value(
                self.adversary.corrupted_compute(view, pid),
                f"corrupted compute for p{pid}",
            )
            for pid in faulty
        }
        return RoundPlan(
            round_index=round_index,
            faulty_at_send=faulty,
            cured_at_send=frozenset(),
            positions_after=faulty,
            send_overrides=_frozen_mapping(send_overrides),
            forced_silent=frozenset(forced_silent),
            compute_corruptions=_frozen_mapping(compute_corruptions),
            static_classes=_frozen_mapping(self._classes),
        )

    def describe(self) -> str:
        counts = self.assignment.counts
        return f"static-mixed{counts}[{self.adversary.describe()}]"


class CrossRunPlanner:
    """Batched per-round fault planning for R lockstep mobile runs.

    The cross-run engine (:func:`repro.runtime.simulator.simulate_many`)
    advances a whole batch of compatible runs on one ``(R, n)`` state
    matrix; this planner produces each run's :class:`RoundPlan` for a
    round while hoisting the numpy-heavy pieces of
    :meth:`MobileFaultController.plan_round` -- exclusion masks,
    correct-range reductions, memory-corruption patching and split-camp
    assignment codes -- into single whole-matrix passes.

    Bit-identity with per-run planning is preserved by construction:

    * every per-run decision (movement, per-sender outboxes, scalar
      corruption values) still runs through the run's own controller,
      adversary and RNG stream in the exact per-cell order, so RNG
      consumption is unchanged;
    * batched quantities are injected through the same sanctioned
      seams the per-cell fast path already uses (``_range_mask`` /
      ``_correct_range`` on :class:`AdversaryView`, the ``camps-split``
      view memo), and only when the batched value is provably the one
      the view would derive itself -- signed-zero endpoints and empty
      masks fall back to the view's own lazy recomputation.

    Runs may mix models, movements and attacks (each row plans through
    its own controller); they must share ``n``.  Round 0 never reaches
    the planner -- the engine plans it per run, which also initializes
    agent positions.
    """

    def __init__(self, controllers, rngs, wrap) -> None:
        for controller in controllers:
            if not isinstance(controller, MobileFaultController):
                raise TypeError(
                    "CrossRunPlanner requires MobileFaultControllers, got "
                    f"{type(controller).__name__}"
                )
        self.controllers = list(controllers)
        self.rngs = list(rngs)
        #: Array-backed Mapping constructor (ArrayValues, injected to
        #: avoid a circular import with the simulator module).
        self._wrap = wrap
        self._split_strategy = [
            isinstance(c.adversary.values, (SplitAttack, CrossfireAttack))
            for c in self.controllers
        ]

    def plan_many(self, round_index: int, stack, indices):
        """Plan ``round_index`` for the runs in ``indices``.

        ``stack`` holds one row per entry of ``indices`` (the active
        runs' current values, pre-corruption).  Returns ``(plans,
        patched)`` where ``plans`` aligns with ``indices`` and
        ``patched`` is the stack with each run's memory corruptions
        applied -- the send-phase snapshot (aliases ``stack`` when no
        run corrupted memory).  Requires ``round_index >= 1``.
        """
        np = _np
        wrap = self._wrap
        count, n = stack.shape
        plans: list = [None] * count

        # -- stage 1: per-run movement (pure Python + per-run RNG) ------
        # info[i] is None (f == 0, trivially planned), an M1-M3 tuple
        # ("m13", values, positions, cured) or an M4 tuple ("m4",
        # values, hosts).  M4 consumes no randomness here: its
        # next_positions draw happens *after* the attack outboxes, in
        # per-cell order (see _plan_buhrman).
        info: list = [None] * count
        mask_rows: list[int] = []
        mask_cols: list[int] = []
        for i, r in enumerate(indices):
            controller = self.controllers[r]
            rng = self.rngs[r]
            values = wrap(stack[i])
            if controller.f == 0:
                plans[i] = controller.plan_round(round_index, values, rng)
                continue
            if controller.semantics.moves_with_message:
                hosts = controller._positions
                if hosts is None:
                    hosts = controller.adversary.initial_positions(
                        controller.n, controller.f, rng
                    )
                info[i] = ("m4", values, hosts)
                excluded = hosts
            else:
                if controller._positions is None:
                    positions = controller.adversary.initial_positions(
                        controller.n, controller.f, rng
                    )
                    cured: frozenset[int] = frozenset()
                else:
                    movement_view = controller._view(
                        round_index, values, controller._positions, frozenset(), rng
                    )
                    positions = controller.adversary.next_positions(movement_view)
                    controller._check_positions(positions)
                    cured = controller._positions - positions
                info[i] = ("m13", values, positions, cured)
                excluded = positions | cured
            for pid in excluded:
                mask_rows.append(i)
                mask_cols.append(pid)

        # -- stage 2: batched exclusion masks + correct ranges ----------
        mask = np.ones((count, n), dtype=bool)
        if mask_rows:
            mask[mask_rows, mask_cols] = False
        # ``batch_correct_ranges`` leaves signed-zero endpoints and
        # fully-masked rows unseeded (None) for the view's own scalar
        # rescan; trivial rows (f == 0, already planned) are cleared
        # here because no view will ever consume their interval.
        intervals = batch_correct_ranges(stack, mask)
        for i in range(count):
            if info[i] is None:
                intervals[i] = None

        # -- stage 3: per-run departures, batched corruption patch ------
        corruptions: list[dict[int, float]] = [{}] * count
        corr_rows: list[int] = []
        corr_cols: list[int] = []
        corr_vals: list[float] = []
        for i, r in enumerate(indices):
            item = info[i]
            if item is None or item[0] != "m13":
                continue
            _, values, positions, cured = item
            controller = self.controllers[r]
            departure_view = controller._view(
                round_index, values, positions, cured, self.rngs[r]
            )
            object.__setattr__(departure_view, "_range_mask", mask[i])
            if intervals[i] is not None:
                object.__setattr__(departure_view, "_correct_range", intervals[i])
            corrupted = controller._departure_values(departure_view, cured)
            corruptions[i] = corrupted
            for pid, value in corrupted.items():
                corr_rows.append(i)
                corr_cols.append(pid)
                corr_vals.append(value)
        if corr_rows:
            patched = stack.copy()
            patched[corr_rows, corr_cols] = corr_vals
        else:
            patched = stack

        # -- stage 4: batched split-camp codes --------------------------
        # Corruptions only land on cured (masked-out) pids, so the
        # attack view's range equals the departure view's bit-for-bit;
        # the midpoint is therefore known for every clean row and the
        # bisection comparison of _split_assignment can run as one
        # whole-matrix pass.  Rows without a pre-seeded interval let
        # the strategy recompute lazily (per-cell behaviour).
        codes_rows = [
            i
            for i, r in enumerate(indices)
            if info[i] is not None
            and intervals[i] is not None
            and self._split_strategy[r]
        ]
        codes_by_row: dict[int, object] = {}
        if codes_rows:
            mids = np.array(
                [intervals[i].midpoint() for i in codes_rows], dtype=np.float64
            )
            codes = (patched[codes_rows] > mids[:, None]).astype("i8")
            for slot, i in enumerate(codes_rows):
                codes_by_row[i] = codes[slot]

        # -- stage 5: per-run attack outboxes + plan assembly -----------
        for i, r in enumerate(indices):
            item = info[i]
            if item is None:
                continue
            controller = self.controllers[r]
            rng = self.rngs[r]
            adversary = controller.adversary
            if item[0] == "m13":
                _, values, positions, cured = item
                corrupted = corruptions[i]
                attack_values = wrap(patched[i]) if corrupted else values
                attack_view = controller._view(
                    round_index, attack_values, positions, cured, rng
                )
            else:
                _, values, hosts = item
                positions = hosts
                cured = frozenset()
                corrupted = None
                attack_view = controller._view(
                    round_index, values, hosts, frozenset(), rng
                )
            object.__setattr__(attack_view, "_range_mask", mask[i])
            if intervals[i] is not None:
                object.__setattr__(attack_view, "_correct_range", intervals[i])
            codes_row = codes_by_row.get(i)
            if codes_row is not None:
                assignment = CampAssignment(codes_row.tolist())
                assignment.array = codes_row
                object.__setattr__(attack_view, "_memo", {"camps-split": assignment})

            shared = adversary.shares_round_outboxes
            send_overrides: dict[int, Mapping[int, float]] = {}
            if item[0] == "m13" and shared and positions:
                shared_attack = _attack_override(
                    adversary, attack_view, next(iter(positions)), controller.n
                )
                send_overrides = dict.fromkeys(positions, shared_attack)
            else:
                shared_attack = None
                for pid in positions:
                    if shared_attack is None:
                        shared_attack = _attack_override(
                            adversary, attack_view, pid, controller.n
                        )
                    send_overrides[pid] = shared_attack
                    if not shared:
                        shared_attack = None
            if item[0] == "m13":
                if controller.semantics.cured_send is CuredSendBehavior.PLANTED_QUEUE:
                    shared_planted: Mapping[int, float] | None = None
                    for pid in cured:
                        if shared_planted is None:
                            shared_planted = _planted_override(
                                adversary, attack_view, pid, controller.n
                            )
                        send_overrides[pid] = shared_planted
                        if not shared:
                            shared_planted = None
                compute_corruptions = controller._corrupted_computes(
                    attack_view, positions
                )
                plans[i] = RoundPlan(
                    round_index=round_index,
                    faulty_at_send=positions,
                    cured_at_send=cured,
                    positions_after=positions,
                    memory_corruptions=MappingProxyType(corrupted),
                    send_overrides=MappingProxyType(send_overrides),
                    compute_corruptions=MappingProxyType(compute_corruptions),
                )
                controller._positions = positions
            else:
                # M4: the agents ride the messages -- draw the next
                # hosts only now, matching _plan_buhrman's RNG order.
                movement_view = controller._view(
                    round_index, values, hosts, frozenset(), rng
                )
                next_hosts = adversary.next_positions(movement_view)
                controller._check_positions(next_hosts)
                compute_corruptions = controller._corrupted_computes(
                    attack_view, next_hosts
                )
                plans[i] = RoundPlan(
                    round_index=round_index,
                    faulty_at_send=hosts,
                    cured_at_send=frozenset(),
                    positions_after=next_hosts,
                    send_overrides=_frozen_mapping(send_overrides),
                    compute_corruptions=_frozen_mapping(compute_corruptions),
                )
                controller._positions = next_hosts
        return plans, patched

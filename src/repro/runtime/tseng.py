"""Tseng's improved mobile-fault approximate consensus family.

Implements the algorithm family of *An Improved Approximate Consensus
Algorithm in the Presence of Mobile Faults* (Lewis Tseng,
arXiv:1707.07659) on top of the repo's mobile-Byzantine substrate.
Where Bonomi et al.'s MSR voting protocol is memoryless -- each round a
node broadcasts one float and folds the received multiset -- Tseng's
algorithm carries state across rounds and exchanges *pair* messages:

    message from node ``s`` in round ``r``  =  (v_s, p_s)

where ``v_s`` is the current estimate and ``p_s`` is the value ``s``
broadcast in round ``r - 1`` (a ``bottom`` marker when it sent nothing
it can vouch for: silence, round 0, or an adversary-controlled send).
A receiver ``i`` rejects ``v_s`` exactly when the claim is *provably
inconsistent with its own history*::

    reject(s)  iff  p_s is a float and
                    p_s != (what i actually received from s in r - 1)

A ``bottom`` claim asserts nothing and always passes.  The point of
the filter is the defining difficulty of mobile faults: a *cured* node
(an agent just left it) holds garbage state but -- in the movement-
unaware models M2/M3 -- does not know it and keeps broadcasting.
Bonomi et al. absorb that garbage by trimming more (Table 1 maps cured
nodes to extra static faults).  Tseng's consistency check instead
*masks* most cured garbage at the receivers: the agent scrambled the
node's memory of what it sent, so the node's claimed ``p_s`` no longer
matches what anybody actually received, and its value is discarded
before the MSR fold.

Discarding alone would starve the reduction (the model's trim budget
``tau`` counts cured nodes, so removing their values *and* trimming
the full ``tau`` eats honest mass instead).  The filter therefore
feeds back into the reduction: every sender a receiver rejects is one
provably-untrustworthy extreme its trim no longer has to cover, so the
receiver folds with the budget-``tau - rejected`` variant of the
configured MSR function (:meth:`repro.msr.reduce.Reduction.reduced_by`).
Per-receiver Validity is preserved -- at most ``f`` forged lies plus
the unrejected cured garbage can sit in the multiset, which is exactly
``tau - rejected`` values -- while each rejection converts one trimmed
slot back into surviving honest mass.  Reductions without a fault
budget (no ``reduced_by``) fall back to the classical omission rule of
iterative approximate agreement instead: the receiver substitutes its
own estimate for each rejected entry, keeping multiset sizes uniform.

Honest nodes are never filtered (their claims are faithful or
``bottom``), and currently-occupied nodes gain nothing: the omniscient
adversary always forges a passing claim or abstains, which this
implementation models by construction.  Every recipient therefore
folds the Bonomi multiset minus provably-adversarial values with a
correspondingly relaxed trim -- never slower to converge, and in
cured-heavy executions measurably faster; the family-comparison
experiment quantifies the gap.

Per-node state (all corrupted together by a departing agent, which is
what arms the filter):

* ``value``      -- the current estimate (the scalar the fault
  controllers see as process memory);
* ``sent_memory`` -- what the node believes it broadcast last round
  (``bottom`` after silence or an adversary-controlled send).

Cross-round bookkeeping kept by the *protocol instance* (it reflects
what was actually on the wire, not any node's corruptible memory):
last round's shared broadcast values, last round's per-recipient
override outboxes, so the consistency check costs O(1) per sender with
per-recipient work only for the O(f) senders whose history differs
between recipients.

The receive+compute loop follows the round kernel's distinct-inbox
design (:mod:`repro.runtime.kernel`): the uniformly-accepted broadcast
values form one shared sorted list per round; recipients are grouped by
the O(f) per-recipient deltas (override values, per-recipient
acceptance bits) and the MSR function is evaluated once per distinct
effective inbox through :func:`~repro.runtime.kernel.compile_msr`'s
flat evaluator.  The kernel's ``group_inboxes`` / ``flat_msr`` toggles
are honoured, giving the equivalence suite a per-recipient object-path
reference implementation.

``trace_detail="full"`` runs through the same round driver with the
protocol's ``recording`` flag on: each round deposits a wire record --
the ``sent`` matrix of representative scalars (what the P1/P2 checkers
and the send-behavior classifier consume), the ``(value, claim)`` pair
payloads actually on the wire (``RoundRecord.payloads``), and the full
MSR application per computing node, whose ``received``/``reduced``
stages document the post-filter multiset the node actually folded.
Value trajectories are bit-identical between the two detail levels.
"""

from __future__ import annotations

from bisect import insort
from typing import TYPE_CHECKING, Mapping, Sequence

from ..msr.base import MSRFunction
from ..msr.multiset import ValueMultiset
from .families import ProtocolFamily, register_family
from .kernel import RoundKernel, compile_msr
from .protocol import StatefulRoundProtocol
from .trace import BroadcastOutbox

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .config import SimulationConfig
    from .controllers import RoundPlan

__all__ = ["TsengFamily", "TsengProtocol", "BOTTOM"]


class _Bottom:
    """The ``bottom`` marker: "I broadcast nothing I can vouch for"."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "BOTTOM"


#: Claimed-previous marker for silent or adversary-controlled sends.
#: Compares unequal to every float, so a claim of ``BOTTOM`` never
#: passes the consistency check.
BOTTOM = _Bottom()


class TsengProtocol(StatefulRoundProtocol):
    """Per-run instance of Tseng's algorithm (state + message codec)."""

    family_name = "tseng"
    message_arity = 2

    def __init__(self, n: int, function: MSRFunction) -> None:
        self.n = n
        self.function = function
        self._values: dict[int, float] = {}
        self._sent_memory: list[object] = []
        # What was actually on the wire last round: shared broadcast
        # values, per-recipient override outboxes, round counter.
        self._prev_broadcast: dict[int, float] = {}
        self._prev_overrides: dict[int, Mapping[int, float]] = {}
        # Evaluation machinery (resolved per run in reset()).
        self._kernel: RoundKernel | None = None
        self._evaluate = None
        self._buffer: list[float] = []

    # -- StatefulRoundProtocol interface ---------------------------------------

    def reset(self, kernel: RoundKernel) -> None:
        self._kernel = kernel
        self._evaluate = compile_msr(self.function) if kernel.flat_msr else None
        # Budget-relaxed variants of the MSR function, one per possible
        # per-receiver rejection count, built lazily (most rounds reject
        # nobody).  ``None`` support means the reduction carries no
        # fault budget and rejections use own-value substitution.
        self._adaptive = self.function.reduction.reduced_by(0) is not None
        self._variants: dict[int, tuple[MSRFunction, object]] = {
            0: (self.function, self._evaluate)
        }
        self._buffer = []
        self._prev_broadcast = {}
        self._prev_overrides = {}
        self._sent_memory = [BOTTOM] * self.n

    def _variant(self, masked: int) -> tuple[MSRFunction, object]:
        """The MSR function (and flat evaluator) trimming ``tau - masked``."""
        hit = self._variants.get(masked)
        if hit is None:
            base = self.function
            function = MSRFunction(
                base.reduction.reduced_by(masked),
                base.selection,
                base.combiner,
                name=f"{base.name}[-{masked}]",
            )
            evaluate = (
                compile_msr(function)
                if self._kernel is None or self._kernel.flat_msr
                else None
            )
            hit = (function, evaluate)
            self._variants[masked] = hit
        return hit

    def start(self, initial_values: Sequence[float]) -> None:
        """Load round-0 estimates (called by the simulator after reset)."""
        self._values = {
            pid: float(value) for pid, value in enumerate(initial_values)
        }

    @property
    def values(self) -> dict[int, float]:
        return self._values

    def run_round(
        self, plan: "RoundPlan", cured_aware: bool, need_diameter: bool
    ) -> float:
        n = self.n
        values = self._values
        sent_memory = self._sent_memory

        # Departing agents scramble the *whole* node state: estimate
        # and send-memory alike.  Corrupting the send-memory is what
        # makes the node's next claim inconsistent (the filter's whole
        # point); a single scalar models the agent's choice, exactly as
        # in the Bonomi family.
        for pid, corrupted in plan.memory_corruptions.items():
            values[pid] = corrupted
            sent_memory[pid] = corrupted

        # -- send phase: classify every sender ------------------------------
        # Broadcast senders whose acceptance is uniform across
        # recipients land in `base_*`; senders needing per-recipient
        # treatment land in `varying` / `overrides`.
        overrides = plan.send_overrides
        forced_silent = plan.forced_silent
        cured = plan.cured_at_send if cured_aware else frozenset()
        prev_broadcast = self._prev_broadcast
        prev_overrides = self._prev_overrides

        base_values: list[float] = []
        #: Broadcast senders every recipient rejects (scrambled claim
        #: against shared history); each costs one own-value
        #: substitution at every recipient.
        base_rejected = 0
        #: Broadcast senders with a float claim against per-recipient
        #: r-1 traffic: (value sent now, claimed, actual r-1 outbox).
        varying: list[tuple[float, object, Mapping[int, float]]] = []
        #: Override outboxes.  The omniscient adversary read every
        #: channel, so it either forges a matching claim or abstains
        #: with ``bottom`` -- its messages always pass the filter.
        override_list: list[Mapping[int, float]] = []

        next_broadcast: dict[int, float] = {}
        next_overrides: dict[int, Mapping[int, float]] = {}
        recording = self.recording
        sent: dict[int, Mapping[int, float] | None] | None = (
            {} if recording else None
        )
        payloads: dict[int, object] | None = {} if recording else None

        for pid in range(n):
            outbox = overrides.get(pid)
            if outbox is not None:
                override_list.append(outbox)
                sent_memory[pid] = BOTTOM
                next_overrides[pid] = outbox
                if recording:
                    # The omniscient adversary forges a passing claim
                    # (or abstains) per recipient; only the scalar lies
                    # are observable wire content worth recording.  The
                    # plan's outbox is an immutable round snapshot, so
                    # it is stored verbatim (O(#camps), not O(n)).
                    sent[pid] = outbox
                continue
            if pid in forced_silent or pid in cured:
                # Omission (static benign fault) or aware-cured silence
                # (M1): nothing on the wire, nothing to vouch for next
                # round.
                sent_memory[pid] = BOTTOM
                if recording:
                    sent[pid] = None
                continue
            value = values[pid]
            claimed = sent_memory[pid]
            if recording:
                # Every broadcaster is on the wire -- rejection happens
                # at the receivers -- so the sent matrix records them
                # all; the pair payload keeps the claim component.
                sent[pid] = BroadcastOutbox(n, value)
                payloads[pid] = (value, None if claimed is BOTTOM else claimed)
            if claimed is BOTTOM:
                # An abstaining claim asserts nothing checkable (fresh
                # start, silence last round, adversary-run send phase).
                base_values.append(value)
            elif pid in prev_broadcast:
                if claimed == prev_broadcast[pid]:
                    base_values.append(value)
                else:
                    # Provably inconsistent -- the scrambled-memory
                    # signature of an unaware cured node; every
                    # recipient substitutes its own estimate.
                    base_rejected += 1
            elif pid in prev_overrides:
                varying.append((value, claimed, prev_overrides[pid]))
            else:
                # A float claim about a round nobody heard it in --
                # provably inconsistent for every recipient.
                base_rejected += 1
            sent_memory[pid] = value
            next_broadcast[pid] = value

        base_values.sort()

        # -- receive + compute phase ---------------------------------------
        applications: dict[int, object] | None = {} if recording else None
        max_diameter = self._compute_phase(
            base_values,
            base_rejected,
            varying,
            override_list,
            plan.compute_corruptions,
            need_diameter,
            applications,
        )

        for pid, garbage in plan.compute_corruptions.items():
            values[pid] = garbage

        if recording:
            self.wire_record = {
                "sent": sent,
                "payloads": payloads,
                "applications": applications,
            }
        self._prev_broadcast = next_broadcast
        self._prev_overrides = next_overrides
        return max_diameter

    # -- the distinct-inbox receive loop ---------------------------------------

    def _compute_phase(
        self,
        base_values: list[float],
        base_rejected: int,
        varying: list[tuple[float, object, Mapping[int, float]]],
        override_list: list[Mapping[int, float]],
        compute_corruptions: Mapping[int, float],
        need_diameter: bool,
        applications: dict[int, object] | None = None,
    ) -> float:
        """Evaluate the MSR fold once per distinct effective inbox.

        A recipient's inbox is ``base_values`` plus (a) the values of
        ``varying`` senders whose claim matches what *this* recipient
        received from them last round and (b) this recipient's entries
        of the override outboxes; its fold uses the trim variant for
        its rejection count (or own-value substitutions for budget-less
        reductions).  The deltas are O(f) per recipient, so the
        grouping key is small and the number of distinct inboxes is
        bounded by the attack's value structure, not by ``n``.

        When ``applications`` is a dict (the full-trace recorder), one
        object-path :class:`~repro.msr.base.MSRApplication` is built
        per distinct inbox and shared by every recipient in the group;
        its stages document the post-filter multiset actually folded.
        """
        kernel = self._kernel
        grouped = kernel is None or kernel.group_inboxes
        adaptive = self._adaptive
        values = self._values
        buffer = self._buffer
        max_diameter = 0.0
        cache: dict[tuple, tuple] | None = {} if grouped else None

        for pid in range(self.n):
            if pid in compute_corruptions:
                continue
            rejected = base_rejected
            key_parts: list[object] = []
            extras: list[float] = []
            for value, claimed, outbox in varying:
                accepted = claimed == outbox.get(pid)
                key_parts.append(accepted)
                if accepted:
                    extras.append(value)
                else:
                    rejected += 1
            for outbox in override_list:
                entry = outbox.get(pid)
                key_parts.append(entry)
                if entry is not None:
                    extras.append(float(entry))
            if rejected and not adaptive:
                # Omission rule for budget-less reductions: one
                # own-estimate entry per rejected sender keeps multiset
                # sizes identical to the unfiltered fold.  The key
                # gains the own value, degrading towards per-recipient
                # evaluation exactly when the filter is active.
                own = values[pid]
                key_parts.append(own)
                extras.extend([own] * rejected)
            if cache is not None:
                # The per-recipient rejection count is a function of
                # the acceptance bits already in the key, so variants
                # never collide under one key.
                key = tuple(key_parts)
                hit = cache.get(key)
                if hit is not None:
                    values[pid] = hit[0]
                    if need_diameter and hit[1] > max_diameter:
                        max_diameter = hit[1]
                    if applications is not None:
                        applications[pid] = hit[2]
                    continue
            if extras:
                buffer[:] = base_values
                for value in extras:
                    insort(buffer, value)
                inbox: Sequence[float] = buffer
            else:
                inbox = base_values
            if not inbox:
                raise ValueError(
                    "tseng: process "
                    f"p{pid} accepted an empty multiset -- the run is below "
                    "the family's resilience requirement (every correct "
                    "process must keep hearing a consistent quorum)"
                )
            function, evaluate = (
                self._variant(rejected) if adaptive and rejected else
                self._variants[0]
            )
            if evaluate is not None:
                result = evaluate(inbox)
            else:
                result = function.apply_value(
                    ValueMultiset.from_trusted_floats(inbox)
                )
            diameter = inbox[-1] - inbox[0]
            application = None
            if applications is not None:
                # One full application per distinct inbox, shared by
                # the whole group (the stages are immutable snapshots).
                application = function.apply(
                    ValueMultiset.from_trusted_floats(list(inbox))
                )
                applications[pid] = application
            if cache is not None:
                cache[key] = (result, diameter, application)
            values[pid] = result
            if need_diameter and diameter > max_diameter:
                max_diameter = diameter
        return max_diameter

    def __repr__(self) -> str:
        return f"TsengProtocol(n={self.n}, {self.function.name})"


class TsengFamily(ProtocolFamily):
    """Registry entry for Tseng's improved algorithm.

    Reuses the run's configured MSR function (same trim parameter as
    the Bonomi family under the same model, Table 1) and inherits the
    model's Table 2 resilience bound: the consistency filter only ever
    *removes* adversarial values from the fold (relaxing the trim in
    step), so the Bonomi validity argument carries over verbatim while
    the multisets the reduction sees are strictly cleaner.  The family
    tests pin non-empty post-reduction multisets at every model's
    minimum ``n``.
    """

    name = "tseng"

    def build_protocol(self, config: "SimulationConfig") -> TsengProtocol:
        return TsengProtocol(config.n, config.algorithm)

    def predicted_contraction(self, config: "SimulationConfig") -> float | None:
        # Filtering shrinks the adversarial mass inside each multiset
        # but the worst case (no cured garbage to mask) degenerates to
        # the Bonomi bound, so the same prediction applies.
        from ..core.convergence import mobile_contraction
        from .config import MobileFaultSetup

        if not isinstance(config.setup, MobileFaultSetup):
            return None
        return mobile_contraction(
            config.algorithm, config.setup.model, config.n, config.f
        ).factor

    def describe(self) -> str:
        return "tseng (consistency-filtered MSR, arXiv:1707.07659)"


register_family(TsengFamily())

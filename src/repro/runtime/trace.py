"""Execution traces: the full record of a simulated computation.

Every experiment and checker in this reproduction consumes a
:class:`Trace` rather than poking at live simulator state.  A trace
holds one :class:`RoundRecord` per executed round with the complete
fault pattern, message matrix, per-process multiset and MSR application
-- enough to re-derive any quantity the paper's proofs mention
(configurations, the non-faulty value set ``U``, diameters, the
equivalent static computation of Theorem 1).

Large scenario sweeps do not need that level of detail: they only ask
for decisions, round counts and diameter trajectories.  For them the
simulator offers ``trace_detail="lite"`` and returns a :class:`LiteTrace`
-- the same value dynamics, but recording only per-round non-faulty
extents (min/max) instead of full message matrices.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from dataclasses import dataclass, field

from ..faults.mixed_mode import FaultClass
from ..faults.models import MobileModel
from ..msr.base import MSRApplication
from ..msr.multiset import Interval, ValueMultiset

__all__ = ["BroadcastOutbox", "RoundRecord", "Trace", "LiteTrace"]


class BroadcastOutbox(Mapping):
    """O(1) stand-in for a broadcast's ``{recipient: value}`` outbox.

    The full-trace recorder used to materialize an ``n``-entry dict per
    broadcasting sender -- ``n^2`` dict entries per round, which is what
    made full traces an order of magnitude slower than lite.  A
    broadcast sends one value to everyone, so this mapping answers every
    recipient in constant space and compares equal to the dict it
    replaces.
    """

    __slots__ = ("n", "value")

    def __init__(self, n: int, value: float) -> None:
        self.n = n
        self.value = value

    def __getitem__(self, recipient: int) -> float:
        if isinstance(recipient, int) and 0 <= recipient < self.n:
            return self.value
        raise KeyError(recipient)

    def __contains__(self, recipient: object) -> bool:
        return isinstance(recipient, int) and 0 <= recipient < self.n

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.n))

    def __len__(self) -> int:
        return self.n

    def __eq__(self, other: object) -> bool:
        if isinstance(other, BroadcastOutbox):
            return other.n == self.n and (self.n == 0 or other.value == self.value)
        if isinstance(other, Mapping):
            return dict(self) == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        return f"BroadcastOutbox(n={self.n}, value={self.value!r})"


class _LazyWireMapping(Mapping):
    """Base for per-recipient views derived on demand from ``sent``.

    The send phase fully determines what every recipient received
    (synchronous reliable delivery on the complete graph), so the
    recorder stores the ``sent`` matrix once and these views rebuild
    per-recipient data only when a checker actually asks.  Entries are
    assembled in ascending sender order, matching the network's
    submission order, so derived multisets are bit-identical to the
    step()-recorded ones.
    """

    __slots__ = ("_sent", "_computing", "_keys", "_cache")

    def __init__(
        self,
        sent: Mapping[int, Mapping[int, float] | None],
        computing: tuple[int, ...],
    ) -> None:
        self._sent = sent
        self._computing = frozenset(computing)
        self._keys = computing
        self._cache: dict[int, object] = {}

    def __getitem__(self, pid: int):
        if pid not in self._computing:
            raise KeyError(pid)
        entry = self._cache.get(pid)
        if entry is None:
            entry = self._build(pid)
            self._cache[pid] = entry
        return entry

    def _build(self, pid: int):
        raise NotImplementedError

    def __iter__(self) -> Iterator[int]:
        return iter(self._keys)

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, pid: object) -> bool:
        return pid in self._computing

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Mapping):
            return dict(self) == dict(other)
        return NotImplemented


class _LazyReceived(_LazyWireMapping):
    """``received[q]``: the multiset ``q`` aggregated, built on demand."""

    __slots__ = ()

    def _build(self, pid: int) -> ValueMultiset:
        values = []
        for sender in sorted(self._sent):
            outbox = self._sent[sender]
            if outbox is not None and pid in outbox:
                values.append(outbox[pid])
        return ValueMultiset(values)


class _LazyHeard(_LazyWireMapping):
    """``heard[q]``: senders whose message reached ``q``, on demand."""

    __slots__ = ()

    def _build(self, pid: int) -> frozenset[int]:
        return frozenset(
            sender
            for sender, outbox in self._sent.items()
            if outbox is not None and pid in outbox
        )


class _LazyApplications(Mapping):
    """``applications[q]`` with O(1) results and on-demand stages.

    The computed result per pid is already known (it is the end-of-round
    value), so the P1/P2 checkers run in O(n) per round; the full
    reduced/selected stage breakdown is recomputed from the received
    multiset only if some consumer actually reads it.
    """

    __slots__ = ("_received", "_results", "_compute", "_cache")

    def __init__(
        self,
        received: Mapping[int, ValueMultiset],
        results: Mapping[int, float],
        compute,
    ) -> None:
        self._received = received
        self._results = results
        self._compute = compute
        self._cache: dict[int, _LazyApplication] = {}

    def __getitem__(self, pid: int) -> "_LazyApplication":
        app = self._cache.get(pid)
        if app is None:
            if pid not in self._received:
                raise KeyError(pid)
            app = _LazyApplication(self, pid, self._results[pid])
            self._cache[pid] = app
        return app

    def __iter__(self) -> Iterator[int]:
        return iter(self._received)

    def __len__(self) -> int:
        return len(self._received)

    def __contains__(self, pid: object) -> bool:
        return pid in self._received

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Mapping):
            return dict(self) == dict(other)
        return NotImplemented


class _LazyApplication:
    """Duck-typed :class:`~repro.msr.base.MSRApplication` stand-in."""

    __slots__ = ("result", "_owner", "_pid", "_full")

    def __init__(self, owner: _LazyApplications, pid: int, result: float) -> None:
        self.result = result
        self._owner = owner
        self._pid = pid
        self._full: MSRApplication | None = None

    def _materialize(self) -> MSRApplication:
        if self._full is None:
            self._full = self._owner._compute(
                self._pid, self._owner._received[self._pid]
            )
        return self._full

    @property
    def received(self) -> ValueMultiset:
        return self._materialize().received

    @property
    def reduced(self) -> ValueMultiset:
        return self._materialize().reduced

    @property
    def selected(self) -> ValueMultiset:
        return self._materialize().selected

    def in_range(self, interval: Interval, tolerance: float = 1e-12) -> bool:
        return interval.contains(self.result, tolerance)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, _LazyApplication):
            return self._materialize() == other._materialize()
        if isinstance(other, MSRApplication):
            return self._materialize() == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"_LazyApplication(pid={self._pid}, result={self.result!r})"


@dataclass(frozen=True)
class RoundRecord:
    """Everything that happened in one synchronous round."""

    round_index: int
    #: Agent hosts during the send phase (Byzantine senders).
    faulty_at_send: frozenset[int]
    #: Cured processes during the send phase.
    cured_at_send: frozenset[int]
    #: Occupied processes at the end of the round (differs from
    #: ``faulty_at_send`` only in M4).
    positions_after: frozenset[int]
    #: Memory of every process after movement/departure-corruption but
    #: before the send phase.
    values_before: Mapping[int, float]
    #: ``sent[p]`` is the recipient->value map process ``p`` submitted;
    #: ``None`` records a detected omission (silent process).
    sent: Mapping[int, Mapping[int, float] | None]
    #: ``received[q]`` is the multiset process ``q`` aggregated.  Only
    #: processes that executed the computation phase appear.
    received: Mapping[int, ValueMultiset]
    #: Senders heard by each computing process (omission bookkeeping).
    heard: Mapping[int, frozenset[int]]
    #: Full MSR application (reduced/selected stages) per computing process.
    applications: Mapping[int, MSRApplication]
    #: Memory of every process at the end of the round.
    values_after: Mapping[int, float]
    #: Static fault classes when driven by the mixed-mode controller.
    static_classes: Mapping[int, FaultClass] | None = None
    #: Multi-value message payloads for stateful families (tseng value/
    #: claim pairs, witness claim tables): ``payloads[p]`` is the
    #: structured message ``p`` put on the wire, keyed only for senders
    #: whose message carried more than the representative scalar in
    #: ``sent``.  ``None`` for scalar-message families.  Payloads are
    #: informational -- they are not archived by the serializer.
    payloads: Mapping[int, object] | None = None

    @property
    def correct_at_send(self) -> frozenset[int]:
        """Processes neither faulty nor cured during the send phase."""
        everyone = frozenset(self.values_before)
        return everyone - self.faulty_at_send - self.cured_at_send

    @property
    def nonfaulty_after(self) -> frozenset[int]:
        """Processes not occupied at the end of the round.

        By Lemma 5 these all hold correctly computed values once the
        computation phase ends -- cured processes recompute from the
        received multiset.
        """
        everyone = frozenset(self.values_after)
        return everyone - self.positions_after

    def sent_value_multiset(self, senders: frozenset[int]) -> ValueMultiset:
        """Multiset of the values broadcast by the given (honest) senders."""
        values = []
        for pid in senders:
            outbox = self.sent.get(pid)
            if outbox:
                # Honest senders broadcast one value; take any entry.
                values.append(next(iter(outbox.values())))
        return ValueMultiset(values)

    def honest_sent_values(self) -> ValueMultiset:
        """The paper's ``U``: values generated by correct processes.

        Cured processes are excluded -- the mapping of Section 4 counts
        their round behaviour as a (benign/symmetric/asymmetric) fault.
        """
        return self.sent_value_multiset(self.correct_at_send)

    def nonfaulty_values_after(self) -> dict[int, float]:
        """End-of-round values of processes not occupied afterwards."""
        return {pid: self.values_after[pid] for pid in sorted(self.nonfaulty_after)}

    def nonfaulty_diameter_after(self) -> float:
        """Diameter of the non-faulty values at the end of the round."""
        return ValueMultiset(self.nonfaulty_values_after().values()).diameter()


class _TraceStats:
    """Derived quantities shared by :class:`Trace` and :class:`LiteTrace`.

    Subclasses provide ``n``, ``f``, ``model``, ``algorithm_name``,
    ``initial_values``, ``initially_nonfaulty``, ``decisions``,
    ``terminated`` plus ``diameters()`` / ``rounds_executed()``.
    """

    def initial_nonfaulty_values(self) -> dict[int, float]:
        """Round-0 inputs of the initially non-faulty processes."""
        return {
            pid: self.initial_values[pid]
            for pid in sorted(self.initially_nonfaulty)
        }

    def validity_interval(self) -> Interval:
        """Range of the initially non-faulty inputs (Validity reference)."""
        values = list(self.initial_nonfaulty_values().values())
        if not values:
            raise ValueError("no initially non-faulty process")
        return Interval(min(values), max(values))

    def decision_diameter(self) -> float:
        """Spread of the decided values."""
        return ValueMultiset(self.decisions.values()).diameter()

    def contraction_factors(self) -> list[float]:
        """Per-round diameter ratios ``d_{k+1} / d_k`` (skipping zeros)."""
        series = self.diameters()
        factors = []
        for before, after in zip(series, series[1:]):
            if before > 0:
                factors.append(after / before)
        return factors

    def summary(self) -> str:
        """One-line human-readable outcome."""
        model = self.model.value if self.model else "static"
        return (
            f"{model} n={self.n} f={self.f} alg={self.algorithm_name}: "
            f"{self.rounds_executed()} rounds, "
            f"decision diameter {self.decision_diameter():.3g}, "
            f"terminated={self.terminated}"
        )


@dataclass
class Trace(_TraceStats):
    """A complete simulated computation plus its decision outcome."""

    n: int
    f: int
    model: MobileModel | None
    algorithm_name: str
    epsilon: float
    initial_values: Mapping[int, float]
    #: Processes not occupied at round 0: the Validity reference set.
    initially_nonfaulty: frozenset[int]
    rounds: list[RoundRecord] = field(default_factory=list)
    #: Final values of the processes non-faulty at the decision round.
    decisions: dict[int, float] = field(default_factory=dict)
    #: Whether the termination rule fired (False = max_rounds exhausted).
    terminated: bool = False
    controller_description: str = ""

    # -- structure --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rounds)

    def __iter__(self) -> Iterator[RoundRecord]:
        return iter(self.rounds)

    @property
    def final_round(self) -> RoundRecord:
        """The last executed round; raises if the trace is empty."""
        if not self.rounds:
            raise ValueError("trace contains no rounds")
        return self.rounds[-1]

    # -- paper quantities ---------------------------------------------------------

    def diameters(self) -> list[float]:
        """Non-faulty diameter trajectory: initial, then after each round."""
        initial = ValueMultiset(self.initial_nonfaulty_values().values())
        series = [initial.diameter()]
        series.extend(
            record.nonfaulty_diameter_after() for record in self.rounds
        )
        return series

    def rounds_executed(self) -> int:
        """Number of voting rounds that ran."""
        return len(self.rounds)


@dataclass
class LiteTrace(_TraceStats):
    """The fast-path record of a simulated computation.

    Produced by ``run_simulation(config, trace_detail="lite")``.  The
    simulated dynamics are bit-identical to the full-trace path; what
    differs is the record: instead of per-round message matrices and MSR
    applications, only the per-round extent (min, max) of the non-faulty
    values survives -- exactly enough to reproduce decisions, diameter
    trajectories, termination and the headline specification verdict
    (Termination / eps-Agreement / Validity).  The per-round P1/P2
    invariants need full message data and are not checkable on a lite
    trace.
    """

    n: int
    f: int
    model: MobileModel | None
    algorithm_name: str
    epsilon: float
    initial_values: Mapping[int, float]
    #: Processes not occupied at round 0: the Validity reference set.
    initially_nonfaulty: frozenset[int]
    #: Per-round (min, max) over the non-faulty values at round end;
    #: ``None`` marks a round in which every process was occupied.
    round_extents: tuple[tuple[float, float] | None, ...] = ()
    decisions: dict[int, float] = field(default_factory=dict)
    terminated: bool = False
    controller_description: str = ""

    def __len__(self) -> int:
        return len(self.round_extents)

    def rounds_executed(self) -> int:
        """Number of voting rounds that ran."""
        return len(self.round_extents)

    def diameters(self) -> list[float]:
        """Non-faulty diameter trajectory: initial, then after each round."""
        initial = ValueMultiset(self.initial_nonfaulty_values().values())
        series = [initial.diameter()]
        series.extend(
            0.0 if extent is None else extent[1] - extent[0]
            for extent in self.round_extents
        )
        return series

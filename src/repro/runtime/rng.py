"""Deterministic randomness streams.

Every stochastic component of a simulation (adversary movement, value
noise, workload generation) draws from its own named stream derived
from the run's master seed.  Streams are independent: consuming more
randomness in one never perturbs another, so adding a new random
component does not silently change existing regression results.
"""

from __future__ import annotations

import random

__all__ = ["derive_rng", "spawn_seeds"]


def derive_rng(seed: int, *stream: str | int) -> random.Random:
    """Return a :class:`random.Random` for the named stream.

    The stream name is folded into the seed via a stable string key, so
    ``derive_rng(7, "adversary")`` yields the same generator on every
    platform and interpreter run.
    """
    key = f"{seed}" + "".join(f"/{part}" for part in stream)
    return random.Random(key)


def spawn_seeds(seed: int, count: int, *stream: str | int) -> list[int]:
    """Derive ``count`` child seeds for sub-simulations (e.g. sweeps)."""
    if count < 0:
        raise ValueError("count must be non-negative")
    rng = derive_rng(seed, "spawn", *stream)
    return [rng.getrandbits(63) for _ in range(count)]

"""The round kernel: the trace-lite receive+compute hot path.

Profiling the sweep engine (``results/perf.txt``) showed the lite path
spending nearly all of its time in the per-round inner loop: ``n`` MSR
evaluations, each allocating a :class:`~repro.msr.multiset.ValueMultiset`
chain (received, reduced, selected) over a copy-sorted inbox list.  That
cost is quadratic in ``n`` and collapses throughput at paper-scale
system sizes.  This module rebuilds that loop around two observations:

**Distinct inboxes.**  In the paper's model every correct process
*broadcasts* one value per round, so all recipients share one broadcast
multiset; only the per-recipient send overrides of faulty processes
differentiate inboxes.  And the MSR function ``F(N) = mean(Sel(Red(N)))``
is pid-independent (paper Section 4), so two recipients with the same
effective inbox compute the same value.  The kernel therefore groups
recipients by their override delta and evaluates once per *distinct
inbox* -- ``O(1 + #distinct override deltas)`` MSR evaluations per round
instead of ``O(n)``.  A symmetric attack yields one group; the classic
split attack yields three (broadcast-only, low camp, high camp) no
matter how large ``n`` grows.

**Flat-array multiset math.**  Every reduction in :mod:`repro.msr`
keeps a contiguous run of the sorted inbox, so ``Red`` is an index
range, ``Sel`` picks straight from that range, and ``mean`` folds the
picks -- no intermediate multiset objects.  The stage classes expose
this as ``flat_bounds`` / ``flat_select`` / ``flat_combine`` hooks, and
:func:`compile_msr` fuses them into one flat evaluator per algorithm.
Override inboxes are assembled by ``bisect.insort`` into one reused
buffer instead of copy-sorting the whole broadcast list per recipient.

Both layers are bit-identical to the object path: ``math.fsum`` is
exactly rounded (container-independent), selections pick by increasing
index from a sorted array, and degenerate inputs (empty inbox, size
below the resilience bound) fall back to the object path so canonical
errors are raised verbatim.  The equivalence suite runs every scenario
family with each layer toggled off to prove it.

A :class:`RoundKernel` owns only reusable scratch state, so one
instance can serve many simulations: ``simulate_batch`` and the sweep
backends' ``batch_size`` run whole batches of cells on shared buffers.
"""

from __future__ import annotations

import time
from bisect import insort
from collections.abc import Callable, Mapping, Sequence

from ..msr.base import MSRFunction
from ..msr.mean import Combiner
from ..msr.multiset import ValueMultiset
from ..msr.reduce import Reduction
from ..msr.select import Selection
from ..faults.value_strategies import CampOutbox
from .protocol import VotingProtocol

__all__ = [
    "BatchMSREvaluator",
    "RoundKernel",
    "compile_msr",
    "compile_msr_batch",
    "distinct_inbox_groups",
    "inbox_key",
]

#: A compiled, pid-independent computation-phase evaluator: maps a
#: sorted inbox (list or tuple of floats) to the next voted value.
FlatEvaluator = Callable[[Sequence[float]], float]

#: Sentinel marking "this override outbox does not target this pid" in
#: grouping keys; distinct from every float.
_MISSING = object()


def _overrides_flat_hook(instance: object, base: type, name: str) -> bool:
    """Whether ``instance``'s class provides its own flat hook."""
    return getattr(type(instance), name) is not getattr(base, name)


def compile_msr(function: MSRFunction) -> FlatEvaluator | None:
    """Fuse an MSR function's stages into one flat evaluator.

    Returns ``None`` when any stage lacks a flat hook (a custom
    reduction/selection/combiner outside :mod:`repro.msr`); callers
    then stay on the :meth:`~repro.msr.base.MSRFunction.apply_value`
    object path.  The returned evaluator is bit-identical to
    ``function.apply_value(ValueMultiset.from_trusted_floats(inbox))``
    for every sorted inbox, including raised errors: degenerate inputs
    are delegated to the object path verbatim.
    """
    reduction = function.reduction
    selection = function.selection
    combiner = function.combiner
    if not (
        _overrides_flat_hook(reduction, Reduction, "flat_bounds")
        and _overrides_flat_hook(selection, Selection, "flat_select")
        and _overrides_flat_hook(combiner, Combiner, "flat_combine")
    ):
        return None
    flat_bounds = reduction.flat_bounds
    flat_select = selection.flat_select
    flat_combine = combiner.flat_combine
    apply_value = function.apply_value
    wrap = ValueMultiset.from_trusted_floats

    def evaluate(inbox: Sequence[float]) -> float:
        if inbox:
            bounds = flat_bounds(inbox)
            if bounds is not None:
                lo, hi = bounds
                if hi > lo:
                    return flat_combine(flat_select(inbox, lo, hi))
        # Empty inbox, below the resilience bound, or a reduction that
        # emptied the multiset: take the object path so its canonical
        # errors surface unchanged.
        return apply_value(wrap(inbox))

    return evaluate


class BatchMSREvaluator:
    """The batched fold of one MSR function over equal-width inboxes.

    Wraps the three ``*_batch`` stage hooks (see
    :meth:`~repro.msr.reduce.Reduction.flat_bounds_width`,
    :meth:`~repro.msr.select.Selection.flat_select_batch`,
    :meth:`~repro.msr.mean.Combiner.flat_combine_batch`): ``bounds``
    answers the shared reduction range for a whole batch of sorted rows
    of one width, ``select`` slices the picked columns, ``combine``
    folds each row to a Python float.  Built by :func:`compile_msr_batch`.
    """

    __slots__ = ("bounds", "select", "combine")

    def __init__(self, bounds, select, combine) -> None:
        self.bounds = bounds
        self.select = select
        self.combine = combine


def compile_msr_batch(function: MSRFunction) -> BatchMSREvaluator | None:
    """Fuse an MSR function's batch stage hooks into one evaluator.

    The batched counterpart of :func:`compile_msr` for the vectorized
    round engine: one call evaluates every distinct inbox of a round at
    once on a 2D array of sorted rows.  Returns ``None`` when any stage
    lacks a batch hook (value-dependent reductions, custom stages);
    callers then stay on the scalar paths.  Results are bit-identical
    to the scalar flat evaluator row by row -- the equivalence suite
    sweeps the toggle to prove it.
    """
    reduction = function.reduction
    selection = function.selection
    combiner = function.combiner
    if not (
        _overrides_flat_hook(reduction, Reduction, "flat_bounds_width")
        and _overrides_flat_hook(selection, Selection, "flat_select_batch")
        and _overrides_flat_hook(combiner, Combiner, "flat_combine_batch")
    ):
        return None
    return BatchMSREvaluator(
        reduction.flat_bounds_width,
        selection.flat_select_batch,
        combiner.flat_combine_batch,
    )


def inbox_key(
    pid: int,
    override_outboxes: Sequence[Mapping[int, float]],
    outbox_senders: Sequence[int] | None = None,
    neighborhood: frozenset[int] | None = None,
) -> tuple:
    """The override delta recipient ``pid`` sees, as a grouping key.

    Two recipients receive the same effective inbox if and only if they
    see the same shared broadcast list (always true on the complete
    graph) and the same sequence of override values -- this tuple.
    Outbox order is the plan's iteration order, identical for every
    recipient of a round.

    Under a restricted communication graph the key additionally
    filters by reachability: ``neighborhood`` is the recipient's
    neighbor set and ``outbox_senders`` names each outbox's sender, so
    only overrides that can physically reach ``pid`` discriminate.
    (The neighborhood itself must then join the key -- see
    :func:`distinct_inbox_groups` -- because the shared broadcast list
    is no longer shared.)
    """
    if neighborhood is None:
        return tuple(
            float(outbox[pid]) for outbox in override_outboxes if pid in outbox
        )
    if outbox_senders is None:
        raise ValueError("neighborhood-restricted keys need outbox_senders")
    return tuple(
        float(outbox[pid])
        for sender, outbox in zip(outbox_senders, override_outboxes)
        if (sender == pid or sender in neighborhood) and pid in outbox
    )


def distinct_inbox_groups(
    n: int,
    override_outboxes: Sequence[Mapping[int, float]] | None,
    excluded: frozenset[int] | set[int] = frozenset(),
    neighborhoods: Sequence[frozenset[int]] | None = None,
    outbox_senders: Sequence[int] | None = None,
) -> dict[tuple, list[int]]:
    """Group recipients ``0..n-1`` by their effective-inbox key.

    ``excluded`` names recipients that skip the computation phase
    (occupied processes).  Every pid in a group sees exactly the same
    multiset during the receive phase; the kernel's grouped loop is the
    single-pass equivalent of evaluating one representative per group.
    Exposed for the property tests that pin down the grouping
    invariant.

    With ``neighborhoods`` (one frozenset per pid, from a
    :class:`~repro.topology.Topology`), the grouping becomes
    neighbor-aware: the key is ``(hearing set, restricted override
    delta)`` where the hearing set is ``N(pid) | {pid}`` -- the
    broadcasters this recipient can physically receive.  Two
    recipients merge only when they hear the same broadcasters *and*
    the same reachable overrides.  On the complete graph every hearing
    set is the full vertex set, so the key collapses to the original
    override tuple and the fast case stays fast.
    """
    groups: dict[tuple, list[int]] = {}
    for pid in range(n):
        if pid in excluded:
            continue
        if neighborhoods is None:
            key = (
                inbox_key(pid, override_outboxes) if override_outboxes else ()
            )
        else:
            hood = neighborhoods[pid]
            delta = (
                inbox_key(pid, override_outboxes, outbox_senders, hood)
                if override_outboxes
                else ()
            )
            key = (hood | {pid}, delta)
        group = groups.get(key)
        if group is None:
            groups[key] = [pid]
        else:
            group.append(pid)
    return groups


class RoundKernel:
    """Reusable engine for the lite computation phase of one round.

    Holds only scratch state (the insort buffer), so a single instance
    can be shared across rounds, simulations and whole sweep batches.
    The two toggles exist for the equivalence suite: with both off the
    kernel degrades to the pre-kernel per-recipient object path, which
    the tests use as the in-tree reference implementation.

    Parameters
    ----------
    group_inboxes:
        Evaluate once per distinct effective inbox (requires the
        protocol to declare ``pid_independent_compute``) instead of
        once per recipient.
    flat_msr:
        Evaluate MSR functions through :func:`compile_msr`'s flat
        evaluator instead of the ``ValueMultiset`` object path.
    vectorized:
        Evaluate whole batches of distinct inboxes per round with
        array-shaped state (:meth:`prepare_batch` /
        :meth:`compute_phase_batch`) when numpy is available.  Implies
        nothing on its own -- the simulator additionally requires the
        grouped+flat toggles, a complete topology and broadcast send
        semantics, and falls back to the scalar paths (which remain the
        bit-identity reference) whenever any precondition fails.
    """

    __slots__ = ("group_inboxes", "flat_msr", "vectorized", "telemetry", "_buffer")

    def __init__(
        self,
        *,
        group_inboxes: bool = True,
        flat_msr: bool = True,
        vectorized: bool = True,
    ) -> None:
        self.group_inboxes = group_inboxes
        self.flat_msr = flat_msr
        self.vectorized = vectorized
        # A repro.telemetry KernelSampler when a tracing session wants
        # sampled phase timings; None keeps the phase entry points on
        # the single-slot-read fast path.
        self.telemetry = None
        self._buffer: list[float] = []

    def prepare(self, protocol: VotingProtocol) -> FlatEvaluator | None:
        """Resolve the flat evaluator for a run's protocol (or ``None``).

        Called once per simulation, not per round: compilation is cheap
        but not free, and the evaluator is immutable.
        """
        if not (self.flat_msr and protocol.pid_independent_compute):
            return None
        function = getattr(protocol, "function", None)
        if not isinstance(function, MSRFunction):
            return None
        return compile_msr(function)

    def prepare_batch(self, protocol: VotingProtocol) -> BatchMSREvaluator | None:
        """Resolve the batched evaluator for a run's protocol (or ``None``).

        The vectorized engine subsumes the grouped and flat layers, so
        it only engages when all three toggles are on -- turning either
        scalar toggle off is a request for the reference semantics.
        """
        if not (self.vectorized and self.group_inboxes and self.flat_msr):
            return None
        if not protocol.pid_independent_compute:
            return None
        function = getattr(protocol, "function", None)
        if not isinstance(function, MSRFunction):
            return None
        return compile_msr_batch(function)

    def compute_phase_batch(
        self,
        batch: BatchMSREvaluator,
        np,
        broadcasts_arr,
        override_outboxes: Sequence[Mapping[int, float]] | None,
        n: int,
    ):
        """Sampling shim over :meth:`_compute_phase_batch` (the real
        vectorized phase).  With no sampler attached this is one slot
        read and a tail call."""
        sampler = self.telemetry
        if sampler is None or not sampler.tick("batch"):
            return self._compute_phase_batch(
                batch, np, broadcasts_arr, override_outboxes, n
            )
        start = time.perf_counter()
        try:
            return self._compute_phase_batch(
                batch, np, broadcasts_arr, override_outboxes, n
            )
        finally:
            sampler.record("batch", time.perf_counter() - start)

    def _compute_phase_batch(
        self,
        batch: BatchMSREvaluator,
        np,
        broadcasts_arr,
        override_outboxes: Sequence[Mapping[int, float]] | None,
        n: int,
    ):
        """Vectorized receive+compute over every distinct inbox at once.

        ``broadcasts_arr`` is the round's sorted shared broadcast values
        as a float64 array.  Returns the new length-``n`` float64 value
        array (corrupted pids included -- they carry a harmless
        placeholder the caller overwrites), or ``None`` when this round
        is not batchable (non-camp overrides, an empty fold, or bounds
        below the resilience limit); the caller then takes the scalar
        path, which raises the canonical errors.

        Bit-identity with the scalar kernel rests on three facts:
        stable-sorting ``[broadcasts..., extras...]`` reproduces
        ``insort``'s after-equals placement (including ``-0.0``/``0.0``
        ties), the batch stage hooks are row-wise identical to the flat
        hooks, and results leave as Python floats via ``.tolist()``.
        """
        prepared = self.batch_rows(np, broadcasts_arr, override_outboxes)
        if prepared is None:
            return None
        rows, codes = prepared
        width = int(rows.shape[1])
        bounds = batch.bounds(width)
        if bounds is None:
            return None
        lo, hi = bounds
        if hi <= lo:
            return None
        if codes is None:
            results = batch.combine(batch.select(rows, lo, hi))
            return np.full(n, results[0], dtype=np.float64)
        rows = np.sort(rows, axis=1, kind="stable")
        results = np.asarray(
            batch.combine(batch.select(rows, lo, hi)), dtype=np.float64
        )
        return results[codes]

    def batch_rows(
        self,
        np,
        broadcasts_arr,
        override_outboxes: Sequence[Mapping[int, float]] | None,
    ):
        """Assemble one round's distinct-inbox row matrix, or ``None``.

        Returns ``(rows, codes)``: ``rows`` is a 2D float64 matrix with
        one row per distinct inbox (*not yet sorted*, except in the
        no-override case where the single row is the already-sorted
        broadcast array itself); ``codes`` maps each pid to its row
        index, or is ``None`` in the no-override case (every recipient
        folds row 0).  ``None`` overall means the round is not
        batchable (non-camp overrides, mixed assignments, an empty
        fold) and the caller must take the scalar path.

        Factored out of :meth:`compute_phase_batch` so the cross-run
        engine can collect many runs' rows and fold all rows of one
        width in a single array pass (:meth:`fold_rows_many`).
        """
        m = int(broadcasts_arr.shape[0])
        if not override_outboxes:
            # Every recipient folds the same broadcast multiset.
            if m == 0:
                return None
            return broadcasts_arr.reshape(1, m), None

        # Identity-dedup mirrors the scalar grouped path: controllers
        # share one outbox object across sender-agnostic agents -- the
        # overwhelmingly common case, so probe for it before paying the
        # per-sender bookkeeping loop.
        first = override_outboxes[0]
        if all(outbox is first for outbox in override_outboxes):
            unique: list[Mapping[int, float]] = [first]
            slots: list[int] | None = None
        else:
            unique = []
            slots = []
            index_of: dict[int, int] = {}
            for outbox in override_outboxes:
                index = index_of.get(id(outbox))
                if index is None:
                    index = len(unique)
                    index_of[id(outbox)] = index
                    unique.append(outbox)
                slots.append(index)
        if not all(type(u) is CampOutbox for u in unique):
            return None
        assignment = unique[0].assignment
        if not all(u.assignment is assignment for u in unique[1:]):
            return None

        # Camp strategies stash the integer codes on the assignment
        # (see CampAssignment); fall back to encoding the plain tuple.
        codes = getattr(assignment, "array", None)
        if codes is None:
            codes = np.asarray(assignment, dtype=np.intp)
        ncamps = int(codes.max()) + 1
        k = len(override_outboxes)
        if m + k == 0:
            return None
        # One row per camp: the shared broadcasts plus this camp's
        # override values in slot order.  The scalar path materializes
        # only the camps that have recipients; evaluating all of them
        # is harmless because bounds depend only on the width.
        if slots is None:
            column = np.asarray(first.camp_values[:ncamps], dtype=np.float64)
            extras = np.broadcast_to(column.reshape(ncamps, 1), (ncamps, k))
        else:
            per_unique = np.asarray(
                [u.camp_values[:ncamps] for u in unique], dtype=np.float64
            )
            extras = per_unique[np.asarray(slots, dtype=np.intp)].T
        rows = np.concatenate(
            [np.broadcast_to(broadcasts_arr, (ncamps, m)), extras], axis=1
        )
        return rows, codes

    def fold_rows_many(self, batch: BatchMSREvaluator, np, entries):
        """Fold many runs' prepared rows in width-grouped array passes.

        ``entries`` is one item per run: ``(rows, codes, n)`` from
        :meth:`batch_rows`, or ``None`` for a run whose round is not
        batchable.  Returns a list aligned with ``entries``: the new
        length-``n`` float64 value array per run, or ``None`` where the
        round must take the scalar path (unbatchable rows, degenerate
        bounds).

        Rows are grouped by width so the reduction bounds (a function
        of width alone) are shared, all rows of one width are sorted by
        a single stable ``np.sort`` and folded by one ``combine`` call.
        Row-wise independence of the batch stage hooks makes this
        bit-identical to folding each run separately.
        """
        results: list = [None] * len(entries)
        by_width: dict[int, list] = {}
        for index, entry in enumerate(entries):
            if entry is None:
                continue
            rows, codes, n = entry
            width = int(rows.shape[1])
            if width == 0:
                continue
            bounds = batch.bounds(width)
            if bounds is None:
                continue
            lo, hi = bounds
            if hi <= lo:
                continue
            by_width.setdefault(width, []).append(
                (index, rows, codes, n, lo, hi)
            )
        for group in by_width.values():
            if len(group) == 1:
                stacked = group[0][1]
            else:
                stacked = np.concatenate(
                    [item[1] for item in group], axis=0
                )
            stacked = np.sort(stacked, axis=1, kind="stable")
            lo, hi = group[0][4], group[0][5]
            folded = batch.combine(batch.select(stacked, lo, hi))
            offset = 0
            for index, rows, codes, n, _, _ in group:
                count = int(rows.shape[0])
                values = folded[offset : offset + count]
                offset += count
                if codes is None:
                    results[index] = np.full(n, values[0], dtype=np.float64)
                else:
                    results[index] = np.asarray(values, dtype=np.float64)[
                        codes
                    ]
        return results

    def compute_phase(
        self,
        protocol: VotingProtocol,
        evaluate: FlatEvaluator | None,
        n: int,
        broadcasts: list[float],
        override_outboxes: Sequence[Mapping[int, float]] | None,
        compute_corruptions: Mapping[int, float],
        values: dict[int, float],
        need_diameter: bool,
        topology=None,
        broadcast_by_sender: Mapping[int, float] | None = None,
        override_senders: Sequence[int] | None = None,
    ) -> float:
        """Sampling shim over :meth:`_compute_phase` (the real scalar
        phase).  With no sampler attached this is one slot read and a
        tail call."""
        sampler = self.telemetry
        if sampler is None or not sampler.tick("scalar"):
            return self._compute_phase(
                protocol, evaluate, n, broadcasts, override_outboxes,
                compute_corruptions, values, need_diameter, topology,
                broadcast_by_sender, override_senders,
            )
        start = time.perf_counter()
        try:
            return self._compute_phase(
                protocol, evaluate, n, broadcasts, override_outboxes,
                compute_corruptions, values, need_diameter, topology,
                broadcast_by_sender, override_senders,
            )
        finally:
            sampler.record("scalar", time.perf_counter() - start)

    def _compute_phase(
        self,
        protocol: VotingProtocol,
        evaluate: FlatEvaluator | None,
        n: int,
        broadcasts: list[float],
        override_outboxes: Sequence[Mapping[int, float]] | None,
        compute_corruptions: Mapping[int, float],
        values: dict[int, float],
        need_diameter: bool,
        topology=None,
        broadcast_by_sender: Mapping[int, float] | None = None,
        override_senders: Sequence[int] | None = None,
    ) -> float:
        """Run the receive+compute phase for every non-occupied process.

        ``broadcasts`` is the round's sorted shared broadcast list;
        ``override_outboxes`` the per-recipient override maps (or
        ``None``); ``evaluate`` the evaluator from :meth:`prepare`.
        Writes each computed value into ``values`` and returns the
        maximum received-multiset diameter (0.0 unless
        ``need_diameter``, which only the first round asks for).

        ``topology`` (a non-complete :class:`~repro.topology.Topology`)
        switches to neighbor-aware assembly: inboxes are restricted to
        each recipient's hearing set and memoization is keyed per
        neighborhood, which needs the per-sender broadcast values
        (``broadcast_by_sender``) and each override outbox's sender id
        (``override_senders``).  A ``None`` or complete topology takes
        the exact pre-topology code below -- bit-identical and fast.
        """
        if topology is not None and not topology.is_complete:
            return self._compute_phase_restricted(
                protocol,
                evaluate,
                n,
                broadcast_by_sender if broadcast_by_sender is not None else {},
                override_outboxes,
                override_senders,
                compute_corruptions,
                values,
                need_diameter,
                topology,
            )
        grouped = self.group_inboxes and protocol.pid_independent_compute
        compute_value = protocol.compute_value
        wrap = ValueMultiset.from_trusted_floats
        buffer = self._buffer
        max_diameter = 0.0

        if grouped:
            # One evaluation per distinct inbox, fanned out to every
            # recipient of the group in ascending pid order (so any
            # evaluation error surfaces at the same pid as the
            # per-recipient path).  Override maps are deduplicated by
            # identity first: controllers share one outbox across all
            # sender-agnostic agents, collapsing the per-recipient
            # grouping key from ``f`` lookups to one.
            unique: list[Mapping[int, float]] = []
            slots: list[int] = []
            if override_outboxes:
                index_of: dict[int, int] = {}
                for outbox in override_outboxes:
                    index = index_of.get(id(outbox))
                    if index is None:
                        index = len(unique)
                        index_of[id(outbox)] = index
                        unique.append(outbox)
                    slots.append(index)
            # Camp-declared outboxes sharing one recipient partition
            # (see repro.faults.value_strategies.CampOutbox) collapse
            # the grouping key to the camp index itself: no per-unique
            # probing, and #distinct inboxes == #camps by construction.
            camp_assignment = None
            camp_values: list[Sequence[float]] = []
            if unique and all(type(u) is CampOutbox for u in unique):
                assignment = unique[0].assignment
                if all(u.assignment is assignment for u in unique[1:]):
                    camp_assignment = assignment
                    camp_values = [u.camp_values for u in unique]
            if camp_assignment is not None:
                camp_cache: dict[int, tuple[float, float]] = {}
                for pid in range(n):
                    if pid in compute_corruptions:
                        continue
                    camp = camp_assignment[pid]
                    hit = camp_cache.get(camp)
                    if hit is None:
                        buffer[:] = broadcasts
                        for index in slots:
                            insort(buffer, camp_values[index][camp])
                        result = (
                            evaluate(buffer)
                            if evaluate is not None
                            else compute_value(
                                pid, ValueMultiset.from_trusted_floats(buffer)
                            )
                        )
                        diameter = buffer[-1] - buffer[0] if buffer else 0.0
                        hit = (result, diameter)
                        camp_cache[camp] = hit
                    values[pid] = hit[0]
                    if need_diameter and hit[1] > max_diameter:
                        max_diameter = hit[1]
                return max_diameter

            single = unique[0] if len(unique) == 1 else None
            cache: dict[tuple, tuple[float, float]] = {}
            for pid in range(n):
                if pid in compute_corruptions:
                    continue
                # The grouping key holds one entry per *unique* outbox;
                # the slot list restores per-sender multiplicity when
                # the inbox is materialized, so the key is exactly as
                # discriminating as the full per-sender override tuple.
                if single is not None:
                    value = single.get(pid, _MISSING)
                    key = (value if value is _MISSING else float(value),)
                elif unique:
                    key = tuple(
                        value if value is _MISSING else float(value)
                        for value in (
                            outbox.get(pid, _MISSING) for outbox in unique
                        )
                    )
                else:
                    key = ()
                hit = cache.get(key)
                if hit is None:
                    extras = [
                        key[slot] for slot in slots
                        if key[slot] is not _MISSING
                    ]
                    if extras:
                        buffer[:] = broadcasts
                        for value in extras:
                            insort(buffer, value)
                        inbox: Sequence[float] = buffer
                    else:
                        inbox = broadcasts
                    result = (
                        evaluate(inbox)
                        if evaluate is not None
                        else compute_value(pid, wrap(inbox))
                    )
                    diameter = inbox[-1] - inbox[0] if inbox else 0.0
                    hit = (result, diameter)
                    cache[key] = hit
                values[pid] = hit[0]
                if need_diameter and hit[1] > max_diameter:
                    max_diameter = hit[1]
            return max_diameter

        # Per-recipient path: pid-dependent protocols, and the
        # reference mode of the equivalence suite.
        for pid in range(n):
            if pid in compute_corruptions:
                continue
            if override_outboxes is not None:
                buffer[:] = broadcasts
                for outbox in override_outboxes:
                    if pid in outbox:
                        insort(buffer, float(outbox[pid]))
                inbox = buffer
            else:
                inbox = broadcasts
            values[pid] = (
                evaluate(inbox)
                if evaluate is not None
                else compute_value(pid, wrap(inbox))
            )
            if need_diameter:
                diameter = inbox[-1] - inbox[0] if inbox else 0.0
                if diameter > max_diameter:
                    max_diameter = diameter
        return max_diameter

    def _compute_phase_restricted(
        self,
        protocol: VotingProtocol,
        evaluate: FlatEvaluator | None,
        n: int,
        broadcast_by_sender: Mapping[int, float],
        override_outboxes: Sequence[Mapping[int, float]] | None,
        override_senders: Sequence[int] | None,
        compute_corruptions: Mapping[int, float],
        values: dict[int, float],
        need_diameter: bool,
        topology,
    ) -> float:
        """Neighbor-aware receive+compute under a restricted topology.

        There is no shared broadcast list here: each recipient hears
        only the broadcasters in its hearing set ``N(pid) | {pid}``, so
        inboxes are assembled per hearing set and the distinct-inbox
        memoization is keyed ``(hearing set, reachable override
        delta)``.  Recipients with identical hearing sets and deltas
        (every pid on the complete graph; symmetric clusters elsewhere)
        still share one MSR evaluation; a ring degrades gracefully to
        one evaluation per node.
        """
        if override_outboxes and override_senders is None:
            raise ValueError(
                "restricted compute_phase needs override_senders naming "
                "each override outbox's sender"
            )
        grouped = self.group_inboxes and protocol.pid_independent_compute
        compute_value = protocol.compute_value
        wrap = ValueMultiset.from_trusted_floats
        buffer = self._buffer
        max_diameter = 0.0
        neighbor_sets = topology.neighbor_sets
        cache: dict[tuple, tuple[float, float]] | None = {} if grouped else None

        for pid in range(n):
            if pid in compute_corruptions:
                continue
            hood = neighbor_sets[pid]
            delta: tuple = ()
            if override_outboxes:
                delta = tuple(
                    float(outbox[pid])
                    for sender, outbox in zip(override_senders, override_outboxes)
                    if (sender == pid or sender in hood) and pid in outbox
                )
            if cache is not None:
                # The hearing set (not the bare neighbor set) is the
                # broadcast filter: two pids share an inbox exactly
                # when N(p)|{p} and the reachable deltas coincide.
                key = (hood | {pid}, delta)
                hit = cache.get(key)
                if hit is not None:
                    values[pid] = hit[0]
                    if need_diameter and hit[1] > max_diameter:
                        max_diameter = hit[1]
                    continue
            buffer[:] = [
                value
                for sender, value in broadcast_by_sender.items()
                if sender == pid or sender in hood
            ]
            buffer.sort()
            for value in delta:
                insort(buffer, value)
            inbox: Sequence[float] = buffer
            result = (
                evaluate(inbox)
                if evaluate is not None
                else compute_value(pid, wrap(inbox))
            )
            diameter = inbox[-1] - inbox[0] if inbox else 0.0
            if cache is not None:
                cache[key] = (result, diameter)
            values[pid] = result
            if need_diameter and diameter > max_diameter:
                max_diameter = diameter
        return max_diameter

"""High-level convenience API.

Most users want: "run approximate agreement under model M2 with f=2 and
a nasty adversary, then check the spec".  This module assembles a
validated :class:`~repro.runtime.config.SimulationConfig` from short
names and sensible defaults:

>>> import repro
>>> trace = repro.simulate(model="M1", f=1, seed=7)
>>> verdict = repro.check(trace)
>>> verdict.satisfied
True

Everything remains overridable; power users can always construct the
config objects directly.
"""

from __future__ import annotations

from collections.abc import Sequence

from .core.mapping import msr_trim_parameter
from .core.specification import SpecVerdict, check_trace
from .faults.adversary import Adversary
from .faults.models import MobileModel, get_semantics
from .faults.movement import (
    MovementStrategy,
    RandomJump,
    RoundRobinWalk,
    StaticAgents,
    TargetExtremes,
)
from .faults.value_strategies import (
    CrossfireAttack,
    EchoCorrect,
    InertiaAttack,
    OscillatingAttack,
    OutlierAttack,
    RandomNoise,
    SplitAttack,
    ValueStrategy,
)
from .msr.base import MSRFunction
from .msr.registry import make_algorithm
from .runtime.config import MobileFaultSetup, SimulationConfig
from .runtime.simulator import run_simulation
from .runtime.termination import FixedRounds, OracleDiameter, TerminationRule
from .topology import DEFAULT_TOPOLOGY

__all__ = [
    "movement_strategy",
    "value_strategy",
    "mobile_config",
    "simulate",
    "sweep_grid",
    "check",
    "evenly_spread_values",
]

_MOVEMENTS = {
    "static": StaticAgents,
    "round-robin": RoundRobinWalk,
    "random": RandomJump,
    "target-extremes": TargetExtremes,
}

_ATTACKS = {
    "split": SplitAttack,
    "outlier": OutlierAttack,
    "noise": RandomNoise,
    "echo": EchoCorrect,
    "oscillating": OscillatingAttack,
    "inertia": InertiaAttack,
    "crossfire": CrossfireAttack,
}


def movement_strategy(name: str | MovementStrategy) -> MovementStrategy:
    """Resolve a movement strategy by short name (or pass one through)."""
    if isinstance(name, MovementStrategy):
        return name
    try:
        return _MOVEMENTS[name]()
    except KeyError:
        known = ", ".join(sorted(_MOVEMENTS))
        raise KeyError(f"unknown movement {name!r}; known: {known}") from None


def value_strategy(name: str | ValueStrategy) -> ValueStrategy:
    """Resolve a value strategy by short name (or pass one through)."""
    if isinstance(name, ValueStrategy):
        return name
    try:
        return _ATTACKS[name]()
    except KeyError:
        known = ", ".join(sorted(_ATTACKS))
        raise KeyError(f"unknown attack {name!r}; known: {known}") from None


def evenly_spread_values(n: int, low: float = 0.0, high: float = 1.0) -> tuple[float, ...]:
    """Deterministic initial values spread across ``[low, high]``."""
    if n < 1:
        raise ValueError("n must be positive")
    if n == 1:
        return ((low + high) / 2.0,)
    step = (high - low) / (n - 1)
    return tuple(low + i * step for i in range(n))


def mobile_config(
    model: MobileModel | str = "M1",
    f: int = 1,
    n: int | None = None,
    algorithm: str | MSRFunction = "ftm",
    movement: str | MovementStrategy = "round-robin",
    attack: str | ValueStrategy = "split",
    initial_values: Sequence[float] | None = None,
    epsilon: float = 1e-3,
    seed: int = 0,
    rounds: int | None = None,
    max_rounds: int = 1_000,
    termination: TerminationRule | None = None,
    bound_check: str = "error",
    family: str = "bonomi",
    topology: str = DEFAULT_TOPOLOGY,
) -> SimulationConfig:
    """Assemble a mobile-Byzantine simulation configuration.

    Defaults: ``n`` is the model's minimum (Table 2), the MSR trim
    parameter is derived from the model and ``f`` (Table 1), initial
    values are spread over ``[0, 1]``, and the run stops when the true
    non-faulty diameter reaches ``epsilon`` (oracle termination) unless
    ``rounds`` or ``termination`` overrides it.  ``family`` selects the
    protocol-level algorithm family (see
    :mod:`repro.runtime.families`): ``"bonomi"`` is the source paper's
    MSR voting protocol, ``"tseng"`` the improved algorithm of
    arXiv:1707.07659, ``"witness"`` the partial-connectivity relay
    protocol of arXiv:1206.0089.  ``topology`` names the communication
    graph (see :mod:`repro.topology`): the default ``"complete"`` is
    the paper's full mesh; partially-connected specs like ``"ring:2"``
    or ``"random-regular:4:7"`` need a relay-capable family.
    """
    semantics = get_semantics(model)
    if n is None:
        n = semantics.required_n(f)
    if isinstance(algorithm, str):
        algorithm = make_algorithm(algorithm, msr_trim_parameter(semantics.model, f))
    if initial_values is None:
        initial_values = evenly_spread_values(n)
    if termination is None:
        termination = (
            FixedRounds(rounds) if rounds is not None else OracleDiameter(epsilon)
        )
    adversary = Adversary(
        movement=movement_strategy(movement), values=value_strategy(attack)
    )
    return SimulationConfig(
        n=n,
        f=f,
        initial_values=tuple(float(v) for v in initial_values),
        algorithm=algorithm,
        setup=MobileFaultSetup(model=semantics.model, adversary=adversary),
        termination=termination,
        epsilon=epsilon,
        seed=seed,
        max_rounds=max_rounds,
        bound_check=bound_check,  # type: ignore[arg-type]
        family=family,
        topology=topology,
    )


def simulate(
    config: SimulationConfig | None = None,
    trace_detail: str = "full",
    **kwargs,
):
    """Run a simulation; keyword arguments build a config via
    :func:`mobile_config` when none is given.

    ``trace_detail="lite"`` takes the simulator's fast path and returns
    a :class:`~repro.runtime.trace.LiteTrace` (identical decisions and
    diameters, no per-round message matrices).
    """
    if config is None:
        config = mobile_config(**kwargs)
    elif kwargs:
        offending = ", ".join(sorted(kwargs))
        raise TypeError(
            "simulate() takes either a config or keyword arguments, not "
            f"both (got a config plus: {offending})"
        )
    return run_simulation(config, trace_detail=trace_detail)


def sweep_grid(
    models="M1",
    fs=1,
    ns=None,
    algorithms="ftm",
    movements="round-robin",
    attacks="split",
    epsilons=1e-3,
    seeds=4,
    rounds: int | None = None,
    max_rounds: int = 1_000,
    families="bonomi",
    topologies=DEFAULT_TOPOLOGY,
    workers: int = 1,
    trace_detail: str = "lite",
    chunk_size: int | None = None,
    backend=None,
    cache=None,
    probe: str | None = None,
    batch_size: int | None = None,
    dispatch: str = "auto",
    progress=None,
    journal=None,
    cross_run: bool = False,
):
    """Run a scenario sweep over the cartesian product of the axes.

    Every axis accepts a scalar or a sequence; ``seeds`` additionally
    accepts an integer ``K`` meaning seeds ``0..K-1``.  ``families``
    sweeps protocol-level algorithm families (``"bonomi"``,
    ``"tseng"``, ``"witness"``; see :mod:`repro.runtime.families`) and
    ``topologies`` sweeps communication graphs (``"complete"``,
    ``"ring:2"``, ``"torus"``, ``"random-regular:4"``; see
    :mod:`repro.topology`) against otherwise identical cells --
    combinations a family rejects structurally (complete-graph
    families on partial graphs) are pruned from the grid, so
    head-to-head comparisons like witness-on-ring vs bonomi-on-complete
    ride one grid.  ``workers > 1``
    distributes cells over a process pool; ``trace_detail`` selects the
    simulator path (the default trace-lite fast path is bit-identical
    on decisions and diameters).  ``backend`` overrides the execution
    strategy (a :class:`~repro.sweep.SweepBackend` instance or one of
    ``"serial"`` / ``"multiprocessing"`` / ``"async"``), ``cache`` -- a
    directory path or :class:`~repro.sweep.CellStore` -- memoizes
    per-cell results on disk, and ``probe`` names a registered trace
    probe (or a ``"module:attr"`` entry point) whose output lands in
    each cell's ``extras``.  ``batch_size``, ``dispatch``, ``progress``
    and ``journal`` forward to :func:`repro.sweep.run_sweep`: in-worker
    batching, the pool-heuristic override, a streaming
    ``(result, done, total)`` callback, and a
    :class:`~repro.sweep.SweepJournal` for resumable sweeps.
    ``cross_run=True`` routes execution through the cross-run
    vectorized engine: compatible cells (same shape, differing only in
    seed) advance together as one stacked ``(R, n)`` state array,
    bit-identical to per-cell execution (see
    :func:`repro.sweep.run_cell_many`); with ``workers > 1`` it
    auto-selects the zero-copy shared-memory stealing pool
    (:class:`~repro.sweep.ShmCrossRunBackend`), and ``dispatch="shm"``
    forces that pool outright.  Returns a
    :class:`~repro.sweep.SweepResult`.

    >>> import repro
    >>> result = repro.sweep_grid(models=("M1", "M2"), seeds=2)
    >>> len(result)
    4
    """
    from .sweep import GridSpec, run_sweep

    if isinstance(seeds, int):
        seeds = tuple(range(seeds))
    grid = GridSpec(
        models=models,
        fs=fs,
        ns=ns,
        algorithms=algorithms,
        movements=movements,
        attacks=attacks,
        epsilons=epsilons,
        seeds=seeds,
        rounds=rounds,
        max_rounds=max_rounds,
        families=families,
        topologies=topologies,
    )
    return run_sweep(
        grid,
        workers=workers,
        trace_detail=trace_detail,
        chunk_size=chunk_size,
        backend=backend,
        cache=cache,
        probe=probe,
        batch_size=batch_size,
        dispatch=dispatch,
        progress=progress,
        journal=journal,
        cross_run=cross_run,
    )


def check(trace, epsilon: float | None = None) -> SpecVerdict:
    """Check a trace against the Approximate Agreement specification."""
    return check_trace(trace, epsilon)

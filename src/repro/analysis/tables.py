"""ASCII table rendering for paper-shaped experiment output.

Every experiment and benchmark prints its results through
:func:`render_table`, so the harness output visually matches the
row/column structure of the paper's tables.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["render_table", "format_cell"]


def format_cell(value: object) -> str:
    """Render one table cell: floats get compact formatting."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a fixed-width ASCII table.

    >>> print(render_table(["a", "b"], [[1, 2.5]], title="T"))
    T
    a | b
    --+----
    1 | 2.5
    """
    cells = [[format_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(
        " | ".join(header.ljust(width) for header, width in zip(headers, widths)).rstrip()
    )
    lines.append("-+-".join("-" * width for width in widths))
    for row in cells:
        lines.append(
            " | ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
        )
    return "\n".join(lines)

"""Summary statistics for experiment sweeps.

Sweeps produce distributions (rounds-to-epsilon over seeds, contraction
factors over adversaries); this module provides the few aggregations
the harness reports, dependency-free and deterministic.
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from dataclasses import dataclass

__all__ = ["SummaryStats", "summarize", "percentile"]


def percentile(values: list[float], q: float) -> float:
    """Linear-interpolation percentile of ``values`` (q in [0, 100]).

    Matches numpy's default method; implemented locally so the library
    core stays dependency-free.
    """
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must lie in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    fraction = rank - low
    interpolated = ordered[low] * (1.0 - fraction) + ordered[high] * fraction
    # Clamp away 1-ulp interpolation drift: the result is a convex
    # combination and must lie between its two anchors.
    return min(max(interpolated, ordered[low]), ordered[high])


@dataclass(frozen=True)
class SummaryStats:
    """Five-number-style summary of a sample."""

    count: int
    minimum: float
    median: float
    p95: float
    maximum: float
    mean: float

    def render(self) -> str:
        """Compact ``min/med/p95/max`` cell for tables."""
        return (
            f"{self.minimum:g}/{self.median:g}/{self.p95:g}/{self.maximum:g}"
        )


def summarize(values: Iterable[float]) -> SummaryStats:
    """Summarize a non-empty sample."""
    sample = [float(v) for v in values]
    if not sample:
        raise ValueError("cannot summarize an empty sample")
    lowest = min(sample)
    highest = max(sample)
    # fsum/len can drift one ulp outside [min, max] for near-constant
    # samples; the mean of a sample always lies within its range.
    mean = min(max(math.fsum(sample) / len(sample), lowest), highest)
    return SummaryStats(
        count=len(sample),
        minimum=lowest,
        median=percentile(sample, 50.0),
        p95=percentile(sample, 95.0),
        maximum=highest,
        mean=mean,
    )

"""Analysis utilities: trace metrics, table and series rendering."""

from .metrics import ConvergenceStats, convergence_stats, rounds_until
from .series import Series, render_series, sparkline
from .stats import SummaryStats, percentile, summarize
from .tables import format_cell, render_table

__all__ = [
    "ConvergenceStats",
    "convergence_stats",
    "rounds_until",
    "Series",
    "render_series",
    "sparkline",
    "render_table",
    "format_cell",
    "SummaryStats",
    "summarize",
    "percentile",
]

"""Analysis utilities: trace metrics, table and series rendering."""

from .metrics import (
    ConvergenceStats,
    convergence_stats,
    first_round_within,
    rounds_until,
    trajectory_stats,
)
from .series import Series, render_series, sparkline
from .stats import SummaryStats, percentile, summarize
from .tables import format_cell, render_table

__all__ = [
    "ConvergenceStats",
    "convergence_stats",
    "trajectory_stats",
    "rounds_until",
    "first_round_within",
    "Series",
    "render_series",
    "sparkline",
    "render_table",
    "format_cell",
    "SummaryStats",
    "summarize",
    "percentile",
]

"""Trace metrics: diameters, contraction, rounds-to-epsilon.

Quantities the experiments report, computed from traces.  These mirror
the paper's Section 5.1 definitions (``rho``, ``delta``) applied to the
evolving set of non-faulty values.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..runtime.trace import Trace

__all__ = [
    "ConvergenceStats",
    "convergence_stats",
    "trajectory_stats",
    "rounds_until",
    "first_round_within",
]


@dataclass(frozen=True)
class ConvergenceStats:
    """Summary of one trace's convergence behaviour."""

    initial_diameter: float
    final_diameter: float
    rounds: int
    #: Largest per-round contraction factor observed (1.0 = no progress).
    worst_factor: float
    #: Geometric-mean contraction factor over shrinking rounds.
    mean_factor: float
    #: Diameter after each round, starting with the initial diameter.
    trajectory: tuple[float, ...]

    @property
    def converged(self) -> bool:
        """Whether the diameter ever shrank below the initial one."""
        return self.final_diameter < self.initial_diameter

    def stalled_from(self, tolerance: float = 1e-12) -> int | None:
        """First round index after which the diameter never changed.

        Returns ``None`` if the diameter kept moving until the end.
        Used by the lower-bound experiments to exhibit stalls.
        """
        series = self.trajectory
        if len(series) < 2:
            return None
        for start in range(len(series) - 1):
            window = series[start:]
            if all(abs(d - window[0]) <= tolerance for d in window):
                if window[0] > tolerance:
                    return start
                return None
        return None


def trajectory_stats(
    trajectory, rounds: int | None = None
) -> ConvergenceStats:
    """Convergence statistics from a diameter trajectory alone.

    The trajectory (initial diameter, then one entry per round) fully
    determines every statistic except the executed round count, which
    defaults to ``len(trajectory) - 1`` and can be overridden when the
    caller knows it (condensed sweep cells carry it explicitly).
    """
    trajectory = tuple(trajectory)
    if not trajectory:
        raise ValueError("trajectory must not be empty")
    factors = [
        after / before
        for before, after in zip(trajectory, trajectory[1:])
        if before > 0
    ]
    worst = max(factors, default=0.0)
    shrinking = [factor for factor in factors if 0.0 < factor]
    if shrinking:
        product = 1.0
        for factor in shrinking:
            product *= factor
        mean = product ** (1.0 / len(shrinking))
    else:
        mean = 0.0
    return ConvergenceStats(
        initial_diameter=trajectory[0],
        final_diameter=trajectory[-1],
        rounds=len(trajectory) - 1 if rounds is None else rounds,
        worst_factor=worst,
        mean_factor=mean,
        trajectory=trajectory,
    )


def convergence_stats(trace: Trace) -> ConvergenceStats:
    """Compute convergence statistics for a completed trace."""
    return trajectory_stats(trace.diameters(), rounds=trace.rounds_executed())


def rounds_until(trace: Trace, epsilon: float) -> int | None:
    """First round after which the non-faulty diameter is <= epsilon.

    Round 0 counts as 1 executed round; returns 0 when the initial
    values already agree, ``None`` when the trace never got there.
    """
    return first_round_within(trace.diameters(), epsilon)


def first_round_within(series, epsilon: float) -> int | None:
    """:func:`rounds_until` on a bare diameter trajectory."""
    for index, diameter in enumerate(series):
        if diameter <= epsilon:
            return index
    return None

"""Trace metrics: diameters, contraction, rounds-to-epsilon.

Quantities the experiments report, computed from traces.  These mirror
the paper's Section 5.1 definitions (``rho``, ``delta``) applied to the
evolving set of non-faulty values.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..runtime.trace import Trace

__all__ = ["ConvergenceStats", "convergence_stats", "rounds_until"]


@dataclass(frozen=True)
class ConvergenceStats:
    """Summary of one trace's convergence behaviour."""

    initial_diameter: float
    final_diameter: float
    rounds: int
    #: Largest per-round contraction factor observed (1.0 = no progress).
    worst_factor: float
    #: Geometric-mean contraction factor over shrinking rounds.
    mean_factor: float
    #: Diameter after each round, starting with the initial diameter.
    trajectory: tuple[float, ...]

    @property
    def converged(self) -> bool:
        """Whether the diameter ever shrank below the initial one."""
        return self.final_diameter < self.initial_diameter

    def stalled_from(self, tolerance: float = 1e-12) -> int | None:
        """First round index after which the diameter never changed.

        Returns ``None`` if the diameter kept moving until the end.
        Used by the lower-bound experiments to exhibit stalls.
        """
        series = self.trajectory
        if len(series) < 2:
            return None
        for start in range(len(series) - 1):
            window = series[start:]
            if all(abs(d - window[0]) <= tolerance for d in window):
                if window[0] > tolerance:
                    return start
                return None
        return None


def convergence_stats(trace: Trace) -> ConvergenceStats:
    """Compute convergence statistics for a completed trace."""
    trajectory = tuple(trace.diameters())
    factors = trace.contraction_factors()
    worst = max(factors, default=0.0)
    shrinking = [factor for factor in factors if 0.0 < factor]
    if shrinking:
        product = 1.0
        for factor in shrinking:
            product *= factor
        mean = product ** (1.0 / len(shrinking))
    else:
        mean = 0.0
    return ConvergenceStats(
        initial_diameter=trajectory[0],
        final_diameter=trajectory[-1],
        rounds=trace.rounds_executed(),
        worst_factor=worst,
        mean_factor=mean,
        trajectory=trajectory,
    )


def rounds_until(trace: Trace, epsilon: float) -> int | None:
    """First round after which the non-faulty diameter is <= epsilon.

    Round 0 counts as 1 executed round; returns 0 when the initial
    values already agree, ``None`` when the trace never got there.
    """
    series = trace.diameters()
    for index, diameter in enumerate(series):
        if diameter <= epsilon:
            return index
    return None

"""Series rendering: the "figures" of a terminal-based harness.

The paper contains no figures; the reproduction adds convergence
trajectories as its figure-equivalents (see EXPERIMENTS.md).  A
:class:`Series` is a labelled sequence of (x, y) points; the renderer
prints aligned columns plus a coarse log-scale ASCII sparkline so the
geometric decay is visible at a glance.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

__all__ = ["Series", "render_series", "sparkline"]

_SPARK_CHARS = " .:-=+*#%@"


@dataclass(frozen=True)
class Series:
    """One labelled data series, e.g. a diameter trajectory."""

    label: str
    values: tuple[float, ...]

    @classmethod
    def of(cls, label: str, values: Sequence[float]) -> "Series":
        return cls(label=label, values=tuple(float(v) for v in values))


def sparkline(values: Sequence[float], log_scale: bool = True) -> str:
    """A one-line ASCII rendering of a non-negative series.

    ``log_scale`` maps values by ``log10`` (clamped), which suits
    geometric convergence: straight decay means a constant contraction
    factor.
    """
    if not values:
        return ""
    floor = 1e-12
    if log_scale:
        transformed = [math.log10(max(v, floor)) for v in values]
    else:
        transformed = list(values)
    low = min(transformed)
    high = max(transformed)
    if high - low < 1e-15:
        return _SPARK_CHARS[-1] * len(values)
    scale = (len(_SPARK_CHARS) - 1) / (high - low)
    return "".join(
        _SPARK_CHARS[round((v - low) * scale)] for v in transformed
    )


def render_series(
    series_list: Sequence[Series],
    title: str | None = None,
    x_label: str = "round",
    max_points: int = 16,
) -> str:
    """Render several series as columns plus sparklines."""
    lines = []
    if title:
        lines.append(title)
    width = max((len(s.label) for s in series_list), default=5)
    for series in series_list:
        values = series.values
        shown = values[:max_points]
        cells = " ".join(f"{v:9.3g}" for v in shown)
        ellipsis = " ..." if len(values) > max_points else ""
        lines.append(
            f"{series.label.ljust(width)} | {sparkline(values)} | {cells}{ellipsis}"
        )
    lines.append(f"({x_label} 0..k; sparkline is log-scale)")
    return "\n".join(lines)

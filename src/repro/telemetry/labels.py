"""Structured parsing of backend dispatch labels.

Every backend records *how* a sweep actually ran in the free-text
``SweepResult.dispatch`` label (``"batched-parallel (forced)"``,
``"cross-run-shm(4 batches, max R=16, steals=1)"``, ...).  Tests and
the telemetry layer used to regex-scrape those strings ad hoc; this
module is the one place that knows the grammar.  ``parse_dispatch_label``
round-trips every label the backends can emit into a
:class:`DispatchRecord` and raises ``ValueError`` on anything it does
not recognise, so a new label format fails loudly in the test suite
instead of silently falling through a regex.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

__all__ = ["DispatchRecord", "parse_dispatch_label"]


@dataclass(frozen=True)
class DispatchRecord:
    """Structured view of a dispatch label.

    ``mode`` is ``"serial"``, ``"parallel"``, or ``"merge"``;
    ``rung`` records the shm fallback ladder (``"shm"`` / ``"pickle"``)
    for pooled cross-run dispatches and is ``None`` otherwise.
    """

    raw: str
    mode: str
    pooled: bool = False
    batched: bool = False
    asynchronous: bool = False
    cross_run: bool = False
    sharded: bool = False
    forced: bool = False
    fallback: bool = False
    rung: str | None = None
    batches: int | None = None
    max_r: int | None = None
    steals: int | None = None
    workers: int | None = None
    usable_cpus: int | None = None
    inner: "DispatchRecord | None" = field(default=None, repr=False)


_PLAIN = re.compile(
    r"^(?P<batched>batched-)?(?P<mode>serial|parallel)"
    r"(?: \((?P<qualifier>[^)]*)\))?$"
)
_FORCED_CPU = re.compile(r"^forced on (?P<cpus>\d+) usable cpu$")
_FALLBACK = re.compile(
    r"^auto-fallback: (?P<workers>\d+) workers on (?P<cpus>\d+) usable cpu$"
)
_CROSS_RUN = re.compile(
    r"^cross-run\((?P<batches>\d+) batches, max R=(?P<max_r>\d+)"
    r"(?P<parallel>, parallel)?\)$"
)
_CROSS_RUN_RUNG = re.compile(
    r"^cross-run-(?P<rung>shm|pickle)\((?P<batches>\d+) batches, "
    r"max R=(?P<max_r>\d+), steals=(?P<steals>\d+)\)$"
)
_SHARDED = re.compile(r"^sharded\((?P<inner>.*)\)$")


def parse_dispatch_label(label: str) -> DispatchRecord:
    """Parse a backend dispatch label into a :class:`DispatchRecord`.

    Raises ``ValueError`` if the label doesn't match any known format.
    """
    if not isinstance(label, str) or not label:
        raise ValueError(f"not a dispatch label: {label!r}")

    if label == "sharded-merge":
        return DispatchRecord(raw=label, mode="merge", sharded=True)

    match = _SHARDED.match(label)
    if match is not None:
        inner = parse_dispatch_label(match.group("inner"))
        return DispatchRecord(
            raw=label,
            mode=inner.mode,
            pooled=inner.pooled,
            batched=inner.batched,
            asynchronous=inner.asynchronous,
            cross_run=inner.cross_run,
            sharded=True,
            forced=inner.forced,
            fallback=inner.fallback,
            rung=inner.rung,
            batches=inner.batches,
            max_r=inner.max_r,
            steals=inner.steals,
            workers=inner.workers,
            usable_cpus=inner.usable_cpus,
            inner=inner,
        )

    if label.startswith("async-"):
        inner = parse_dispatch_label(label[len("async-"):])
        return DispatchRecord(
            raw=label,
            mode=inner.mode,
            pooled=inner.pooled,
            batched=inner.batched,
            asynchronous=True,
            cross_run=inner.cross_run,
            forced=inner.forced,
            fallback=inner.fallback,
            rung=inner.rung,
            batches=inner.batches,
            max_r=inner.max_r,
            steals=inner.steals,
            workers=inner.workers,
            usable_cpus=inner.usable_cpus,
            inner=inner,
        )

    match = _CROSS_RUN_RUNG.match(label)
    if match is not None:
        return DispatchRecord(
            raw=label,
            mode="parallel",
            pooled=True,
            cross_run=True,
            rung=match.group("rung"),
            batches=int(match.group("batches")),
            max_r=int(match.group("max_r")),
            steals=int(match.group("steals")),
        )

    match = _CROSS_RUN.match(label)
    if match is not None:
        pooled = match.group("parallel") is not None
        return DispatchRecord(
            raw=label,
            mode="parallel" if pooled else "serial",
            pooled=pooled,
            cross_run=True,
            batches=int(match.group("batches")),
            max_r=int(match.group("max_r")),
        )

    match = _PLAIN.match(label)
    if match is not None:
        mode = match.group("mode")
        batched = match.group("batched") is not None
        qualifier = match.group("qualifier")
        forced = False
        fallback = False
        workers = None
        cpus = None
        if qualifier is not None:
            if qualifier == "forced":
                forced = True
            else:
                forced_cpu = _FORCED_CPU.match(qualifier)
                auto = _FALLBACK.match(qualifier)
                if forced_cpu is not None:
                    forced = True
                    cpus = int(forced_cpu.group("cpus"))
                elif auto is not None:
                    fallback = True
                    workers = int(auto.group("workers"))
                    cpus = int(auto.group("cpus"))
                else:
                    raise ValueError(
                        f"unknown dispatch qualifier {qualifier!r} "
                        f"in label {label!r}"
                    )
        return DispatchRecord(
            raw=label,
            mode=mode,
            pooled=(mode == "parallel"),
            batched=batched,
            forced=forced,
            fallback=fallback,
            workers=workers,
            usable_cpus=cpus,
        )

    raise ValueError(f"unknown dispatch label: {label!r}")

"""Human-readable rendering of a telemetry directory (``sweep stats``).

A telemetry directory produced by ``sweep --telemetry DIR`` holds:

* ``trace-<pid>.jsonl`` — one JSON-lines trace file per participating
  process (parent + pool workers), one line per completed span or
  point event;
* ``flight-<pid>-<seq>.jsonl`` — flight-recorder dumps (the ring
  buffer tail preceding an error cell or sweep failure);
* ``metrics.json`` — the parent's merged metrics snapshot for the run
  (counters, gauges, fixed-edge histograms), delta-scoped to the sweep.

``render_stats`` turns all of that into the ASCII summary printed by
``python -m repro.experiments sweep stats DIR``.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..analysis.tables import render_table

__all__ = [
    "load_metrics",
    "load_trace_events",
    "render_stats",
    "span_children",
    "span_rollup",
]


def load_trace_events(directory) -> list[dict]:
    """All events from every ``trace-*.jsonl`` file, timestamp-sorted."""
    events: list[dict] = []
    for path in sorted(Path(directory).glob("trace-*.jsonl")):
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if line:
                    events.append(json.loads(line))
    events.sort(key=lambda e: e.get("ts", 0.0))
    return events


def load_metrics(directory) -> dict:
    path = Path(directory) / "metrics.json"
    if not path.exists():
        return {"counters": {}, "gauges": {}, "histograms": {}}
    with open(path) as fh:
        return json.load(fh)


def span_rollup(events: list[dict]) -> dict[str, dict]:
    """Per-span-name aggregate: count, total/mean/max duration."""
    rollup: dict[str, dict] = {}
    for event in events:
        if event.get("event") != "span":
            continue
        entry = rollup.setdefault(
            event["name"], {"count": 0, "total": 0.0, "max": 0.0}
        )
        entry["count"] += 1
        duration = float(event.get("dur", 0.0))
        entry["total"] += duration
        entry["max"] = max(entry["max"], duration)
    for entry in rollup.values():
        entry["mean"] = entry["total"] / entry["count"] if entry["count"] else 0.0
    return rollup


def span_children(events: list[dict]) -> set[tuple[str | None, str]]:
    """The observed (parent span name, child span name) edges."""
    names = {
        event["id"]: event["name"]
        for event in events
        if event.get("event") == "span"
    }
    edges = set()
    for event in events:
        if event.get("event") != "span":
            continue
        parent = event.get("parent")
        edges.add((names.get(parent), event["name"]))
    return edges


def _histogram_row(name: str, data: dict) -> list:
    count = int(data.get("count", 0))
    total = float(data.get("sum", 0.0))
    mean = total / count if count else 0.0
    edges = data.get("edges", [])
    counts = data.get("counts", [])
    # The highest non-empty bucket's upper edge is a cheap p100 proxy.
    ceiling = "inf"
    for index in range(len(counts) - 1, -1, -1):
        if counts[index]:
            ceiling = "inf" if index >= len(edges) else f"<={edges[index]:g}"
            break
    return [name, count, total, mean, ceiling]


def render_stats(directory) -> str:
    """Render the full ``sweep stats`` report for a telemetry dir."""
    directory = Path(directory)
    events = load_trace_events(directory)
    metrics = load_metrics(directory)
    sections: list[str] = [f"telemetry: {directory}"]

    counters = metrics.get("counters", {})
    if counters:
        sections.append(
            render_table(
                ["counter", "value"],
                [[name, counters[name]] for name in sorted(counters)],
                title="counters",
            )
        )
    gauges = metrics.get("gauges", {})
    if gauges:
        sections.append(
            render_table(
                ["gauge", "value"],
                [[name, gauges[name]] for name in sorted(gauges)],
                title="gauges",
            )
        )
    histograms = metrics.get("histograms", {})
    if histograms:
        sections.append(
            render_table(
                ["histogram", "count", "sum", "mean", "ceiling"],
                [
                    _histogram_row(name, histograms[name])
                    for name in sorted(histograms)
                ],
                title="histograms",
            )
        )

    rollup = span_rollup(events)
    if rollup:
        sections.append(
            render_table(
                ["span", "count", "total s", "mean s", "max s"],
                [
                    [
                        name,
                        rollup[name]["count"],
                        rollup[name]["total"],
                        rollup[name]["mean"],
                        rollup[name]["max"],
                    ]
                    for name in sorted(rollup)
                ],
                title=f"spans ({len(events)} trace events)",
            )
        )
    else:
        sections.append("spans: no trace events found")

    dumps = sorted(directory.glob("flight-*.jsonl"))
    if dumps:
        lines = ["flight dumps:"]
        for path in dumps:
            with open(path) as fh:
                header = json.loads(fh.readline())
            lines.append(
                f"  {path.name}: reason={header.get('reason')} "
                f"events={header.get('events')}"
            )
        sections.append("\n".join(lines))

    return "\n\n".join(sections)

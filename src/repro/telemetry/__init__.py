"""Zero-dependency observability for the sweep/runtime stack.

Two halves with different costs and defaults:

* **Metrics** (:mod:`repro.telemetry.metrics`) — a process-wide
  registry of counters, gauges, and fixed-edge histograms.  On by
  default; parent-side code records at cell granularity and workers
  ship their cell-scoped measurements back through the result channel
  (``CellResult.metrics``, compare-excluded) for the parent to merge.

* **Tracing** (:mod:`repro.telemetry.tracing`) — span-based JSON-lines
  traces, a flight-recorder ring buffer, and sampled kernel timers.
  Opt-in per run via ``sweep --telemetry DIR`` /
  ``run_sweep(telemetry=...)``; the disabled path of ``trace_span`` is
  a module-global lookup and return.

:mod:`repro.telemetry.labels` parses backend dispatch labels into
structured records, and :mod:`repro.telemetry.stats` renders a
telemetry directory for ``sweep stats``.
"""

from .labels import DispatchRecord, parse_dispatch_label
from .metrics import (
    DEFAULT_LATENCY_EDGES,
    DEFAULT_SIZE_EDGES,
    Histogram,
    MetricsRegistry,
    count,
    get_registry,
    metrics_enabled,
    observe,
    set_gauge,
    set_metrics_enabled,
    snapshot_delta,
)
from .stats import (
    load_metrics,
    load_trace_events,
    render_stats,
    span_children,
    span_rollup,
)
from .tracing import (
    KernelSampler,
    TelemetryConfig,
    activate,
    configure,
    current_config,
    deactivate,
    dump_flight,
    record_event,
    trace_span,
    tracing_active,
)

__all__ = [
    "DEFAULT_LATENCY_EDGES",
    "DEFAULT_SIZE_EDGES",
    "DispatchRecord",
    "Histogram",
    "KernelSampler",
    "MetricsRegistry",
    "TelemetryConfig",
    "activate",
    "configure",
    "count",
    "current_config",
    "deactivate",
    "dump_flight",
    "get_registry",
    "load_metrics",
    "load_trace_events",
    "metrics_enabled",
    "observe",
    "parse_dispatch_label",
    "record_event",
    "render_stats",
    "set_gauge",
    "set_metrics_enabled",
    "snapshot_delta",
    "span_children",
    "span_rollup",
    "trace_span",
    "tracing_active",
]

"""Span-based tracing, JSON-lines sinks, and the flight recorder.

Tracing is the opt-in half of the telemetry layer.  A *session* is
activated by ``sweep --telemetry DIR`` (or ``run_sweep(telemetry=...)``)
and owns three things:

* a JSON-lines trace sink: one ``trace-<pid>.jsonl`` file per process,
  lazily (re)opened whenever the pid changes so fork- and spawn-started
  pool workers each append to their own file with no cross-process
  locking;
* a **flight recorder**: a bounded ring buffer of the most recent
  spans/events, dumped to ``flight-<pid>-<seq>.jsonl`` when an error
  cell is produced or a sweep dies, so the tail of the story survives
  the crash;
* the sampling switch for the per-round kernel timers
  (:class:`KernelSampler`).

When no session is active, ``trace_span`` returns a module-singleton
no-op context manager — a dict lookup and a return — so the disabled
path costs nothing measurable in the hot loops.

``TelemetryConfig`` is a small frozen dataclass and pickles cleanly, so
the engine threads it through the same ``functools.partial`` runners the
backends already ship to workers; each worker activates its own session
on first use.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path

from .metrics import count

__all__ = [
    "KernelSampler",
    "TelemetryConfig",
    "activate",
    "configure",
    "current_config",
    "deactivate",
    "dump_flight",
    "record_event",
    "trace_span",
    "tracing_active",
]


@dataclass(frozen=True)
class TelemetryConfig:
    """Picklable description of a tracing session.

    ``sample_every``: sample 1 of every N kernel phase calls for timing.
    ``flight_capacity``: ring-buffer depth of the flight recorder.
    """

    directory: str
    sample_every: int = 32
    flight_capacity: int = 256


class Span:
    """A single traced region.  ``set()`` attaches attributes that land
    in the emitted JSON event; it is a no-op on the disabled path."""

    __slots__ = ("name", "span_id", "parent_id", "attrs", "_start", "_wall")

    def __init__(self, name: str, span_id: str, parent_id: str | None, attrs: dict):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self._start = 0.0
        self._wall = 0.0

    def set(self, key: str, value) -> None:
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        session = _SESSION
        if session is not None:
            session.push(self)
        self._wall = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self._start
        session = _SESSION
        if session is None:
            return
        session.pop(self)
        event = {
            "event": "span",
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "ts": self._wall,
            "dur": duration,
        }
        if exc_type is not None:
            event["error"] = exc_type.__name__
        if self.attrs:
            event["attrs"] = self.attrs
        session.emit(event)


class _NullSpan:
    """Singleton returned when tracing is off — every method is a no-op."""

    __slots__ = ()

    def set(self, key: str, value) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _Session:
    """Live tracing state for one process (file handle, span stack,
    flight recorder).  Forked children inherit the object but reopen
    their own sink on first emit because the pid no longer matches."""

    def __init__(self, config: TelemetryConfig):
        self.config = config
        self.directory = Path(config.directory)
        self._pid = -1
        self._sink = None
        self._lock = threading.Lock()
        self._local = threading.local()
        self._span_seq = itertools.count(1)
        self._flight_seq = itertools.count(1)
        self.flight: deque = deque(maxlen=max(config.flight_capacity, 1))

    # -- span stack (per thread) ------------------------------------
    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def next_span_id(self) -> str:
        return f"{os.getpid():x}-{next(self._span_seq)}"

    def current_span_id(self) -> str | None:
        stack = self._stack()
        return stack[-1].span_id if stack else None

    def push(self, span: Span) -> None:
        self._stack().append(span)
        self.flight.append(
            {"event": "span_start", "name": span.name, "id": span.span_id,
             "parent": span.parent_id, "ts": time.time()}
        )

    def pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # unwound out of order (generator misuse)
            stack.remove(span)

    # -- sinks ------------------------------------------------------
    def _ensure_sink(self):
        pid = os.getpid()
        if self._sink is None or pid != self._pid:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._sink = open(self.directory / f"trace-{pid}.jsonl", "a")
            self._pid = pid
        return self._sink

    def emit(self, event: dict) -> None:
        line = json.dumps(event, default=str)
        with self._lock:
            self.flight.append(event)
            sink = self._ensure_sink()
            sink.write(line + "\n")
            sink.flush()

    def dump_flight(self, reason: str) -> Path:
        with self._lock:
            events = list(self.flight)
            seq = next(self._flight_seq)
            self.directory.mkdir(parents=True, exist_ok=True)
            path = self.directory / f"flight-{os.getpid()}-{seq}.jsonl"
            with open(path, "w") as fh:
                fh.write(json.dumps(
                    {"event": "flight_dump", "reason": reason,
                     "ts": time.time(), "events": len(events)}) + "\n")
                for event in events:
                    fh.write(json.dumps(event, default=str) + "\n")
        count("telemetry.flight_dumps")
        return path

    def close(self) -> None:
        with self._lock:
            if self._sink is not None and self._pid == os.getpid():
                self._sink.close()
            self._sink = None
            self._pid = -1


_SESSION: _Session | None = None


def configure(
    directory,
    sample_every: int = 32,
    flight_capacity: int = 256,
) -> TelemetryConfig:
    """Create and activate a tracing session; returns the picklable
    config to thread through worker runners."""
    config = TelemetryConfig(
        directory=str(directory),
        sample_every=sample_every,
        flight_capacity=flight_capacity,
    )
    activate(config)
    return config


def activate(config: TelemetryConfig) -> bool:
    """Activate a session for ``config``.  Returns True if this call
    created the session (the caller then owns deactivation); False if a
    matching session was already live (e.g. a forked worker inheriting
    the parent's, or repeat activation in one process)."""
    global _SESSION
    if _SESSION is not None and _SESSION.config == config:
        return False
    if _SESSION is not None:
        _SESSION.close()
    _SESSION = _Session(config)
    return True


def deactivate() -> None:
    global _SESSION
    if _SESSION is not None:
        _SESSION.close()
        _SESSION = None


def tracing_active() -> bool:
    return _SESSION is not None


def current_config() -> TelemetryConfig | None:
    return _SESSION.config if _SESSION is not None else None


def trace_span(name: str, **attrs):
    """Open a traced region.  With no active session this returns a
    shared no-op context manager — the documented cheap disabled path."""
    session = _SESSION
    if session is None:
        return _NULL_SPAN
    return Span(name, session.next_span_id(), session.current_span_id(), attrs)


def record_event(name: str, **attrs) -> None:
    """Emit a point event (no duration) into the trace + flight ring."""
    session = _SESSION
    if session is None:
        return
    event = {"event": name, "ts": time.time()}
    parent = session.current_span_id()
    if parent is not None:
        event["parent"] = parent
    if attrs:
        event["attrs"] = attrs
    session.emit(event)


def dump_flight(reason: str) -> Path | None:
    """Dump the flight-recorder ring to disk; no-op when tracing is off."""
    session = _SESSION
    if session is None:
        return None
    return session.dump_flight(reason)


class KernelSampler:
    """Samples 1-in-N kernel phase calls for wall-clock timing.

    The kernel's disabled path is ``self.telemetry is None`` — a slot
    read — so unsampled processes pay nothing.  ``drain()`` returns the
    accumulated flat metrics and resets, which is how per-cell deltas
    are produced: the engine drains after each cell and attaches the
    result to ``CellResult.metrics`` for the parent to merge.
    """

    __slots__ = ("every", "_calls", "_sampled", "_seconds")

    def __init__(self, every: int = 32):
        self.every = max(int(every), 1)
        self._calls: dict[str, int] = {}
        self._sampled: dict[str, int] = {}
        self._seconds: dict[str, float] = {}

    def tick(self, path: str) -> bool:
        calls = self._calls.get(path, 0) + 1
        self._calls[path] = calls
        return calls % self.every == 1 or self.every == 1

    def record(self, path: str, seconds: float) -> None:
        self._sampled[path] = self._sampled.get(path, 0) + 1
        self._seconds[path] = self._seconds.get(path, 0.0) + seconds

    def drain(self) -> tuple[tuple[str, float], ...]:
        out = []
        for path in sorted(self._calls):
            out.append((f"kernel.{path}.calls", float(self._calls[path])))
            if path in self._sampled:
                out.append((f"kernel.{path}.sampled", float(self._sampled[path])))
                out.append((f"kernel.{path}.seconds", self._seconds[path]))
        self._calls.clear()
        self._sampled.clear()
        self._seconds.clear()
        return tuple(out)

"""Process-wide metrics registry: counters, gauges, and histograms.

The registry is deliberately tiny and dependency-free.  It is the
always-on half of the telemetry layer: parent-side code (the sweep
engine, the backends, the serve daemon) increments counters at cell
granularity, which is cheap enough to leave enabled everywhere.  The
disabled path is a single attribute check followed by a return, so the
hot loops keep their throughput floors.

Histograms use *fixed* bucket edges chosen at observation time.  Two
histograms recorded against the same metric name therefore always have
identical edges, which makes merging worker snapshots into the parent a
deterministic element-wise sum — no bucket rebalancing, no
order-dependence.

Worker processes never write to the parent registry directly.  Cell
scoped measurements (kernel timings under sampling, stacked-run counts)
travel back through the existing result channel as the compare-excluded
``CellResult.metrics`` tuple and are merged by the parent in its
``on_result`` callback, so serial, pool, and shared-memory execution all
produce the same ledger.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from dataclasses import dataclass, field

__all__ = [
    "DEFAULT_LATENCY_EDGES",
    "DEFAULT_SIZE_EDGES",
    "Histogram",
    "MetricsRegistry",
    "count",
    "get_registry",
    "metrics_enabled",
    "observe",
    "set_gauge",
    "set_metrics_enabled",
    "snapshot_delta",
]

# Seconds.  Covers everything from a sub-millisecond lite cell to a
# multi-second stacked group without per-call edge construction.
DEFAULT_LATENCY_EDGES: tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

# Counts (chunk sizes, rounds, batch widths): powers of two.
DEFAULT_SIZE_EDGES: tuple[float, ...] = (
    1.0,
    2.0,
    4.0,
    8.0,
    16.0,
    32.0,
    64.0,
    128.0,
    256.0,
    512.0,
    1024.0,
)


@dataclass
class Histogram:
    """Fixed-edge histogram.  Bucket ``i`` counts values ``<= edges[i]``;
    the final bucket is the overflow bucket."""

    edges: tuple[float, ...]
    counts: list[int] = field(default_factory=list)
    total: float = 0.0
    samples: int = 0

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.edges) + 1)

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.edges, value)] += 1
        self.total += value
        self.samples += 1

    def to_dict(self) -> dict:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.samples,
        }

    def merge_dict(self, payload: dict) -> None:
        edges = tuple(payload.get("edges", ()))
        if edges != self.edges:
            raise ValueError(
                f"histogram edge mismatch: {edges!r} vs {self.edges!r}"
            )
        for i, c in enumerate(payload.get("counts", ())):
            self.counts[i] += int(c)
        self.total += float(payload.get("sum", 0.0))
        self.samples += int(payload.get("count", 0))


class MetricsRegistry:
    """Thread-safe bag of named counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    def inc(self, name: str, value: float = 1.0) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def observe(
        self,
        name: str,
        value: float,
        edges: tuple[float, ...] = DEFAULT_LATENCY_EDGES,
    ) -> None:
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram(edges)
            hist.observe(value)

    def counter_value(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0.0)

    def snapshot(self) -> dict:
        """JSON-serializable view: deterministically key-sorted."""
        with self._lock:
            return {
                "counters": {k: self._counters[k] for k in sorted(self._counters)},
                "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
                "histograms": {
                    k: self._histograms[k].to_dict()
                    for k in sorted(self._histograms)
                },
            }

    def merge(self, payload: dict) -> None:
        """Fold another snapshot (e.g. from a worker or a peer server)
        into this registry.  Counters and histograms add; gauges take
        the incoming value."""
        with self._lock:
            for name, value in payload.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0.0) + value
            for name, value in payload.get("gauges", {}).items():
                self._gauges[name] = value
            for name, data in payload.get("histograms", {}).items():
                hist = self._histograms.get(name)
                if hist is None:
                    hist = self._histograms[name] = Histogram(
                        tuple(data.get("edges", ()))
                    )
                hist.merge_dict(data)

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


def snapshot_delta(before: dict, after: dict) -> dict:
    """What happened between two ``snapshot()`` calls on one registry.

    Counters and histogram counts subtract; gauges report the ``after``
    value.  Zero-delta entries are dropped so the result reads as "what
    this sweep did" rather than process-lifetime totals.
    """
    counters = {}
    for name, value in after.get("counters", {}).items():
        delta = value - before.get("counters", {}).get(name, 0.0)
        if delta:
            counters[name] = delta
    histograms = {}
    for name, data in after.get("histograms", {}).items():
        prev = before.get("histograms", {}).get(name)
        if prev is None:
            if data.get("count", 0):
                histograms[name] = data
            continue
        counts = [c - p for c, p in zip(data["counts"], prev["counts"])]
        count_delta = data["count"] - prev["count"]
        if count_delta:
            histograms[name] = {
                "edges": data["edges"],
                "counts": counts,
                "sum": data["sum"] - prev["sum"],
                "count": count_delta,
            }
    return {
        "counters": counters,
        "gauges": dict(after.get("gauges", {})),
        "histograms": histograms,
    }


_REGISTRY = MetricsRegistry()
_ENABLED = True


def get_registry() -> MetricsRegistry:
    return _REGISTRY


def metrics_enabled() -> bool:
    return _ENABLED


def set_metrics_enabled(flag: bool) -> bool:
    """Toggle the cheap always-on counters; returns the previous state."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(flag)
    return previous


def count(name: str, value: float = 1.0) -> None:
    if not _ENABLED:
        return
    _REGISTRY.inc(name, value)


def set_gauge(name: str, value: float) -> None:
    if not _ENABLED:
        return
    _REGISTRY.gauge(name, value)


def observe(
    name: str,
    value: float,
    edges: tuple[float, ...] = DEFAULT_LATENCY_EDGES,
) -> None:
    if not _ENABLED:
        return
    _REGISTRY.observe(name, value, edges)

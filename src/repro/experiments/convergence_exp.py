"""EXP-F1: convergence trajectories (the reproduction's "figure").

The paper proves geometric convergence (Lemmas 6-7) but, being a theory
paper, plots nothing.  This experiment produces the figure a systems
paper would show: the non-faulty diameter per round, for every model
and algorithm, against the worst-case contraction predicted by
:mod:`repro.core.convergence`.  Measured per-round factors must never
exceed the prediction.
"""

from __future__ import annotations

from ..analysis.metrics import convergence_stats, rounds_until
from ..analysis.series import Series, render_series
from ..api import mobile_config
from ..core.convergence import mobile_contraction
from ..faults.models import ALL_MODELS, get_semantics
from ..msr.registry import DEFAULT_ALGORITHMS, make_algorithm
from ..core.mapping import msr_trim_parameter
from ..runtime.simulator import run_simulation
from .base import ExperimentResult

__all__ = ["run_convergence"]


def run_convergence(
    f: int = 1,
    rounds: int = 20,
    algorithms: tuple[str, ...] = DEFAULT_ALGORITHMS,
    epsilon: float = 1e-3,
) -> ExperimentResult:
    """Measure convergence trajectories for every model and algorithm."""
    result = ExperimentResult(
        exp_id="EXP-F1",
        title=f"Convergence trajectories under worst-case adversaries (f={f})",
        headers=[
            "model",
            "n",
            "algorithm",
            "predicted factor",
            "worst measured",
            "within bound",
            f"rounds to eps={epsilon:g}",
        ],
    )
    series_blocks: list[Series] = []
    for model in ALL_MODELS:
        semantics = get_semantics(model)
        n = semantics.required_n(f)
        for name in algorithms:
            function = make_algorithm(name, msr_trim_parameter(model, f))
            predicted = mobile_contraction(function, model, n, f)
            worst_measured = 0.0
            trajectory = None
            reach = None
            for movement in ("round-robin", "target-extremes", "static"):
                config = mobile_config(
                    model=model,
                    f=f,
                    n=n,
                    algorithm=make_algorithm(name, msr_trim_parameter(model, f)),
                    movement=movement,
                    attack="split",
                    rounds=rounds,
                    seed=5,
                )
                trace = run_simulation(config)
                stats = convergence_stats(trace)
                if stats.worst_factor >= worst_measured:
                    worst_measured = stats.worst_factor
                    trajectory = stats.trajectory
                    reach = rounds_until(trace, epsilon)
            within = worst_measured <= predicted.factor + 1e-9
            if not within:
                result.fail(
                    f"{model.value}/{name}: measured factor {worst_measured:.4g} "
                    f"exceeds predicted {predicted.factor:.4g}"
                )
            result.add_row(
                model.value,
                n,
                function.name,
                predicted.factor,
                worst_measured,
                within,
                reach if reach is not None else f">{rounds}",
            )
            if trajectory is not None:
                series_blocks.append(
                    Series.of(f"{model.value}/{name}", trajectory)
                )
    result.extra_blocks.append(
        render_series(
            series_blocks,
            title="diameter per round (worst movement per cell):",
        )
    )
    result.add_note(
        "predicted factors: FTM 1/2; FTA a/M; Dolev 1/ceil(M/step) -- see "
        "repro.core.convergence for derivations"
    )
    return result

"""EXP-F1: convergence trajectories (the reproduction's "figure").

The paper proves geometric convergence (Lemmas 6-7) but, being a theory
paper, plots nothing.  This experiment produces the figure a systems
paper would show: the non-faulty diameter per round, for every model
and algorithm, against the worst-case contraction predicted by
:mod:`repro.core.convergence`.  Measured per-round factors must never
exceed the prediction.

The model x algorithm x movement family is declared as a
:class:`~repro.sweep.GridSpec` and executed through
:func:`repro.sweep.run_sweep` on the trace-lite fast path (diameter
trajectories are bit-identical to full traces), inheriting parallelism
and caching.
"""

from __future__ import annotations

from ..analysis.metrics import first_round_within, trajectory_stats
from ..analysis.series import Series, render_series
from ..core.convergence import mobile_contraction
from ..core.mapping import msr_trim_parameter
from ..faults.models import ALL_MODELS, get_semantics
from ..msr.registry import DEFAULT_ALGORITHMS, make_algorithm
from ..sweep import CellSpec, GridSpec, run_sweep
from .base import ExperimentResult

__all__ = ["run_convergence"]

_MOVEMENTS = ("round-robin", "target-extremes", "static")


def run_convergence(
    f: int = 1,
    rounds: int = 20,
    algorithms: tuple[str, ...] = DEFAULT_ALGORITHMS,
    epsilon: float = 1e-3,
    workers: int = 1,
    cache=None,
) -> ExperimentResult:
    """Measure convergence trajectories for every model and algorithm."""
    result = ExperimentResult(
        exp_id="EXP-F1",
        title=f"Convergence trajectories under worst-case adversaries (f={f})",
        headers=[
            "model",
            "n",
            "algorithm",
            "predicted factor",
            "worst measured",
            "within bound",
            f"rounds to eps={epsilon:g}",
        ],
    )
    grid = GridSpec(
        models=tuple(model.value for model in ALL_MODELS),
        fs=f,
        ns=None,
        algorithms=tuple(algorithms),
        movements=_MOVEMENTS,
        attacks="split",
        seeds=(5,),
        rounds=rounds,
    )
    by_key = run_sweep(grid, workers=workers, cache=cache).by_key()
    series_blocks: list[Series] = []
    for model in ALL_MODELS:
        semantics = get_semantics(model)
        n = semantics.required_n(f)
        for name in algorithms:
            function = make_algorithm(name, msr_trim_parameter(model, f))
            predicted = mobile_contraction(function, model, n, f)
            worst_measured = 0.0
            trajectory = None
            reach = None
            for movement in _MOVEMENTS:
                cell = by_key[
                    CellSpec(
                        model=model.value,
                        f=f,
                        n=None,
                        algorithm=name,
                        movement=movement,
                        attack="split",
                        epsilon=1e-3,
                        seed=5,
                        rounds=rounds,
                    ).key
                ]
                stats = trajectory_stats(cell.diameters, rounds=cell.rounds)
                if stats.worst_factor >= worst_measured:
                    worst_measured = stats.worst_factor
                    trajectory = stats.trajectory
                    reach = first_round_within(cell.diameters, epsilon)
            within = worst_measured <= predicted.factor + 1e-9
            if not within:
                result.fail(
                    f"{model.value}/{name}: measured factor {worst_measured:.4g} "
                    f"exceeds predicted {predicted.factor:.4g}"
                )
            result.add_row(
                model.value,
                n,
                function.name,
                predicted.factor,
                worst_measured,
                within,
                reach if reach is not None else f">{rounds}",
            )
            if trajectory is not None:
                series_blocks.append(
                    Series.of(f"{model.value}/{name}", trajectory)
                )
    result.extra_blocks.append(
        render_series(
            series_blocks,
            title="diameter per round (worst movement per cell):",
        )
    )
    result.add_note(
        "predicted factors: FTM 1/2; FTA a/M; Dolev 1/ceil(M/step) -- see "
        "repro.core.convergence for derivations"
    )
    return result

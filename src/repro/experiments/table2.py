"""EXP-T2: reproduce paper Table 2 (replica requirements), both sides.

Three pieces of evidence per model:

* **derivation** -- the bound is recomputed from the Table 1 mapping via
  ``n > 3a + 2s + b`` (no hard-coding; see
  :func:`repro.core.bounds.table2_rows`);
* **sufficiency** -- at ``n = n_Mi`` (the minimum satisfying the bound)
  the paper's algorithms converge and meet the full specification under
  an adversary grid;
* **necessity** -- at ``n = n_Mi - 1`` (i.e. ``n = coefficient*f``) the
  sustained stall adversary freezes the diameter of every MSR instance,
  and the E1/E2/E3 triple shows *no* algorithm can succeed.

The sufficiency grid and the stall runs are declared as one sweep
(``ns=None`` resolves each model's Table 2 minimum; the stall runs are
``scenario="stall"`` cells) and executed through
:func:`repro.sweep.run_sweep`, inheriting parallelism and caching.
"""

from __future__ import annotations

from ..analysis.metrics import trajectory_stats
from ..core.bounds import required_processes, table2_rows
from ..core.lower_bounds import lower_bound_scenario
from ..faults.models import get_semantics
from ..msr.registry import DEFAULT_ALGORITHMS
from ..sweep import CellSpec, GridSpec, run_sweep
from .base import ExperimentResult

__all__ = ["run_table2"]

_MOVEMENTS = ("static", "round-robin", "random", "target-extremes")
_ATTACKS = ("split", "outlier", "noise")


def _sufficiency_cell(model, f, algorithm, movement, attack, seed) -> CellSpec:
    return CellSpec(
        model=model.value,
        f=f,
        n=None,
        algorithm=algorithm,
        movement=movement,
        attack=attack,
        epsilon=1e-3,
        seed=seed,
        max_rounds=200,
    )


def _stall_cell(model, f: int, algorithm: str) -> CellSpec:
    return CellSpec(
        model=model.value,
        f=f,
        n=None,
        algorithm=algorithm,
        movement="alternating-pools",
        attack="split",
        epsilon=1e-3,
        seed=0,
        rounds=20,
        scenario="stall",
    )


def run_table2(
    f: int = 1,
    seeds: tuple[int, ...] = (0, 1),
    algorithms: tuple[str, ...] = DEFAULT_ALGORITHMS,
    workers: int = 1,
    cache=None,
) -> ExperimentResult:
    """Run the Table 2 reproduction for a given ``f``."""
    result = ExperimentResult(
        exp_id="EXP-T2",
        title=f"Table 2 -- required replicas per model (f={f})",
        headers=[
            "model",
            "mixed-mode image",
            "derived bound",
            "paper bound",
            "spec holds at n_Mi",
            "MSR stalls at n_Mi - 1",
            "impossible at n_Mi - 1",
        ],
    )
    rows = table2_rows(f)
    grid = GridSpec(
        models=tuple(row.model.value for row in rows),
        fs=f,
        ns=None,
        algorithms=tuple(algorithms),
        movements=_MOVEMENTS,
        attacks=_ATTACKS,
        seeds=tuple(seeds),
        max_rounds=200,
    )
    cells = list(grid.cells()) + [
        _stall_cell(row.model, f, algorithm)
        for row in rows
        for algorithm in algorithms
    ]
    by_key = run_sweep(cells, workers=workers, cache=cache).by_key()

    for row in rows:
        semantics = get_semantics(row.model)
        min_n = semantics.required_n(f)

        sufficient = _verify_sufficiency(
            by_key, row.model, f, min_n, seeds, algorithms, result
        )
        stalls = _verify_stalls(by_key, row.model, f, algorithms, result)
        scenario = lower_bound_scenario(row.model, f)
        verification = scenario.verify()
        if not verification.proves_impossibility:
            result.fail(
                f"{row.model.value}: indistinguishability argument inconclusive"
            )

        result.add_row(
            row.model.value,
            str(row.image),
            f"n > {row.image.min_processes() - 1}",
            row.bound_text(),
            sufficient,
            stalls,
            verification.proves_impossibility,
        )
    result.add_note(
        "derived bound = 3a + 2s + b from the Table 1 image; 'spec holds' "
        "sweeps movements x attacks x seeds at the bound's minimum n; the "
        "stall adversary alternates agent pools to sustain |cured| = f"
    )
    return result


def _verify_sufficiency(
    by_key, model, f: int, n: int, seeds, algorithms, result: ExperimentResult
) -> bool:
    """All runs at the minimum sufficient ``n`` must satisfy the spec."""
    all_ok = True
    for algorithm in algorithms:
        for movement in _MOVEMENTS:
            for attack in _ATTACKS:
                for seed in seeds:
                    cell = by_key[
                        _sufficiency_cell(
                            model, f, algorithm, movement, attack, seed
                        ).key
                    ]
                    if not cell.satisfied:
                        all_ok = False
                        result.fail(
                            f"{model} n={n} f={f} {algorithm}/{movement}/"
                            f"{attack}/seed={seed}: {_failure_summary(cell)}"
                        )
    return all_ok


def _verify_stalls(
    by_key, model, f: int, algorithms, result: ExperimentResult
) -> bool:
    """Every MSR instance must stall under the bound-tight adversary."""
    all_stalled = True
    for algorithm in algorithms:
        cell = by_key[_stall_cell(model, f, algorithm).key]
        stats = trajectory_stats(cell.diameters, rounds=cell.rounds)
        stalled = stats.stalled_from() is not None and stats.final_diameter > 0
        if not stalled:
            all_stalled = False
            result.fail(
                f"{model} f={f} {algorithm}: expected stall at "
                f"n={required_processes(model, f) - 1}, "
                f"got trajectory {stats.trajectory[:6]}..."
            )
    return all_stalled


def _failure_summary(cell) -> str:
    """Compact violation description of a condensed cell result."""
    if cell.error is not None:
        return f"error: {cell.error}"
    broken = [
        name
        for name, ok in (
            ("Termination", cell.termination_ok),
            ("eps-Agreement", cell.agreement_ok),
            ("Validity", cell.validity_ok),
        )
        if not ok
    ]
    return "VIOLATED: " + ", ".join(broken)

"""EXP-T2: reproduce paper Table 2 (replica requirements), both sides.

Three pieces of evidence per model:

* **derivation** -- the bound is recomputed from the Table 1 mapping via
  ``n > 3a + 2s + b`` (no hard-coding; see
  :func:`repro.core.bounds.table2_rows`);
* **sufficiency** -- at ``n = n_Mi`` (the minimum satisfying the bound)
  the paper's algorithms converge and meet the full specification under
  an adversary grid;
* **necessity** -- at ``n = n_Mi - 1`` (i.e. ``n = coefficient*f``) the
  sustained stall adversary freezes the diameter of every MSR instance,
  and the E1/E2/E3 triple shows *no* algorithm can succeed.
"""

from __future__ import annotations

from ..analysis.metrics import convergence_stats
from ..api import mobile_config
from ..core.bounds import table2_rows
from ..core.lower_bounds import lower_bound_scenario, stall_configuration
from ..core.mapping import msr_trim_parameter
from ..core.specification import check_trace
from ..faults.models import get_semantics
from ..msr.registry import DEFAULT_ALGORITHMS, make_algorithm
from ..runtime.simulator import run_simulation
from .base import ExperimentResult

__all__ = ["run_table2"]

_MOVEMENTS = ("static", "round-robin", "random", "target-extremes")
_ATTACKS = ("split", "outlier", "noise")


def run_table2(
    f: int = 1,
    seeds: tuple[int, ...] = (0, 1),
    algorithms: tuple[str, ...] = DEFAULT_ALGORITHMS,
) -> ExperimentResult:
    """Run the Table 2 reproduction for a given ``f``."""
    result = ExperimentResult(
        exp_id="EXP-T2",
        title=f"Table 2 -- required replicas per model (f={f})",
        headers=[
            "model",
            "mixed-mode image",
            "derived bound",
            "paper bound",
            "spec holds at n_Mi",
            "MSR stalls at n_Mi - 1",
            "impossible at n_Mi - 1",
        ],
    )
    for row in table2_rows(f):
        semantics = get_semantics(row.model)
        min_n = semantics.required_n(f)

        sufficient = _verify_sufficiency(row.model, f, min_n, seeds, algorithms, result)
        stalls = _verify_stalls(row.model, f, algorithms, result)
        scenario = lower_bound_scenario(row.model, f)
        verification = scenario.verify()
        if not verification.proves_impossibility:
            result.fail(
                f"{row.model.value}: indistinguishability argument inconclusive"
            )

        result.add_row(
            row.model.value,
            str(row.image),
            f"n > {row.image.min_processes() - 1}",
            row.bound_text(),
            sufficient,
            stalls,
            verification.proves_impossibility,
        )
    result.add_note(
        "derived bound = 3a + 2s + b from the Table 1 image; 'spec holds' "
        "sweeps movements x attacks x seeds at the bound's minimum n; the "
        "stall adversary alternates agent pools to sustain |cured| = f"
    )
    return result


def _verify_sufficiency(
    model, f: int, n: int, seeds, algorithms, result: ExperimentResult
) -> bool:
    """All runs at the minimum sufficient ``n`` must satisfy the spec."""
    all_ok = True
    for algorithm in algorithms:
        for movement in _MOVEMENTS:
            for attack in _ATTACKS:
                for seed in seeds:
                    config = mobile_config(
                        model=model,
                        f=f,
                        n=n,
                        algorithm=algorithm,
                        movement=movement,
                        attack=attack,
                        seed=seed,
                        max_rounds=200,
                    )
                    trace = run_simulation(config)
                    verdict = check_trace(trace)
                    if not verdict.satisfied:
                        all_ok = False
                        result.fail(
                            f"{model} n={n} f={f} {algorithm}/{movement}/"
                            f"{attack}/seed={seed}: {verdict}"
                        )
    return all_ok


def _verify_stalls(model, f: int, algorithms, result: ExperimentResult) -> bool:
    """Every MSR instance must stall under the bound-tight adversary."""
    all_stalled = True
    for algorithm in algorithms:
        function = make_algorithm(algorithm, msr_trim_parameter(model, f))
        config = stall_configuration(model, f, function, rounds=20)
        trace = run_simulation(config)
        stats = convergence_stats(trace)
        stalled = stats.stalled_from() is not None and stats.final_diameter > 0
        if not stalled:
            all_stalled = False
            result.fail(
                f"{model} f={f} {algorithm}: expected stall at n={config.n}, "
                f"got trajectory {stats.trajectory[:6]}..."
            )
    return all_stalled

"""EXP-F2: mobile bounds differ from the static bound.

The paper's abstract highlights that the mobile lower bounds differ
from the classical static ``n > 3f``.  This experiment makes the gap
concrete: at ``n = 3f + 1`` the *static* Byzantine system converges
(via the mixed-mode controller with ``a = f``, and equivalently via M4
whose agents may simply stay put), while models M1-M3 at the same ``n``
cannot even instantiate their MSR reduction -- and remain breakable all
the way up to their own bounds, where the stall adversaries of EXP-LB
operate.
"""

from __future__ import annotations

from ..analysis.metrics import convergence_stats
from ..core.bounds import required_processes, static_byzantine_min_processes
from ..core.lower_bounds import stall_configuration
from ..core.mapping import msr_trim_parameter
from ..core.specification import check_trace
from ..faults.adversary import Adversary
from ..faults.mixed_mode import StaticFaultAssignment
from ..faults.models import ALL_MODELS, MobileModel
from ..faults.value_strategies import SplitAttack
from ..msr.registry import make_algorithm
from ..runtime.config import SimulationConfig, StaticMixedSetup
from ..runtime.simulator import run_simulation
from ..runtime.termination import FixedRounds
from ..api import evenly_spread_values
from .base import ExperimentResult

__all__ = ["run_static_vs_mobile"]


def run_static_vs_mobile(f: int = 1, rounds: int = 40) -> ExperimentResult:
    """Contrast static and mobile replica requirements empirically."""
    result = ExperimentResult(
        exp_id="EXP-F2",
        title=f"Static bound n > 3f vs mobile bounds (f={f})",
        headers=[
            "system",
            "bound",
            "n tested",
            "outcome at n = 3f + 1",
            "min n where spec held",
        ],
    )
    static_n = static_byzantine_min_processes(f)

    # Static Byzantine baseline: a = f asymmetric faults, forever.
    static_trace = run_simulation(_static_config(f, static_n, rounds))
    static_verdict = check_trace(static_trace)
    if not static_verdict.satisfied:
        result.fail(f"static Byzantine at n={static_n} should converge: {static_verdict}")
    result.add_row(
        "static Byzantine (mixed-mode, a=f)",
        "n > 3f",
        static_n,
        "converges" if static_verdict.satisfied else "FAILS",
        static_n,
    )

    for model in ALL_MODELS:
        bound_n = required_processes(model, f)
        outcome = _outcome_at(model, f, static_n, rounds)
        min_n = _minimum_working_n(model, f, rounds)
        if min_n != bound_n:
            result.fail(
                f"{model.value}: empirical minimum n {min_n} != Table 2 "
                f"minimum {bound_n}"
            )
        result.add_row(
            model.value,
            f"n > {bound_n - 1}",
            static_n,
            outcome,
            min_n,
        )
    result.add_note(
        "M4's bound coincides with the static one (agents moving with "
        "messages add no power at the send phase); M1-M3 need strictly "
        "more processes than the static model -- the paper's headline gap"
    )
    return result


def _static_config(f: int, n: int, rounds: int) -> SimulationConfig:
    assignment = StaticFaultAssignment.first_processes(asymmetric=f)
    return SimulationConfig(
        n=n,
        f=f,
        initial_values=evenly_spread_values(n),
        algorithm=make_algorithm("ftm", f),
        setup=StaticMixedSetup(
            assignment=assignment, adversary=Adversary(values=SplitAttack())
        ),
        termination=FixedRounds(rounds),
    )


def _outcome_at(model: MobileModel, f: int, n: int, rounds: int) -> str:
    """What happens to a mobile model at the static bound's n."""
    bound_n = required_processes(model, f)
    if n >= bound_n:
        return "converges (bound met)"
    tau = msr_trim_parameter(model, f)
    # In M1 up to f cured processes stay silent, shrinking the multiset.
    smallest_multiset = n - (f if model is MobileModel.GARAY else 0)
    if smallest_multiset < 2 * tau + 1:
        return "reduction impossible (multiset too small)"
    return "breakable (below bound)"


def _minimum_working_n(model: MobileModel, f: int, rounds: int) -> int:
    """Smallest n at which the stall adversary no longer wins.

    Scans upward from the bound value: at ``extra = 0`` the adversary
    stalls; the first ``extra`` where the spec holds is the empirical
    minimum.  The scan is capped two processes above the bound to keep
    runtimes tight; the cap itself is asserted against Table 2.
    """
    function = make_algorithm("ftm", msr_trim_parameter(model, f))
    base_n = required_processes(model, f) - 1
    for extra in range(0, 3):
        config = stall_configuration(
            model, f, function, rounds=rounds, extra_processes=extra
        )
        trace = run_simulation(config)
        stats = convergence_stats(trace)
        verdict = check_trace(trace, epsilon=1e-3)
        converged = stats.final_diameter <= 1e-3 and verdict.validity
        if converged:
            return base_n + extra
    return base_n + 3

"""EXP-F2: mobile bounds differ from the static bound.

The paper's abstract highlights that the mobile lower bounds differ
from the classical static ``n > 3f``.  This experiment makes the gap
concrete: at ``n = 3f + 1`` the *static* Byzantine system converges
(via the mixed-mode controller with ``a = f``, and equivalently via M4
whose agents may simply stay put), while models M1-M3 at the same ``n``
cannot even instantiate their MSR reduction -- and remain breakable all
the way up to their own bounds, where the stall adversaries of EXP-LB
operate.

All runs are declared as sweep cells -- the static baseline as a
``scenario="static-mixed"`` cell, the bound scan as ``scenario="stall"``
cells over the ``extra`` axis -- and executed through one
:func:`repro.sweep.run_sweep` call, inheriting parallelism and caching.
"""

from __future__ import annotations

from ..analysis.metrics import trajectory_stats
from ..core.bounds import required_processes, static_byzantine_min_processes
from ..core.mapping import msr_trim_parameter
from ..faults.models import ALL_MODELS, MobileModel
from ..sweep import CellSpec, run_sweep
from .base import ExperimentResult

__all__ = ["run_static_vs_mobile"]

#: The bound scan checks ``extra`` processes above ``n_Mi - 1``; capped
#: two above the bound to keep runtimes tight (the cap itself is
#: asserted against Table 2 by the experiment).
_EXTRA_RANGE = range(0, 3)


def _static_cell(f: int, n: int, rounds: int) -> CellSpec:
    return CellSpec(
        model="static",
        f=f,
        n=n,
        algorithm="ftm",
        movement="static",
        attack="split",
        epsilon=1e-3,
        seed=0,
        rounds=rounds,
        scenario="static-mixed",
        params={"a": f},
    )


def _stall_cell(model: MobileModel, f: int, rounds: int, extra: int) -> CellSpec:
    return CellSpec(
        model=model.value,
        f=f,
        n=None,
        algorithm="ftm",
        movement="alternating-pools",
        attack="split",
        epsilon=1e-3,
        seed=0,
        rounds=rounds,
        scenario="stall",
        params={"extra": extra},
    )


def run_static_vs_mobile(
    f: int = 1, rounds: int = 40, workers: int = 1, cache=None
) -> ExperimentResult:
    """Contrast static and mobile replica requirements empirically."""
    result = ExperimentResult(
        exp_id="EXP-F2",
        title=f"Static bound n > 3f vs mobile bounds (f={f})",
        headers=[
            "system",
            "bound",
            "n tested",
            "outcome at n = 3f + 1",
            "min n where spec held",
        ],
    )
    static_n = static_byzantine_min_processes(f)
    cells = [_static_cell(f, static_n, rounds)] + [
        _stall_cell(model, f, rounds, extra)
        for model in ALL_MODELS
        for extra in _EXTRA_RANGE
    ]
    by_key = run_sweep(cells, workers=workers, cache=cache).by_key()

    # Static Byzantine baseline: a = f asymmetric faults, forever.
    static_cell = by_key[_static_cell(f, static_n, rounds).key]
    if not static_cell.satisfied:
        result.fail(
            f"static Byzantine at n={static_n} should converge: "
            f"{static_cell.error or 'spec violated'}"
        )
    result.add_row(
        "static Byzantine (mixed-mode, a=f)",
        "n > 3f",
        static_n,
        "converges" if static_cell.satisfied else "FAILS",
        static_n,
    )

    for model in ALL_MODELS:
        bound_n = required_processes(model, f)
        outcome = _outcome_at(model, f, static_n, rounds)
        min_n = _minimum_working_n(by_key, model, f, rounds)
        if min_n != bound_n:
            result.fail(
                f"{model.value}: empirical minimum n {min_n} != Table 2 "
                f"minimum {bound_n}"
            )
        result.add_row(
            model.value,
            f"n > {bound_n - 1}",
            static_n,
            outcome,
            min_n,
        )
    result.add_note(
        "M4's bound coincides with the static one (agents moving with "
        "messages add no power at the send phase); M1-M3 need strictly "
        "more processes than the static model -- the paper's headline gap"
    )
    return result


def _outcome_at(model: MobileModel, f: int, n: int, rounds: int) -> str:
    """What happens to a mobile model at the static bound's n."""
    bound_n = required_processes(model, f)
    if n >= bound_n:
        return "converges (bound met)"
    tau = msr_trim_parameter(model, f)
    # In M1 up to f cured processes stay silent, shrinking the multiset.
    smallest_multiset = n - (f if model is MobileModel.GARAY else 0)
    if smallest_multiset < 2 * tau + 1:
        return "reduction impossible (multiset too small)"
    return "breakable (below bound)"


def _minimum_working_n(by_key, model: MobileModel, f: int, rounds: int) -> int:
    """Smallest n at which the stall adversary no longer wins.

    Scans upward from the bound value: at ``extra = 0`` the adversary
    stalls; the first ``extra`` where the spec holds is the empirical
    minimum.
    """
    base_n = required_processes(model, f) - 1
    for extra in _EXTRA_RANGE:
        cell = by_key[_stall_cell(model, f, rounds, extra).key]
        stats = trajectory_stats(cell.diameters, rounds=cell.rounds)
        converged = stats.final_diameter <= 1e-3 and cell.validity_ok
        if converged:
            return base_n + extra
    return base_n + len(_EXTRA_RANGE)

"""EXP-T1: reproduce paper Table 1 (the fault-model mapping) empirically.

For each model we run real simulations with moving agents and classify
every cured process's *observable* send behaviour (silent /
identical-to-all / per-recipient-divergent) using only the message
matrix, then compare the observed class against the paper's Table 1.
Faulty processes must always classify as asymmetric, and M4 must never
exhibit a cured process at send time (Lemma 4); the per-round cured
count must respect Corollary 1 (``<= f``).

The runs themselves are declared as sweep cells and executed through
:func:`repro.sweep.run_sweep` with the ``send-classification`` probe,
so the experiment inherits the engine's parallelism and cell caching.
"""

from __future__ import annotations

from ..core.equivalence import cured_fault_class
from ..faults.mixed_mode import FaultClass
from ..faults.models import ALL_MODELS, get_semantics
from ..sweep import CellSpec, run_sweep
from .base import ExperimentResult

__all__ = ["run_table1"]


def _cell(model, f: int, rounds: int) -> CellSpec:
    # The outlier attack sends per-recipient values that differ even
    # once the correct range collapses, so the behavioural
    # classification stays sharp over every round.
    return CellSpec(
        model=model.value,
        f=f,
        n=None,
        algorithm="ftm",
        movement="round-robin",
        attack="outlier",
        epsilon=1e-3,
        seed=11 * f,
        rounds=rounds,
    )


def run_table1(
    fault_counts: tuple[int, ...] = (1, 2),
    rounds: int = 8,
    workers: int = 1,
    cache=None,
) -> ExperimentResult:
    """Run the Table 1 reproduction."""
    result = ExperimentResult(
        exp_id="EXP-T1",
        title="Table 1 -- mobile-to-mixed-mode mapping, observed behaviourally",
        headers=[
            "model",
            "f",
            "faulty observed",
            "cured observed",
            "cured expected (Table 1)",
            "max |cured|/round",
            "match",
        ],
    )
    cells = [
        _cell(model, f, rounds) for model in ALL_MODELS for f in fault_counts
    ]
    sweep = run_sweep(
        cells,
        workers=workers,
        trace_detail="full",
        probe="send-classification",
        cache=cache,
    )
    by_key = sweep.by_key()
    for model in ALL_MODELS:
        semantics = get_semantics(model)
        expected = cured_fault_class(model)
        expected_name = expected.value if expected else "none at send"
        for f in fault_counts:
            cell = by_key[_cell(model, f, rounds).key]
            extras = cell.extras_dict()
            faulty_classes = {
                FaultClass(value) for value in extras["faulty_classes"]
            }
            cured_classes = {
                FaultClass(value) for value in extras["cured_classes"]
            }
            max_cured = extras["max_cured"]

            observed_cured = (
                ", ".join(extras["cured_classes"])
                if cured_classes
                else "none at send"
            )
            observed_faulty = ", ".join(extras["faulty_classes"])
            match = _matches(expected, cured_classes, faulty_classes, max_cured, f)
            if not match:
                result.fail(
                    f"{model.value} f={f}: observed cured={observed_cured}, "
                    f"expected {expected_name}"
                )
            result.add_row(
                f"{model.value} ({semantics.display_name})",
                f,
                observed_faulty,
                observed_cured,
                expected_name,
                max_cured,
                match,
            )
    result.add_note(
        "faulty processes always classify asymmetric; cured classes match "
        "Lemmas 1-4; per-round cured count respects Corollary 1 (<= f)"
    )
    return result


def _matches(
    expected: FaultClass | None,
    cured_classes: set[FaultClass],
    faulty_classes: set[FaultClass],
    max_cured: int,
    f: int,
) -> bool:
    if faulty_classes != {FaultClass.ASYMMETRIC}:
        return False
    if max_cured > f:
        return False
    if expected is None:
        # M4: no process may ever be cured during a send phase.
        return not cured_classes and max_cured == 0
    return cured_classes == {expected}

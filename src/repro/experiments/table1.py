"""EXP-T1: reproduce paper Table 1 (the fault-model mapping) empirically.

For each model we run real simulations with moving agents and classify
every cured process's *observable* send behaviour (silent /
identical-to-all / per-recipient-divergent) using only the message
matrix, then compare the observed class against the paper's Table 1.
Faulty processes must always classify as asymmetric, and M4 must never
exhibit a cured process at send time (Lemma 4); the per-round cured
count must respect Corollary 1 (``<= f``).
"""

from __future__ import annotations

from ..api import mobile_config
from ..core.equivalence import cured_fault_class
from ..core.mapping import classify_cured_processes, classify_send_behavior
from ..faults.mixed_mode import FaultClass
from ..faults.models import ALL_MODELS, get_semantics
from ..runtime.simulator import run_simulation
from .base import ExperimentResult

__all__ = ["run_table1"]


def run_table1(fault_counts: tuple[int, ...] = (1, 2), rounds: int = 8) -> ExperimentResult:
    """Run the Table 1 reproduction."""
    result = ExperimentResult(
        exp_id="EXP-T1",
        title="Table 1 -- mobile-to-mixed-mode mapping, observed behaviourally",
        headers=[
            "model",
            "f",
            "faulty observed",
            "cured observed",
            "cured expected (Table 1)",
            "max |cured|/round",
            "match",
        ],
    )
    for model in ALL_MODELS:
        semantics = get_semantics(model)
        expected = cured_fault_class(model)
        expected_name = expected.value if expected else "none at send"
        for f in fault_counts:
            # The outlier attack sends per-recipient values that differ
            # even once the correct range collapses, so the behavioural
            # classification stays sharp over every round.
            config = mobile_config(
                model=model,
                f=f,
                movement="round-robin",
                attack="outlier",
                rounds=rounds,
                seed=11 * f,
            )
            trace = run_simulation(config)
            faulty_classes: set[FaultClass] = set()
            cured_classes: set[FaultClass] = set()
            max_cured = 0
            for record in trace.rounds:
                max_cured = max(max_cured, len(record.cured_at_send))
                for pid in record.faulty_at_send:
                    faulty_classes.add(classify_send_behavior(record, pid))
                cured_classes.update(classify_cured_processes(record).values())

            observed_cured = (
                ", ".join(sorted(cls.value for cls in cured_classes))
                if cured_classes
                else "none at send"
            )
            observed_faulty = ", ".join(sorted(cls.value for cls in faulty_classes))
            match = _matches(expected, cured_classes, faulty_classes, max_cured, f)
            if not match:
                result.fail(
                    f"{model.value} f={f}: observed cured={observed_cured}, "
                    f"expected {expected_name}"
                )
            result.add_row(
                f"{model.value} ({semantics.display_name})",
                f,
                observed_faulty,
                observed_cured,
                expected_name,
                max_cured,
                match,
            )
    result.add_note(
        "faulty processes always classify asymmetric; cured classes match "
        "Lemmas 1-4; per-round cured count respects Corollary 1 (<= f)"
    )
    return result


def _matches(
    expected: FaultClass | None,
    cured_classes: set[FaultClass],
    faulty_classes: set[FaultClass],
    max_cured: int,
    f: int,
) -> bool:
    if faulty_classes != {FaultClass.ASYMMETRIC}:
        return False
    if max_cured > f:
        return False
    if expected is None:
        # M4: no process may ever be cured during a send phase.
        return not cured_classes and max_cured == 0
    return cured_classes == {expected}

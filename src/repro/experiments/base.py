"""Common experiment result structure.

Every experiment produces an :class:`ExperimentResult`: an identifier
matching DESIGN.md's per-experiment index, a paper-shaped table, notes,
and an overall pass flag asserting the paper's claim was reproduced.
Benchmarks re-run the same experiment functions and assert on ``ok``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.tables import render_table

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    """Outcome of one experiment run."""

    exp_id: str
    title: str
    headers: list[str]
    rows: list[list[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    #: True when every reproduced claim matched the paper.
    ok: bool = True
    #: Optional extra renderable blocks (e.g. series plots).
    extra_blocks: list[str] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        """Append one table row."""
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        """Append a free-form note printed under the table."""
        self.notes.append(note)

    def fail(self, note: str) -> None:
        """Mark the experiment as failed with an explanation."""
        self.ok = False
        self.notes.append(f"MISMATCH: {note}")

    def render(self) -> str:
        """Full printable report for this experiment."""
        status = "REPRODUCED" if self.ok else "MISMATCH"
        parts = [f"=== {self.exp_id}: {self.title} [{status}] ==="]
        if self.rows:
            parts.append(render_table(self.headers, self.rows))
        parts.extend(self.extra_blocks)
        parts.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(parts)

"""Run every experiment and render the combined report.

``run_all`` executes the full suite in DESIGN.md order; the CLI and the
benchmark harness both route through here so the printed artefacts are
identical everywhere.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from .base import ExperimentResult
from .convergence_exp import run_convergence
from .equivalence_exp import run_equivalence
from .family_comparison import run_family_comparison
from .lower_bounds_exp import run_lower_bounds
from .mixed_mode_exp import run_mixed_mode
from .robustness import run_robustness
from .spec_exp import run_spec_battery
from .static_vs_mobile import run_static_vs_mobile
from .table1 import run_table1
from .table2 import run_table2
from .topology_comparison import run_topology_comparison

__all__ = ["EXPERIMENTS", "run_all", "run_named", "render_report"]

#: Registry of experiment ids to zero-argument runners (default params).
EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    "table1": run_table1,
    "table2": run_table2,
    "lower-bounds": run_lower_bounds,
    "equivalence": run_equivalence,
    "spec": run_spec_battery,
    "convergence": run_convergence,
    "static-vs-mobile": run_static_vs_mobile,
    "mixed-mode": run_mixed_mode,
    "robustness": run_robustness,
    "families": run_family_comparison,
    "topology": run_topology_comparison,
}


def run_named(names: Sequence[str]) -> list[ExperimentResult]:
    """Run the experiments with the given registry names, in order."""
    results = []
    for name in names:
        try:
            runner = EXPERIMENTS[name]
        except KeyError:
            known = ", ".join(sorted(EXPERIMENTS))
            raise KeyError(f"unknown experiment {name!r}; known: {known}") from None
        results.append(runner())
    return results


def run_all() -> list[ExperimentResult]:
    """Run the complete suite in DESIGN.md order."""
    return run_named(list(EXPERIMENTS))


def render_report(results: Sequence[ExperimentResult]) -> str:
    """Combined printable report with a final verdict line."""
    blocks = [result.render() for result in results]
    reproduced = sum(result.ok for result in results)
    blocks.append(
        f"=== overall: {reproduced}/{len(results)} experiments reproduced ==="
    )
    return "\n\n".join(blocks)

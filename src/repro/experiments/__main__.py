"""``python -m repro.experiments`` -- alias for the experiments CLI."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())

"""EXP-TH1: Theorem 1 -- mobile computations are correct computations.

Runs real mobile executions, extracts the Definition 5 configurations,
performs Theorem 1's proof construction (re-labelling cured processes
with their Table 1 mixed-mode class) and checks Definition 9
equivalence round by round, plus Definition 8's per-round resilience
condition and Corollary 1's cured-count bound.
"""

from __future__ import annotations

from ..api import mobile_config
from ..core.configuration import computation_from_trace
from ..core.equivalence import build_equivalent_static_computation
from ..faults.models import ALL_MODELS, get_semantics
from ..runtime.simulator import run_simulation
from .base import ExperimentResult

__all__ = ["run_equivalence"]


def run_equivalence(
    fault_counts: tuple[int, ...] = (1, 2), rounds: int = 12
) -> ExperimentResult:
    """Execute Theorem 1's construction over real traces."""
    result = ExperimentResult(
        exp_id="EXP-TH1",
        title="Theorem 1 -- equivalent static computations for mobile runs",
        headers=[
            "model",
            "f",
            "n",
            "rounds",
            "mobile computation (Def. 8)",
            "max |cured| (Cor. 1: <= f)",
            "all rounds equivalent (Def. 9)",
            "correct computation (Def. 10)",
        ],
    )
    for model in ALL_MODELS:
        semantics = get_semantics(model)
        for f in fault_counts:
            n = semantics.required_n(f)
            config = mobile_config(
                model=model,
                f=f,
                n=n,
                movement="round-robin",
                attack="split",
                rounds=rounds,
                seed=f,
            )
            trace = run_simulation(config)
            computation = computation_from_trace(trace)
            report = build_equivalent_static_computation(computation)

            max_cured = computation.max_cured()
            all_equivalent = all(check.equivalent for check in report.checks)
            if not report.is_correct_computation:
                result.fail(f"{model.value} f={f}: {report.summary()}")
            if max_cured > f:
                result.fail(
                    f"{model.value} f={f}: Corollary 1 violated "
                    f"(max cured {max_cured})"
                )
            result.add_row(
                model.value,
                f,
                n,
                len(report.checks),
                report.is_mobile_computation,
                max_cured,
                all_equivalent,
                report.is_correct_computation,
            )
    result.add_note(
        "the static image re-labels faulty processes as asymmetric and "
        "cured ones per Table 1; equivalence requires identical correct-"
        "value multisets and at least as many correct tuples (Def. 9)"
    )
    return result

"""EXP-ROB: seed-robustness profile (added).

The paper's guarantees are worst-case; a credible reproduction also
shows the results are not seed-dependent.  For every model this
experiment runs many independently seeded executions with *randomly
drawn* adversary combinations (movement x attack picked per seed) and
reports the distribution of rounds-to-epsilon.  Assertions:

* every single run satisfies the full specification;
* the distribution's maximum stays within the worst-case round budget
  predicted by :func:`repro.core.convergence.predicted_rounds`.
"""

from __future__ import annotations

from ..analysis.metrics import rounds_until
from ..analysis.stats import summarize
from ..api import mobile_config
from ..core.convergence import predicted_rounds
from ..core.mapping import msr_trim_parameter
from ..core.specification import check_trace
from ..faults.models import ALL_MODELS, get_semantics
from ..msr.registry import make_algorithm
from ..runtime.rng import derive_rng
from ..runtime.simulator import run_simulation
from .base import ExperimentResult

__all__ = ["run_robustness"]

_MOVEMENTS = ("static", "round-robin", "random", "target-extremes")
_ATTACKS = ("split", "outlier", "noise", "echo", "oscillating", "inertia")
_EPSILON = 1e-3


def run_robustness(f: int = 1, samples: int = 40) -> ExperimentResult:
    """Run the robustness profile with ``samples`` seeds per model."""
    if samples < 1:
        raise ValueError("samples must be positive")
    result = ExperimentResult(
        exp_id="EXP-ROB",
        title=(
            f"Seed-robustness profile: rounds to eps={_EPSILON:g} over "
            f"{samples} random adversaries (f={f})"
        ),
        headers=[
            "model",
            "n",
            "samples",
            "rounds min/med/p95/max",
            "worst-case budget",
            "within budget",
            "spec failures",
        ],
    )
    for model in ALL_MODELS:
        semantics = get_semantics(model)
        n = semantics.required_n(f)
        algorithm = make_algorithm("ftm", msr_trim_parameter(model, f))
        budget = predicted_rounds(
            algorithm, model, n, f, initial_diameter=1.0, epsilon=_EPSILON
        )

        picker = derive_rng(1234, "robustness", model.value, f)
        rounds: list[float] = []
        failures = 0
        for seed in range(samples):
            movement = picker.choice(_MOVEMENTS)
            attack = picker.choice(_ATTACKS)
            config = mobile_config(
                model=model,
                f=f,
                n=n,
                algorithm="ftm",
                movement=movement,
                attack=attack,
                epsilon=_EPSILON,
                seed=seed,
                max_rounds=budget + 10,
            )
            trace = run_simulation(config)
            verdict = check_trace(trace)
            if not verdict.satisfied:
                failures += 1
                result.fail(
                    f"{model.value} seed={seed} {movement}/{attack}: {verdict}"
                )
            reached = rounds_until(trace, _EPSILON)
            if reached is None:
                failures += 1
                result.fail(
                    f"{model.value} seed={seed} {movement}/{attack}: "
                    "never reached epsilon"
                )
            else:
                rounds.append(float(reached))

        stats = summarize(rounds)
        within = stats.maximum <= budget
        if not within:
            result.fail(
                f"{model.value}: observed {stats.maximum:g} rounds "
                f"exceeds worst-case budget {budget}"
            )
        result.add_row(
            model.value,
            n,
            samples,
            stats.render(),
            budget,
            within,
            failures,
        )
    result.add_note(
        "adversaries drawn per seed from movements x attacks; the budget "
        "is the FTM worst case ceil(log_2(diameter/eps)) -- every "
        "observation must fall at or below it"
    )
    return result

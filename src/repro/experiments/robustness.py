"""EXP-ROB: seed-robustness profile (added).

The paper's guarantees are worst-case; a credible reproduction also
shows the results are not seed-dependent.  For every model this
experiment runs many independently seeded executions with *randomly
drawn* adversary combinations (movement x attack picked per seed) and
reports the distribution of rounds-to-epsilon.  Assertions:

* every single run satisfies the full specification;
* the distribution's maximum stays within the worst-case round budget
  predicted by :func:`repro.core.convergence.predicted_rounds`.

The per-model adversary draws are materialized into an explicit cell
list (the movement/attack axes are seed-coupled, so this is a cell
family rather than a cartesian grid) and executed through one
:func:`repro.sweep.run_sweep` call, inheriting parallelism and caching.
"""

from __future__ import annotations

from ..analysis.metrics import first_round_within
from ..analysis.stats import summarize
from ..core.convergence import predicted_rounds
from ..core.mapping import msr_trim_parameter
from ..faults.models import ALL_MODELS, get_semantics
from ..msr.registry import make_algorithm
from ..runtime.rng import derive_rng
from ..sweep import CellSpec, run_sweep
from .base import ExperimentResult

__all__ = ["run_robustness"]

_MOVEMENTS = ("static", "round-robin", "random", "target-extremes")
_ATTACKS = ("split", "outlier", "noise", "echo", "oscillating", "inertia")
_EPSILON = 1e-3


def _drawn_cells(model, f: int, samples: int, budget: int) -> list[CellSpec]:
    """The model's seeded adversary draws as sweep cells.

    The picker stream is derived from stable keys, so the same
    ``(model, f, samples)`` always yields the same cell family.
    """
    picker = derive_rng(1234, "robustness", model.value, f)
    cells = []
    for seed in range(samples):
        movement = picker.choice(_MOVEMENTS)
        attack = picker.choice(_ATTACKS)
        cells.append(
            CellSpec(
                model=model.value,
                f=f,
                n=None,
                algorithm="ftm",
                movement=movement,
                attack=attack,
                epsilon=_EPSILON,
                seed=seed,
                max_rounds=budget + 10,
            )
        )
    return cells


def run_robustness(
    f: int = 1, samples: int = 40, workers: int = 1, cache=None
) -> ExperimentResult:
    """Run the robustness profile with ``samples`` seeds per model."""
    if samples < 1:
        raise ValueError("samples must be positive")
    result = ExperimentResult(
        exp_id="EXP-ROB",
        title=(
            f"Seed-robustness profile: rounds to eps={_EPSILON:g} over "
            f"{samples} random adversaries (f={f})"
        ),
        headers=[
            "model",
            "n",
            "samples",
            "rounds min/med/p95/max",
            "worst-case budget",
            "within budget",
            "spec failures",
        ],
    )
    budgets: dict = {}
    families: dict = {}
    for model in ALL_MODELS:
        semantics = get_semantics(model)
        n = semantics.required_n(f)
        algorithm = make_algorithm("ftm", msr_trim_parameter(model, f))
        budgets[model] = predicted_rounds(
            algorithm, model, n, f, initial_diameter=1.0, epsilon=_EPSILON
        )
        families[model] = _drawn_cells(model, f, samples, budgets[model])
    sweep = run_sweep(
        [cell for family in families.values() for cell in family],
        workers=workers,
        cache=cache,
    )
    by_key = sweep.by_key()

    for model in ALL_MODELS:
        semantics = get_semantics(model)
        n = semantics.required_n(f)
        budget = budgets[model]
        rounds: list[float] = []
        failures = 0
        for seed, spec in enumerate(families[model]):
            cell = by_key[spec.key]
            if not cell.satisfied:
                failures += 1
                result.fail(
                    f"{model.value} seed={seed} {spec.movement}/{spec.attack}: "
                    f"{cell.error or 'spec violated'}"
                )
            reached = first_round_within(cell.diameters, _EPSILON)
            if reached is None:
                failures += 1
                result.fail(
                    f"{model.value} seed={seed} {spec.movement}/{spec.attack}: "
                    "never reached epsilon"
                )
            else:
                rounds.append(float(reached))

        stats = summarize(rounds)
        within = stats.maximum <= budget
        if not within:
            result.fail(
                f"{model.value}: observed {stats.maximum:g} rounds "
                f"exceeds worst-case budget {budget}"
            )
        result.add_row(
            model.value,
            n,
            samples,
            stats.render(),
            budget,
            within,
            failures,
        )
    result.add_note(
        "adversaries drawn per seed from movements x attacks; the budget "
        "is the FTM worst case ceil(log_2(diameter/eps)) -- every "
        "observation must fall at or below it"
    )
    return result

"""EXP-FAM: algorithm families head-to-head (Bonomi vs Tseng).

The protocol-family abstraction (:mod:`repro.runtime.families`) turns
the reproduction into a comparison harness; this experiment is the
first comparison it enables.  Both in-tree families run the *same*
cells -- model, fault count, system size, adversary, MSR fold, seeds --
through :func:`repro.sweep.run_sweep`, differing only in the protocol:

* ``bonomi`` -- the source paper's memoryless MSR voting protocol;
* ``tseng``  -- the consistency-filtered variant after Tseng
  (arXiv:1707.07659): pair messages, carried per-node state, scrambled
  cured claims rejected and the trim budget relaxed accordingly.

The families are value-identical under M1/M3/M4 (no cured node ever
broadcasts a checkable-but-scrambled claim there), so the comparison
centres on **M2**, where unaware cured nodes broadcast corrupted state
every round: the filter masks that garbage and converges in fewer
rounds.  M1 rows are included as the control -- any divergence there
would indicate a family implementation bug, and the experiment fails
on it.

Defaults run at paper scale (``n = 97``, the largest size the PR 3
kernel made routine); CI re-parameterizes via ``--f`` to a small
instance.  Per-cell results land in the sweep cache if given; the
rendered table is written to ``results/`` by the benchmark wrapper.
"""

from __future__ import annotations

from statistics import mean

from ..sweep import GridSpec, run_sweep
from .base import ExperimentResult

__all__ = ["run_family_comparison"]

#: The control model (families provably identical) and the model under
#: test (unaware cured broadcasts -- the filter's target).
_MODELS = ("M1", "M2")


def _required_n(model: str, f: int) -> int:
    from ..faults.models import get_semantics

    return get_semantics(model).required_n(f)


def run_family_comparison(
    f: int = 24,
    n: int | None = None,
    families: tuple[str, ...] = ("bonomi", "tseng"),
    algorithms: tuple[str, ...] = ("ftm",),
    attacks: tuple[str, ...] = ("split", "outlier"),
    seeds: tuple[int, ...] = (0, 1, 2, 3),
    epsilon: float = 1e-3,
    max_rounds: int = 400,
    workers: int = 1,
    cache=None,
) -> ExperimentResult:
    """Run every family over identical cells; compare rounds to converge.

    ``n`` defaults to the largest Table 2 requirement over the swept
    models at ``f`` (every model then runs the *same* system size, so
    per-family round counts are directly comparable).  The default
    ``f=24`` lands on ``n = 121`` -- paper scale, comfortably past the
    ``n = 97`` size the perf ledger tracks.
    """
    if n is None:
        n = max(_required_n(model, f) for model in _MODELS)
    result = ExperimentResult(
        exp_id="EXP-FAM",
        title=(
            f"Algorithm families head-to-head at n={n}, f={f} "
            f"(oracle eps={epsilon:g})"
        ),
        headers=[
            "model",
            "attack",
            "algorithm",
            "family",
            "mean rounds",
            "max rounds",
            "mean decision diam",
            "all ok",
        ],
    )
    grid = GridSpec(
        models=_MODELS,
        fs=f,
        ns=n,
        algorithms=tuple(algorithms),
        movements="round-robin",
        attacks=tuple(attacks),
        epsilons=epsilon,
        seeds=tuple(seeds),
        max_rounds=max_rounds,
        families=tuple(families),
    )
    sweep = run_sweep(grid, workers=workers, cache=cache)

    by_group: dict[tuple, list] = {}
    for cell in sweep.cells:
        spec = cell.spec
        by_group.setdefault(
            (spec.model, spec.attack, spec.algorithm, spec.family), []
        ).append(cell)

    mean_rounds: dict[tuple, float] = {}
    for model in _MODELS:
        for attack in attacks:
            for algorithm in algorithms:
                for family in families:
                    cells = by_group[(model, attack, algorithm, family)]
                    ok = all(cell.satisfied for cell in cells)
                    rounds = [cell.rounds for cell in cells]
                    mean_rounds[(model, attack, algorithm, family)] = mean(rounds)
                    if not ok:
                        bad = next(c for c in cells if not c.satisfied)
                        result.fail(
                            f"{family}/{model}/{attack}/{algorithm}: "
                            f"{bad.spec.describe()} violated the spec "
                            f"({bad.error or 'unsatisfied property'})"
                        )
                    result.add_row(
                        model,
                        attack,
                        algorithm,
                        family,
                        round(mean(rounds), 2),
                        max(rounds),
                        f"{mean(c.decision_diameter for c in cells):.2e}",
                        ok,
                    )

    # M1 is the control: no unaware cured broadcasts, so every family
    # must take exactly the same number of rounds cell for cell.
    if "bonomi" in families:
        for family in families:
            if family == "bonomi":
                continue
            for attack in attacks:
                for algorithm in algorithms:
                    base = mean_rounds[("M1", attack, algorithm, "bonomi")]
                    other = mean_rounds[("M1", attack, algorithm, family)]
                    if base != other:
                        result.fail(
                            f"M1 control diverged for {family}/{attack}/"
                            f"{algorithm}: {other} rounds vs bonomi's {base}"
                        )
            for attack in attacks:
                for algorithm in algorithms:
                    base = mean_rounds[("M2", attack, algorithm, "bonomi")]
                    other = mean_rounds[("M2", attack, algorithm, family)]
                    verdict = (
                        "faster" if other < base
                        else "identical" if other == base
                        else "slower"
                    )
                    result.add_note(
                        f"M2/{attack}/{algorithm}: {family} mean "
                        f"{other:.2f} rounds vs bonomi {base:.2f} "
                        f"({verdict}; the consistency filter masks unaware "
                        "cured broadcasts)"
                    )
    result.add_note(
        f"{len(sweep)} cells via run_sweep (workers={workers}); families "
        "differ only in the protocol layer -- same seeds, same adversary "
        "RNG streams, same MSR fold"
    )
    return result

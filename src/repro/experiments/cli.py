"""Command-line entry point: ``repro-experiments [name ...]``.

Without arguments the full suite runs; with names, only the selected
experiments.  ``--list`` shows the registry; ``--f`` and ``--seeds``
re-parameterize the experiments that sweep over fault counts and seeds
(unsupported options are ignored per experiment, with a notice).

``repro-experiments sweep [options]`` enters the scenario-sweep engine
instead: a cartesian grid over models/f/n/algorithms/movements/attacks/
epsilons/seeds, executed serially or over worker processes on the
trace-lite fast path, reported as summary tables and diameter series.
"""

from __future__ import annotations

import argparse
import inspect
import sys
from collections.abc import Sequence

from .base import ExperimentResult
from .runner import EXPERIMENTS, render_report

__all__ = ["main", "run_with_options", "sweep_main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables, theorems and figures of 'Approximate "
            "Agreement under Mobile Byzantine Faults' (ICDCS 2016)."
        ),
        epilog=(
            "Use 'repro-experiments sweep --help' for the scenario-sweep "
            "engine (grid execution over models/f/adversaries/seeds)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="NAME",
        help="experiment names to run (default: all)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments and exit"
    )
    parser.add_argument(
        "--f",
        dest="f",
        type=int,
        default=None,
        metavar="F",
        help="number of mobile Byzantine agents for sweeping experiments",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=None,
        metavar="K",
        help="number of seeds per configuration (seeds 0..K-1)",
    )
    return parser


def run_with_options(
    names: Sequence[str], f: int | None = None, seeds: int | None = None
) -> list[ExperimentResult]:
    """Run experiments, forwarding ``f``/``seeds`` where supported.

    Experiments expose different parameter spellings (``f`` vs
    ``fault_counts``; ``seeds`` as an explicit tuple); this adapter
    inspects each runner's signature and forwards what fits.
    """
    results = []
    for name in names:
        try:
            runner = EXPERIMENTS[name]
        except KeyError:
            known = ", ".join(sorted(EXPERIMENTS))
            raise KeyError(f"unknown experiment {name!r}; known: {known}") from None
        parameters = inspect.signature(runner).parameters
        kwargs: dict[str, object] = {}
        if f is not None:
            if "f" in parameters:
                kwargs["f"] = f
            elif "fault_counts" in parameters:
                kwargs["fault_counts"] = (f,)
        if seeds is not None and "seeds" in parameters:
            kwargs["seeds"] = tuple(range(seeds))
        results.append(runner(**kwargs))
    return results


def build_sweep_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments sweep",
        description=(
            "Run a scenario sweep: the cartesian product of the given axes, "
            "each cell one simulation, executed serially or across worker "
            "processes on the trace-lite fast path."
        ),
    )
    parser.add_argument("--models", nargs="+", default=["M1", "M2", "M3"])
    parser.add_argument("--f", dest="fs", nargs="+", type=int, default=[1])
    parser.add_argument(
        "--n",
        dest="ns",
        nargs="+",
        type=int,
        default=None,
        help="system sizes (default: each model's Table 2 minimum)",
    )
    parser.add_argument("--algorithms", nargs="+", default=["ftm"])
    parser.add_argument("--movements", nargs="+", default=["round-robin"])
    parser.add_argument("--attacks", nargs="+", default=["split"])
    parser.add_argument("--epsilons", nargs="+", type=float, default=[1e-3])
    parser.add_argument(
        "--seeds",
        type=int,
        default=4,
        metavar="K",
        help="seeds 0..K-1 per configuration (default: 4)",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=None,
        help="fixed round count (default: oracle epsilon termination)",
    )
    parser.add_argument("--max-rounds", type=int, default=1_000)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (1 = serial; results are identical)",
    )
    parser.add_argument(
        "--detail",
        choices=["full", "lite"],
        default="lite",
        help="trace detail; 'lite' is the fast path (default)",
    )
    parser.add_argument(
        "--cells", action="store_true", help="also print the per-cell table"
    )
    parser.add_argument(
        "--series", action="store_true", help="also print diameter trajectories"
    )
    return parser


def sweep_main(argv: Sequence[str] | None = None) -> int:
    """``sweep`` subcommand entry point; returns a process exit code."""
    from ..analysis import render_series
    from ..sweep import GridSpec, run_sweep

    args = build_sweep_parser().parse_args(argv)
    try:
        grid = GridSpec(
            models=args.models,
            fs=args.fs,
            ns=args.ns,
            algorithms=args.algorithms,
            movements=args.movements,
            attacks=args.attacks,
            epsilons=args.epsilons,
            seeds=tuple(range(args.seeds)),
            rounds=args.rounds,
            max_rounds=args.max_rounds,
        )
        print(grid.describe())
        result = run_sweep(grid, workers=args.workers, trace_detail=args.detail)
    except (ValueError, TypeError) as exc:
        print(f"sweep error: {exc}", file=sys.stderr)
        return 2
    if args.cells:
        print(result.cell_table())
        print()
    print(result.summary_table())
    if args.series:
        print()
        print(render_series(result.diameter_series(), title="mean diameter"))
    for cell in result.errors():
        print(f"ERROR {cell.spec.describe()}: {cell.error}")
    return 0 if result.all_satisfied else 1


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "sweep":
        return sweep_main(list(argv[1:]))
    args = build_parser().parse_args(argv)
    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0
    names = args.experiments if args.experiments else list(EXPERIMENTS)
    results = run_with_options(names, f=args.f, seeds=args.seeds)
    print(render_report(results))
    return 0 if all(result.ok for result in results) else 1


if __name__ == "__main__":
    sys.exit(main())

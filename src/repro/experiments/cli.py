"""Command-line entry point: ``repro-experiments [name ...]``.

Without arguments the full suite runs; with names, only the selected
experiments.  ``--list`` shows the registry; ``--f`` and ``--seeds``
re-parameterize the experiments that sweep over fault counts and seeds
(unsupported options are ignored per experiment, with a notice).
"""

from __future__ import annotations

import argparse
import inspect
import sys
from collections.abc import Sequence

from .base import ExperimentResult
from .runner import EXPERIMENTS, render_report

__all__ = ["main", "run_with_options"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables, theorems and figures of 'Approximate "
            "Agreement under Mobile Byzantine Faults' (ICDCS 2016)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="NAME",
        help="experiment names to run (default: all)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments and exit"
    )
    parser.add_argument(
        "--f",
        dest="f",
        type=int,
        default=None,
        metavar="F",
        help="number of mobile Byzantine agents for sweeping experiments",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=None,
        metavar="K",
        help="number of seeds per configuration (seeds 0..K-1)",
    )
    return parser


def run_with_options(
    names: Sequence[str], f: int | None = None, seeds: int | None = None
) -> list[ExperimentResult]:
    """Run experiments, forwarding ``f``/``seeds`` where supported.

    Experiments expose different parameter spellings (``f`` vs
    ``fault_counts``; ``seeds`` as an explicit tuple); this adapter
    inspects each runner's signature and forwards what fits.
    """
    results = []
    for name in names:
        try:
            runner = EXPERIMENTS[name]
        except KeyError:
            known = ", ".join(sorted(EXPERIMENTS))
            raise KeyError(f"unknown experiment {name!r}; known: {known}") from None
        parameters = inspect.signature(runner).parameters
        kwargs: dict[str, object] = {}
        if f is not None:
            if "f" in parameters:
                kwargs["f"] = f
            elif "fault_counts" in parameters:
                kwargs["fault_counts"] = (f,)
        if seeds is not None and "seeds" in parameters:
            kwargs["seeds"] = tuple(range(seeds))
        results.append(runner(**kwargs))
    return results


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0
    names = args.experiments if args.experiments else list(EXPERIMENTS)
    results = run_with_options(names, f=args.f, seeds=args.seeds)
    print(render_report(results))
    return 0 if all(result.ok for result in results) else 1


if __name__ == "__main__":
    sys.exit(main())

"""Command-line entry point: ``repro-experiments [name ...]``.

Without arguments the full suite runs; with names, only the selected
experiments.  ``--list`` shows the registry; ``--f`` and ``--seeds``
re-parameterize the experiments that sweep over fault counts and seeds
(unsupported options are ignored per experiment, with a notice);
``--workers`` and ``--cache-dir`` are forwarded to every experiment
that rides the sweep engine, parallelizing and memoizing their runs.

``repro-experiments sweep [options]`` enters the scenario-sweep engine
instead: a cartesian grid over models/f/n/algorithms/movements/attacks/
epsilons/seeds, executed through a pluggable backend -- serially, over
worker processes, or as one deterministic shard of a multi-host run
(``--backend sharded --shard I/N``) -- optionally against a
content-addressed cell cache (``--cache-dir``), reported as summary
tables and diameter series.
"""

from __future__ import annotations

import argparse
import inspect
import sys
from collections.abc import Sequence
from pathlib import Path

from .base import ExperimentResult
from .runner import EXPERIMENTS, render_report

__all__ = [
    "main",
    "run_with_options",
    "sweep_main",
    "cache_gc_main",
    "serve_main",
    "submit_main",
]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables, theorems and figures of 'Approximate "
            "Agreement under Mobile Byzantine Faults' (ICDCS 2016)."
        ),
        epilog=(
            "Use 'repro-experiments sweep --help' for the scenario-sweep "
            "engine (grid execution over models/f/adversaries/seeds)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="NAME",
        help="experiment names to run (default: all)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments and exit"
    )
    parser.add_argument(
        "--f",
        dest="f",
        type=int,
        default=None,
        metavar="F",
        help="number of mobile Byzantine agents for sweeping experiments",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=None,
        metavar="K",
        help="number of seeds per configuration (seeds 0..K-1)",
    )
    parser.add_argument(
        "--families",
        nargs="+",
        default=None,
        metavar="FAM",
        help=(
            "protocol families for experiments that compare algorithm "
            "families (e.g. 'families'): bonomi, tseng"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="W",
        help=(
            "worker processes for sweep-based experiments "
            "(results are identical to serial runs)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="cell-cache directory for sweep-based experiments",
    )
    return parser


def run_with_options(
    names: Sequence[str],
    f: int | None = None,
    seeds: int | None = None,
    workers: int | None = None,
    cache=None,
    families: Sequence[str] | None = None,
) -> list[ExperimentResult]:
    """Run experiments, forwarding options where supported.

    Experiments expose different parameter spellings (``f`` vs
    ``fault_counts``; ``seeds`` as an explicit tuple); this adapter
    inspects each runner's signature and forwards what fits.
    ``workers``/``cache`` reach every sweep-based experiment.
    """
    results = []
    for name in names:
        try:
            runner = EXPERIMENTS[name]
        except KeyError:
            known = ", ".join(sorted(EXPERIMENTS))
            raise KeyError(f"unknown experiment {name!r}; known: {known}") from None
        parameters = inspect.signature(runner).parameters
        kwargs: dict[str, object] = {}
        if f is not None:
            if "f" in parameters:
                kwargs["f"] = f
            elif "fault_counts" in parameters:
                kwargs["fault_counts"] = (f,)
        if seeds is not None and "seeds" in parameters:
            kwargs["seeds"] = tuple(range(seeds))
        if workers is not None and "workers" in parameters:
            kwargs["workers"] = workers
        if cache is not None and "cache" in parameters:
            kwargs["cache"] = cache
        if families is not None and "families" in parameters:
            kwargs["families"] = tuple(families)
        results.append(runner(**kwargs))
    return results


def build_sweep_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments sweep",
        description=(
            "Run a scenario sweep: the cartesian product of the given axes, "
            "each cell one simulation, executed serially, across worker "
            "processes, or as one deterministic shard of a multi-host run, "
            "on the trace-lite fast path."
        ),
    )
    parser.add_argument("--models", nargs="+", default=["M1", "M2", "M3"])
    parser.add_argument("--f", dest="fs", nargs="+", type=int, default=[1])
    parser.add_argument(
        "--n",
        dest="ns",
        nargs="+",
        type=int,
        default=None,
        help="system sizes (default: each model's Table 2 minimum)",
    )
    parser.add_argument("--algorithms", nargs="+", default=["ftm"])
    parser.add_argument(
        "--families",
        nargs="+",
        default=["bonomi"],
        help=(
            "protocol families to sweep (bonomi, tseng, witness); every "
            "other axis is crossed with each family, so e.g. "
            "'--families bonomi tseng' runs head-to-head comparisons "
            "(comma-separated lists are accepted too)"
        ),
    )
    parser.add_argument(
        "--topologies",
        nargs="+",
        default=["complete"],
        help=(
            "communication graphs to sweep, by spec (complete, ring:K, "
            "torus[:RxC], random-regular:D[:SEED]); combinations a "
            "family cannot run (complete-graph families on partial "
            "graphs) are pruned from the grid, so '--topologies "
            "complete,ring:2 --families bonomi,witness' compares "
            "witness-on-ring against bonomi-on-complete in one sweep"
        ),
    )
    parser.add_argument("--movements", nargs="+", default=["round-robin"])
    parser.add_argument("--attacks", nargs="+", default=["split"])
    parser.add_argument("--epsilons", nargs="+", type=float, default=[1e-3])
    parser.add_argument(
        "--seeds",
        type=int,
        default=4,
        metavar="K",
        help="seeds 0..K-1 per configuration (default: 4)",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=None,
        help="fixed round count (default: oracle epsilon termination)",
    )
    parser.add_argument("--max-rounds", type=int, default=1_000)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (1 = serial; results are identical)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        metavar="B",
        help=(
            "run cells in in-worker batches of B sharing one round "
            "kernel; recommended for grids of cheap cells, where "
            "per-cell dispatch would dominate (results are identical)"
        ),
    )
    parser.add_argument(
        "--cross-run",
        action="store_true",
        help=(
            "advance compatible cells (same shape, differing only in "
            "seed) together as one stacked (R, n) state array -- the "
            "cross-run vectorized engine; fastest for grids of many "
            "seeds per scenario (results are identical)"
        ),
    )
    parser.add_argument(
        "--detail",
        choices=["full", "lite"],
        default="lite",
        help="trace detail; 'lite' is the fast path (default)",
    )
    parser.add_argument(
        "--backend",
        choices=["serial", "multiprocessing", "async", "sharded"],
        default=None,
        help=(
            "execution backend (default: serial, or multiprocessing when "
            "--workers > 1); 'async' feeds the pool from a work queue "
            "with adaptive chunking; 'sharded' requires --shard"
        ),
    )
    parser.add_argument(
        "--dispatch",
        choices=["auto", "serial", "pool", "shm"],
        default="auto",
        help=(
            "override the pool heuristic: 'serial' forces in-process "
            "execution, 'pool' forces worker processes even on one "
            "usable CPU (with a warning), 'shm' forces the zero-copy "
            "shared-memory cross-run pool with work stealing (implies "
            "--cross-run; results are identical under every mode, "
            "this is a testing/benchmarking knob)"
        ),
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help=(
            "print one line per finished cell as results stream in "
            "(per chunk under the async backend)"
        ),
    )
    parser.add_argument(
        "--resume",
        default=None,
        metavar="DIR",
        help=(
            "journal completed cells to DIR and replay them on re-run: "
            "an interrupted sweep restarted with the same --resume DIR "
            "skips every finished cell and produces bit-identical "
            "aggregates"
        ),
    )
    parser.add_argument(
        "--shard",
        default=None,
        metavar="I/N",
        help=(
            "run shard I of N (0-based) of the grid and spill its results; "
            "every invocation sharing --spill-dir computes a disjoint "
            "subset, and the last one to finish reports the merged sweep"
        ),
    )
    parser.add_argument(
        "--spill-dir",
        default=None,
        metavar="DIR",
        help=(
            "shared directory for shard spill files (default: "
            "<cache-dir>/shards/<grid fingerprint> when --cache-dir is "
            "given, so different grids never mix spill files)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=(
            "content-addressed cell cache: results are looked up before "
            "executing and written through after, so re-runs of "
            "overlapping grids are near-free and interrupted sweeps resume"
        ),
    )
    parser.add_argument(
        "--probe",
        default=None,
        metavar="NAME",
        help=(
            "attach a trace probe to every cell: a registered name "
            "(e.g. send-classification) or an importable entry point "
            "'package.module:attribute' -- shards and workers resolve "
            "it by import, nothing is pickled"
        ),
    )
    parser.add_argument(
        "--cells", action="store_true", help="also print the per-cell table"
    )
    parser.add_argument(
        "--series", action="store_true", help="also print diameter trajectories"
    )
    parser.add_argument(
        "--telemetry",
        default=None,
        metavar="DIR",
        help=(
            "trace the sweep into DIR: JSON-lines span traces (one "
            "trace-<pid>.jsonl per process), sampled kernel timings, "
            "flight-recorder dumps on error cells, and a metrics.json "
            "snapshot; render it afterwards with 'sweep stats DIR' "
            "(results are identical with or without)"
        ),
    )
    return parser


def build_cache_gc_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments sweep cache-gc",
        description=(
            "Evict stale entries from a long-lived cell-cache directory: "
            "entries under superseded schema versions, entries older than "
            "a cutoff, and orphaned temp files from interrupted writes."
        ),
    )
    parser.add_argument(
        "--cache-dir",
        required=True,
        metavar="DIR",
        help="the CellStore root to compact",
    )
    parser.add_argument(
        "--older-than",
        type=float,
        default=None,
        metavar="DAYS",
        help=(
            "also evict entries last written more than DAYS days ago "
            "(default: keep all current-schema entries)"
        ),
    )
    parser.add_argument(
        "--keep-schema",
        type=int,
        nargs="+",
        default=None,
        metavar="V",
        help=(
            "schema versions to keep (default: only the current "
            "version; older versions can never be read again)"
        ),
    )
    parser.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        metavar="B",
        help=(
            "cap the store at B bytes of current entries: after the "
            "schema/age filters, the oldest surviving entries are "
            "evicted until the total fits (size-based eviction for "
            "long-lived caches on shared runners)"
        ),
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be evicted without deleting anything",
    )
    return parser


def cache_gc_main(argv: Sequence[str] | None = None) -> int:
    """``sweep cache-gc`` subcommand entry point."""
    from ..sweep import CellStore

    args = build_cache_gc_parser().parse_args(argv)
    store = CellStore(args.cache_dir)
    report = store.gc(
        older_than=None if args.older_than is None else args.older_than * 86_400,
        keep_versions=None if args.keep_schema is None else set(args.keep_schema),
        dry_run=args.dry_run,
        max_bytes=args.max_bytes,
    )
    print(f"{report.describe()} ({store.root})")
    return 0


def _parse_shard(text: str) -> tuple[int, int]:
    """Parse ``I/N`` into a (shard_index, shard_count) pair."""
    try:
        index_text, count_text = text.split("/", 1)
        return int(index_text), int(count_text)
    except ValueError:
        raise ValueError(
            f"--shard expects I/N (e.g. 0/4), got {text!r}"
        ) from None


def _progress_printer():
    """Per-result progress line: streamed as early as the backend allows."""

    def progress(result, done, total):
        if result.error is not None:
            status = "error"
        elif result.satisfied:
            status = "ok"
        else:
            status = "VIOLATED"
        print(
            f"[{done}/{total}] {result.spec.describe()}: {status} "
            f"({result.rounds} rounds)",
            flush=True,
        )

    return progress


def sweep_main(argv: Sequence[str] | None = None) -> int:
    """``sweep`` subcommand entry point; returns a process exit code."""
    from ..analysis import render_series
    from ..sweep import CellStore, GridSpec, ShardedBackend, SweepJournal, run_sweep
    from ..sweep.backends import grid_fingerprint
    from ..telemetry import get_registry, snapshot_delta

    args = build_sweep_parser().parse_args(argv)
    store = CellStore(args.cache_dir) if args.cache_dir else None
    journal = SweepJournal(args.resume) if args.resume else None
    metrics_before = get_registry().snapshot()

    def split_axis(raw: Sequence[str]) -> list[str]:
        # Both '--families a b' and '--families a,b' are accepted; specs
        # never contain commas, so splitting is unambiguous.
        return [item for chunk in raw for item in chunk.split(",") if item]

    try:
        grid = GridSpec(
            models=args.models,
            fs=args.fs,
            ns=args.ns,
            algorithms=args.algorithms,
            movements=args.movements,
            attacks=args.attacks,
            epsilons=args.epsilons,
            seeds=tuple(range(args.seeds)),
            rounds=args.rounds,
            max_rounds=args.max_rounds,
            families=split_axis(args.families),
            topologies=split_axis(args.topologies),
        )
        backend = args.backend
        if args.shard is not None and backend not in (None, "sharded"):
            raise ValueError(
                f"--shard contradicts --backend {backend}; sharding is "
                "its own backend (drop --backend or use --backend sharded)"
            )
        if args.shard is not None or backend == "sharded":
            if args.shard is None:
                raise ValueError("--backend sharded requires --shard I/N")
            shard_index, shard_count = _parse_shard(args.shard)
            spill_dir = args.spill_dir
            if spill_dir is None and args.cache_dir is not None:
                # Scope the default by grid content: the cache dir is
                # safely shared across grids, spill files are not.
                fingerprint = grid_fingerprint(list(grid.cells()))
                spill_dir = f"{args.cache_dir}/shards/{fingerprint[:12]}"
            if spill_dir is None:
                raise ValueError(
                    "sharded sweeps need --spill-dir (or --cache-dir, whose "
                    "'shards/<grid fingerprint>' subdirectory is used)"
                )
            backend = ShardedBackend(
                shard_index,
                shard_count,
                spill_dir,
                workers=args.workers,
                batch_size=args.batch_size,
            )
        print(grid.describe())
        try:
            result = run_sweep(
                grid,
                workers=args.workers,
                trace_detail=args.detail,
                backend=backend,
                cache=store,
                batch_size=args.batch_size,
                probe=args.probe,
                dispatch=args.dispatch,
                progress=_progress_printer() if args.progress else None,
                journal=journal,
                cross_run=args.cross_run,
                telemetry=args.telemetry,
            )
        finally:
            if journal is not None:
                journal.close()
    except (ValueError, TypeError, KeyError) as exc:
        # KeyError: unknown probe / family / algorithm names surface
        # here with their "known: ..." guidance.
        message = exc.args[0] if isinstance(exc, KeyError) and exc.args else exc
        print(f"sweep error: {message}", file=sys.stderr)
        return 2
    if not result.complete:
        print(
            f"shard {args.shard}: {len(result)} cells done; sibling shards "
            "outstanding (re-run the merge once all spill files exist)"
        )
    if args.cells:
        print(result.cell_table())
        print()
    print(result.summary_table())
    # The dispatch label is the evidence of *how* cells actually ran
    # (serial, pool, cross-run batches, shm + steal count); CI smoke
    # steps grep it, and identity checks diff it out.
    print(f"dispatch: {result.dispatch}")
    if args.series:
        print()
        print(render_series(result.diameter_series(), title="mean diameter"))
    if store is not None:
        stats = result.cache_stats
        rendered = stats.describe() if stats is not None else store.stats()
        print(f"cache: {rendered} ({store.root})")
    for cell in result.errors():
        print(f"ERROR {cell.spec.describe()}: {cell.error}")
    # One-line warning summary: silent conversions (error cells,
    # forced-pool dispatches on one CPU) must not vanish in the
    # aggregate tables.
    delta = snapshot_delta(metrics_before, get_registry().snapshot())
    warn_parts = []
    errors = int(delta["counters"].get("sweep.cells.error", 0))
    if errors:
        warn_parts.append(f"{errors} error cell(s)")
    forced = int(delta["counters"].get("sweep.pool.forced_one_cpu", 0))
    if forced:
        warn_parts.append(
            f"{forced} forced pool dispatch(es) on one usable cpu"
        )
    if warn_parts:
        print(f"warnings: {', '.join(warn_parts)}")
    if args.telemetry:
        print(f"telemetry: {args.telemetry}")
    if not result.complete:
        # A partial shard succeeded if its own cells did -- vacuously
        # so when the shard owns no cells (shard_count > grid size).
        return 0 if all(cell.satisfied for cell in result.cells) else 1
    return 0 if result.all_satisfied else 1


def build_stats_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments sweep stats",
        description=(
            "Render a telemetry directory (produced by 'sweep "
            "--telemetry DIR' or 'sweep serve --telemetry DIR') as "
            "human-readable tables: merged counters and histograms, "
            "per-span rollups, and any flight-recorder dumps."
        ),
    )
    parser.add_argument(
        "telemetry_dir",
        metavar="DIR",
        help="the telemetry directory to summarize",
    )
    return parser


def stats_main(argv: Sequence[str] | None = None) -> int:
    """``sweep stats`` subcommand: render a telemetry directory."""
    from ..telemetry import render_stats

    args = build_stats_parser().parse_args(argv)
    if not Path(args.telemetry_dir).is_dir():
        print(
            f"stats error: {args.telemetry_dir} is not a directory",
            file=sys.stderr,
        )
        return 2
    print(render_stats(args.telemetry_dir))
    return 0


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments sweep serve",
        description=(
            "Run the sweep daemon: a JSON-over-HTTP service that answers "
            "warm-cache grid queries straight from the cell store and "
            "schedules cold cells through the async backend."
        ),
    )
    parser.add_argument(
        "--cache-dir",
        required=True,
        metavar="DIR",
        help="the shared CellStore root backing the serving tier",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="listen port (default: 0, an OS-assigned free port)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for cold cells (results are identical)",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="log each HTTP request to stderr",
    )
    parser.add_argument(
        "--telemetry",
        default=None,
        metavar="DIR",
        help=(
            "trace every hosted sweep into DIR for the daemon's "
            "lifetime; /metrics then includes the sampled kernel "
            "counters merged back from pool workers"
        ),
    )
    return parser


def serve_main(argv: Sequence[str] | None = None) -> int:
    """``sweep serve`` subcommand: run the daemon until shut down."""
    from ..sweep import SweepServer

    args = build_serve_parser().parse_args(argv)
    server = SweepServer(
        args.cache_dir,
        host=args.host,
        port=args.port,
        workers=args.workers,
        quiet=not args.verbose,
        telemetry_dir=args.telemetry,
    )
    print(f"sweep serve: listening on {server.address}", flush=True)
    print(f"cache: {server.cache_root}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    print("sweep serve: shut down")
    return 0


def build_submit_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments sweep submit",
        description=(
            "Submit one grid to a running 'sweep serve' daemon and report "
            "its answer (including the serving tier: cache, compute, or "
            "mixed)."
        ),
    )
    parser.add_argument(
        "--url",
        required=True,
        metavar="URL",
        help="the daemon's base URL, e.g. http://127.0.0.1:8437",
    )
    parser.add_argument("--models", nargs="+", default=["M1", "M2", "M3"])
    parser.add_argument("--f", dest="fs", nargs="+", type=int, default=[1])
    parser.add_argument("--n", dest="ns", nargs="+", type=int, default=None)
    parser.add_argument("--algorithms", nargs="+", default=["ftm"])
    parser.add_argument("--families", nargs="+", default=["bonomi"])
    parser.add_argument("--topologies", nargs="+", default=["complete"])
    parser.add_argument("--movements", nargs="+", default=["round-robin"])
    parser.add_argument("--attacks", nargs="+", default=["split"])
    parser.add_argument("--epsilons", nargs="+", type=float, default=[1e-3])
    parser.add_argument("--seeds", type=int, default=4, metavar="K")
    parser.add_argument("--rounds", type=int, default=None)
    parser.add_argument("--max-rounds", type=int, default=1_000)
    parser.add_argument("--detail", choices=["full", "lite"], default="lite")
    parser.add_argument("--probe", default=None, metavar="NAME")
    parser.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        help="seconds to wait for the daemon's answer",
    )
    return parser


def submit_main(argv: Sequence[str] | None = None) -> int:
    """``sweep submit`` subcommand: one grid request to the daemon."""
    from ..sweep import submit_sweep

    args = build_submit_parser().parse_args(argv)
    grid: dict = {
        "models": args.models,
        "fs": args.fs,
        "algorithms": args.algorithms,
        "families": args.families,
        "topologies": args.topologies,
        "movements": args.movements,
        "attacks": args.attacks,
        "epsilons": args.epsilons,
        "seeds": args.seeds,
        "max_rounds": args.max_rounds,
    }
    if args.ns is not None:
        grid["ns"] = args.ns
    if args.rounds is not None:
        grid["rounds"] = args.rounds
    try:
        response = submit_sweep(
            args.url,
            grid,
            trace_detail=args.detail,
            probe=args.probe,
            timeout=args.timeout,
        )
    except (RuntimeError, OSError) as exc:
        print(f"submit error: {exc}", file=sys.stderr)
        return 2
    print(
        f"{response['cells']} cells: {response['satisfied']} ok, "
        f"{response['errors']} errors | tier={response['tier']} "
        f"(cached={response['cached']} computed={response['computed']}) "
        f"dispatch={response['dispatch']} "
        f"elapsed={response['elapsed_seconds']:.2f}s"
    )
    for row in response["summary"]:
        print("  " + " | ".join(row))
    return 0 if response["all_satisfied"] else 1


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "sweep":
        if argv[1:2] == ["cache-gc"]:
            return cache_gc_main(list(argv[2:]))
        if argv[1:2] == ["serve"]:
            return serve_main(list(argv[2:]))
        if argv[1:2] == ["submit"]:
            return submit_main(list(argv[2:]))
        if argv[1:2] == ["stats"]:
            return stats_main(list(argv[2:]))
        return sweep_main(list(argv[1:]))
    args = build_parser().parse_args(argv)
    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0
    names = args.experiments if args.experiments else list(EXPERIMENTS)
    results = run_with_options(
        names,
        f=args.f,
        seeds=args.seeds,
        workers=args.workers,
        cache=args.cache_dir,
        families=args.families,
    )
    print(render_report(results))
    return 0 if all(result.ok for result in results) else 1


if __name__ == "__main__":
    sys.exit(main())

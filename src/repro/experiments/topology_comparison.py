"""EXP-TOPO: communication topologies head-to-head.

The communication-topology subsystem (:mod:`repro.topology`) makes the
graph a sweepable axis; this experiment is the first comparison it
enables.  At matched ``(n, f)`` under model M1 and the split adversary:

* ``bonomi`` and ``tseng`` run on the complete graph (the only graph
  their scalar voting shape is defined over);
* ``witness`` (arXiv:1206.0089) runs on the complete graph, a ring
  lattice and a seeded random-regular graph -- configurations no
  complete-graph family can even *validate*.

All cells ride :func:`repro.sweep.run_sweep` with oracle epsilon
termination, so "rounds" is rounds-to-convergence.  The experiment
fails unless every cell satisfies the specification -- in particular
the witness family must actually converge (decision extent below
epsilon) on the partially-connected graphs, which is the acceptance
bar for the topology subsystem.  The rendered table is written to
``results/topology_comparison.txt`` by the benchmark wrapper.

The expected shape: witness on the full mesh decides in as few rounds
as the direct-broadcast families (its phases collapse to one round),
while on a diameter-``D`` graph each decision costs a ``D``-round
gossip phase -- connectivity buys locality at a round-complexity
price, which is exactly the paper's trade-off.
"""

from __future__ import annotations

from statistics import mean

from ..sweep import CellSpec, run_sweep
from ..topology import topology_from_spec
from .base import ExperimentResult

__all__ = ["run_topology_comparison"]

def _comparison_rows(f: int) -> tuple[tuple[str, str], ...]:
    """The (family, topology spec) rows, graph density derived from ``f``.

    The witness family needs minimum degree ``2f + 1``; the ring width
    ``k = max(3, f + 1)`` (degree ``2k``) and the matching
    random-regular degree keep the rows valid for any ``--f`` the CLI
    forwards, while staying far from complete at the default sizes.
    """
    k = max(3, f + 1)
    return (
        ("bonomi", "complete"),
        ("tseng", "complete"),
        ("witness", "complete"),
        ("witness", f"ring:{k}"),
        ("witness", f"random-regular:{2 * k}:1"),
    )


def run_topology_comparison(
    f: int = 2,
    n: int = 25,
    model: str = "M1",
    attack: str = "split",
    epsilon: float = 1e-3,
    seeds: tuple[int, ...] = (0, 1, 2, 3),
    max_rounds: int = 600,
    workers: int = 1,
    cache=None,
) -> ExperimentResult:
    """Run every (family, topology) row over identical cells.

    Defaults: ``n = 25`` at ``f = 2`` (comfortably above M1's 4f+1 =
    9, so the ring keeps a real diameter), ring lattice ``k = 3`` and
    random-regular degree 6 -- both satisfy the witness family's
    ``degree >= 2f+1 = 5`` admission rule while staying far from
    complete (degree 6 of 24).
    """
    result = ExperimentResult(
        exp_id="EXP-TOPO",
        title=(
            f"Communication topologies head-to-head at n={n}, f={f} "
            f"({model}, {attack}, oracle eps={epsilon:g})"
        ),
        headers=[
            "family",
            "topology",
            "degree",
            "diameter",
            "mean rounds",
            "max rounds",
            "mean decision diam",
            "all ok",
        ],
    )
    rows = _comparison_rows(f)
    cells = [
        CellSpec(
            model=model,
            f=f,
            n=n,
            algorithm="ftm",
            movement="round-robin",
            attack=attack,
            epsilon=epsilon,
            seed=seed,
            max_rounds=max_rounds,
            family=family,
            topology=topology,
        )
        for family, topology in rows
        for seed in seeds
    ]
    sweep = run_sweep(cells, workers=workers, cache=cache)
    by_row: dict[tuple[str, str], list] = {}
    for cell in sweep.cells:
        by_row.setdefault((cell.spec.family, cell.spec.topology), []).append(cell)

    for family, topology in rows:
        row_cells = by_row[(family, topology)]
        graph = topology_from_spec(topology, n)
        ok = all(cell.satisfied for cell in row_cells)
        converged = all(
            cell.terminated and cell.decision_diameter <= epsilon
            for cell in row_cells
        )
        rounds = [cell.rounds for cell in row_cells]
        result.add_row(
            family,
            topology,
            f"{graph.min_degree()}/{n - 1}",
            int(graph.diameter()),
            round(mean(rounds), 2),
            max(rounds),
            f"{mean(c.decision_diameter for c in row_cells):.2e}",
            ok,
        )
        if not ok:
            bad = next(c for c in row_cells if not c.satisfied)
            result.fail(
                f"{family}@{topology}: {bad.spec.describe()} violated the "
                f"spec ({bad.error or 'unsatisfied property'})"
            )
        elif not converged:
            result.fail(
                f"{family}@{topology}: did not converge below eps="
                f"{epsilon:g} within {max_rounds} rounds"
            )
        if family == "witness" and topology != "complete" and converged:
            result.add_note(
                f"witness@{topology}: converged on a non-complete graph "
                f"(degree {graph.min_degree()} of {n - 1}) in mean "
                f"{mean(rounds):.1f} rounds -- {int(graph.diameter())}-round "
                "gossip phases relay values no complete-graph family could "
                "even be configured for"
            )
    result.add_note(
        f"{len(sweep)} cells via run_sweep (workers={workers}); same seeds, "
        "same adversary RNG streams, same MSR fold -- only the protocol "
        "family and the communication graph differ"
    )
    return result

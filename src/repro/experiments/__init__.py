"""Experiment harness regenerating every paper artefact.

One module per table/theorem/figure (see DESIGN.md's per-experiment
index); ``runner.run_all`` executes the suite, ``cli`` exposes it as
``repro-experiments`` / ``python -m repro.experiments.cli``.
"""

from .base import ExperimentResult
from .convergence_exp import run_convergence
from .equivalence_exp import run_equivalence
from .lower_bounds_exp import run_lower_bounds
from .mixed_mode_exp import mixed_stall_config, run_mixed_mode
from .robustness import run_robustness
from .runner import EXPERIMENTS, render_report, run_all, run_named
from .spec_exp import run_spec_battery
from .static_vs_mobile import run_static_vs_mobile
from .family_comparison import run_family_comparison
from .table1 import run_table1
from .table2 import run_table2
from .topology_comparison import run_topology_comparison

__all__ = [
    "ExperimentResult",
    "run_table1",
    "run_table2",
    "run_lower_bounds",
    "run_equivalence",
    "run_spec_battery",
    "run_convergence",
    "run_static_vs_mobile",
    "run_mixed_mode",
    "run_robustness",
    "run_family_comparison",
    "run_topology_comparison",
    "mixed_stall_config",
    "EXPERIMENTS",
    "run_all",
    "run_named",
    "render_report",
]

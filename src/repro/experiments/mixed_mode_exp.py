"""EXP-MM: the Kieckhafer-Azadmanesh substrate bound ``n > 3a + 2s + b``.

The paper's Theorem 1 reduces mobile executions to static mixed-mode
ones, so the reproduction must demonstrate the substrate bound itself:
for a grid of ``(a, s, b)`` mixes, the spec holds at
``n = 3a + 2s + b + 1`` and an explicit camp-split adversary defeats
MSR at ``n = 3a + 2s + b`` (when ``a >= 1``; with no asymmetric faults
every receiver sees the same multiset, and the failure mode at the
bound is the reduction running out of values instead).

Both sides of every mix are declared as sweep cells
(``scenario="static-mixed"`` at the bound, ``scenario="mixed-stall"``
below it) and executed through one :func:`repro.sweep.run_sweep` call,
inheriting parallelism and caching.
"""

from __future__ import annotations

from ..analysis.metrics import trajectory_stats
from ..faults.mixed_mode import MixedModeCounts
from ..sweep import CellSpec, run_sweep
from ..sweep.scenarios import mixed_stall_config
from .base import ExperimentResult

__all__ = ["run_mixed_mode", "mixed_stall_config"]

_GRID: tuple[tuple[int, int, int], ...] = (
    (1, 0, 0),
    (0, 1, 0),
    (0, 0, 1),
    (1, 1, 0),
    (1, 0, 1),
    (0, 1, 1),
    (1, 1, 1),
    (2, 0, 0),
    (2, 1, 1),
)


def _sufficient_cell(counts: MixedModeCounts, n: int, rounds: int) -> CellSpec:
    return CellSpec(
        model="static",
        f=counts.total,
        n=n,
        algorithm="ftm",
        movement="static",
        attack="split",
        epsilon=1e-3,
        seed=0,
        rounds=rounds,
        scenario="static-mixed",
        params={
            "a": counts.asymmetric,
            "s": counts.symmetric,
            "b": counts.benign,
        },
    )


def _stall_cell(counts: MixedModeCounts, rounds: int) -> CellSpec:
    return CellSpec(
        model="static",
        f=counts.total,
        n=None,
        algorithm="ftm",
        movement="static",
        attack="split",
        epsilon=1e-3,
        seed=0,
        rounds=rounds,
        scenario="mixed-stall",
        params={
            "a": counts.asymmetric,
            "s": counts.symmetric,
            "b": counts.benign,
        },
    )


def _needs_stall_run(counts: MixedModeCounts) -> bool:
    """Whether the below-bound outcome requires a simulation at all."""
    n = counts.min_processes() - 1
    return n - counts.benign >= 2 * counts.trim_parameter + 1


def run_mixed_mode(
    rounds: int = 30, workers: int = 1, cache=None
) -> ExperimentResult:
    """Validate ``n > 3a + 2s + b`` across the fault-mix grid."""
    result = ExperimentResult(
        exp_id="EXP-MM",
        title="Mixed-mode substrate -- n > 3a + 2s + b (Kieckhafer-Azadmanesh)",
        headers=[
            "(a, s, b)",
            "bound n",
            "spec at bound n",
            "outcome at bound n - 1",
        ],
    )
    mixes = [MixedModeCounts(a, s, b) for a, s, b in _GRID]
    cells = [
        _sufficient_cell(counts, counts.min_processes(), rounds)
        for counts in mixes
    ] + [_stall_cell(counts, rounds) for counts in mixes if _needs_stall_run(counts)]
    by_key = run_sweep(cells, workers=workers, cache=cache).by_key()

    for counts in mixes:
        min_n = counts.min_processes()
        cell = by_key[_sufficient_cell(counts, min_n, rounds).key]
        if not cell.satisfied:
            result.fail(
                f"(a,s,b)=({counts.asymmetric},{counts.symmetric},"
                f"{counts.benign}) n={min_n}: "
                f"{cell.error or 'spec violated'}"
            )

        outcome = _below_bound_outcome(by_key, counts, min_n - 1, rounds, result)
        result.add_row(str(counts), min_n, cell.satisfied, outcome)
    result.add_note(
        "below the bound: camp-split stalls MSR when a >= 1; with a = 0 "
        "the reduction itself runs out of values (n - b <= 2*tau)"
    )
    return result


def _below_bound_outcome(
    by_key, counts: MixedModeCounts, n: int, rounds: int, result: ExperimentResult
) -> str:
    if not _needs_stall_run(counts):
        return "reduction impossible"
    cell = by_key[_stall_cell(counts, rounds).key]
    stats = trajectory_stats(cell.diameters, rounds=cell.rounds)
    stalled = stats.stalled_from() is not None and stats.final_diameter > 0
    if not stalled:
        result.fail(
            f"(a,s,b)={counts}: expected stall at n={n}, trajectory "
            f"{stats.trajectory[:6]}"
        )
    return "MSR stalls" if stalled else "UNEXPECTED convergence"

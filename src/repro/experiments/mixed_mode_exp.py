"""EXP-MM: the Kieckhafer-Azadmanesh substrate bound ``n > 3a + 2s + b``.

The paper's Theorem 1 reduces mobile executions to static mixed-mode
ones, so the reproduction must demonstrate the substrate bound itself:
for a grid of ``(a, s, b)`` mixes, the spec holds at
``n = 3a + 2s + b + 1`` and an explicit camp-split adversary defeats
MSR at ``n = 3a + 2s + b`` (when ``a >= 1``; with no asymmetric faults
every receiver sees the same multiset, and the failure mode at the
bound is the reduction running out of values instead).
"""

from __future__ import annotations

from ..analysis.metrics import convergence_stats
from ..api import evenly_spread_values
from ..core.specification import check_trace
from ..faults.adversary import Adversary
from ..faults.mixed_mode import MixedModeCounts, StaticFaultAssignment
from ..faults.value_strategies import SplitAttack
from ..msr.registry import make_algorithm
from ..runtime.config import SimulationConfig, StaticMixedSetup
from ..runtime.simulator import run_simulation
from ..runtime.termination import FixedRounds
from .base import ExperimentResult

__all__ = ["run_mixed_mode", "mixed_stall_config"]

_GRID: tuple[tuple[int, int, int], ...] = (
    (1, 0, 0),
    (0, 1, 0),
    (0, 0, 1),
    (1, 1, 0),
    (1, 0, 1),
    (0, 1, 1),
    (1, 1, 1),
    (2, 0, 0),
    (2, 1, 1),
)


def run_mixed_mode(rounds: int = 30) -> ExperimentResult:
    """Validate ``n > 3a + 2s + b`` across the fault-mix grid."""
    result = ExperimentResult(
        exp_id="EXP-MM",
        title="Mixed-mode substrate -- n > 3a + 2s + b (Kieckhafer-Azadmanesh)",
        headers=[
            "(a, s, b)",
            "bound n",
            "spec at bound n",
            "outcome at bound n - 1",
        ],
    )
    for a, s, b in _GRID:
        counts = MixedModeCounts(asymmetric=a, symmetric=s, benign=b)
        min_n = counts.min_processes()

        trace = run_simulation(_sufficient_config(counts, min_n, rounds))
        verdict = check_trace(trace)
        if not verdict.satisfied:
            result.fail(f"(a,s,b)=({a},{s},{b}) n={min_n}: {verdict}")

        outcome = _below_bound_outcome(counts, min_n - 1, rounds, result)
        result.add_row(str(counts), min_n, verdict.satisfied, outcome)
    result.add_note(
        "below the bound: camp-split stalls MSR when a >= 1; with a = 0 "
        "the reduction itself runs out of values (n - b <= 2*tau)"
    )
    return result


def _sufficient_config(
    counts: MixedModeCounts, n: int, rounds: int
) -> SimulationConfig:
    assignment = StaticFaultAssignment.first_processes(
        asymmetric=counts.asymmetric,
        symmetric=counts.symmetric,
        benign=counts.benign,
    )
    return SimulationConfig(
        n=n,
        f=counts.total,
        initial_values=evenly_spread_values(n),
        algorithm=make_algorithm("ftm", counts.trim_parameter),
        setup=StaticMixedSetup(
            assignment=assignment, adversary=Adversary(values=SplitAttack())
        ),
        termination=FixedRounds(rounds),
    )


def mixed_stall_config(counts: MixedModeCounts, rounds: int = 20) -> SimulationConfig:
    """The camp-split adversary at exactly ``n = 3a + 2s + b``.

    Layout (requires ``a >= 1``): the low camp holds ``a + s`` correct
    processes at 0, the high camp ``a`` correct processes at 1; the
    symmetric faults broadcast 1, the asymmetric ones send 0 to the low
    camp and 1 to the high camp.  Each camp's reduced multiset is then
    unanimous at its own value, freezing the diameter.
    """
    if counts.asymmetric < 1:
        raise ValueError("the camp-split stall needs at least one asymmetric fault")
    a, s, b = counts.asymmetric, counts.symmetric, counts.benign
    n = 3 * a + 2 * s + b
    assignment = StaticFaultAssignment.first_processes(
        asymmetric=a, symmetric=s, benign=b
    )
    initial = [0.0] * n
    high_camp_start = (a + s + b) + (a + s)
    for pid in range(high_camp_start, n):
        initial[pid] = 1.0
    return SimulationConfig(
        n=n,
        f=counts.total,
        initial_values=tuple(initial),
        algorithm=make_algorithm("ftm", counts.trim_parameter),
        setup=StaticMixedSetup(
            assignment=assignment, adversary=Adversary(values=SplitAttack())
        ),
        termination=FixedRounds(rounds),
        bound_check="ignore",
    )


def _below_bound_outcome(
    counts: MixedModeCounts, n: int, rounds: int, result: ExperimentResult
) -> str:
    tau = counts.trim_parameter
    if n - counts.benign < 2 * tau + 1:
        return "reduction impossible"
    trace = run_simulation(mixed_stall_config(counts, rounds))
    stats = convergence_stats(trace)
    stalled = stats.stalled_from() is not None and stats.final_diameter > 0
    if not stalled:
        result.fail(
            f"(a,s,b)={counts}: expected stall at n={n}, trajectory "
            f"{stats.trajectory[:6]}"
        )
    return "MSR stalls" if stalled else "UNEXPECTED convergence"

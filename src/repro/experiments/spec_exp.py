"""EXP-TH2: Theorem 2 -- the full specification battery.

Sweeps every model x algorithm x movement x attack x seed combination
at the Table 2 minimum ``n`` and checks all five properties
(Termination, eps-Agreement, Validity and the per-round P1/P2) on each
trace.  This is the reproduction of the paper's headline correctness
theorem: MSR algorithms solve Byzantine Approximate Agreement under
every mobile Byzantine model, provided ``n > n_Mi``.
"""

from __future__ import annotations

from ..api import mobile_config
from ..core.specification import check_trace
from ..faults.models import ALL_MODELS, get_semantics
from ..msr.registry import DEFAULT_ALGORITHMS
from ..runtime.simulator import run_simulation
from .base import ExperimentResult

__all__ = ["run_spec_battery"]

_MOVEMENTS = ("static", "round-robin", "random", "target-extremes")
_ATTACKS = ("split", "outlier", "noise", "echo", "oscillating", "inertia")


def run_spec_battery(
    f: int = 1,
    seeds: tuple[int, ...] = (0, 1, 2),
    algorithms: tuple[str, ...] = DEFAULT_ALGORITHMS,
    extra_processes: int = 0,
) -> ExperimentResult:
    """Run the full correctness sweep at ``n = n_Mi + extra_processes``."""
    result = ExperimentResult(
        exp_id="EXP-TH2",
        title=(
            f"Theorem 2 -- specification sweep (f={f}, "
            f"n = bound + {extra_processes})"
        ),
        headers=[
            "model",
            "n",
            "runs",
            "Termination",
            "eps-Agreement",
            "Validity",
            "P1",
            "P2",
        ],
    )
    for model in ALL_MODELS:
        n = get_semantics(model).required_n(f) + extra_processes
        runs = 0
        passed = {"term": 0, "eps": 0, "val": 0, "p1": 0, "p2": 0}
        for algorithm in algorithms:
            for movement in _MOVEMENTS:
                for attack in _ATTACKS:
                    for seed in seeds:
                        config = mobile_config(
                            model=model,
                            f=f,
                            n=n,
                            algorithm=algorithm,
                            movement=movement,
                            attack=attack,
                            seed=seed,
                            max_rounds=250,
                        )
                        trace = run_simulation(config)
                        verdict = check_trace(trace)
                        runs += 1
                        passed["term"] += bool(verdict.termination)
                        passed["eps"] += bool(verdict.epsilon_agreement)
                        passed["val"] += bool(verdict.validity)
                        passed["p1"] += bool(verdict.p1)
                        passed["p2"] += bool(verdict.p2)
                        if not verdict.all_satisfied:
                            result.fail(
                                f"{model.value} n={n} {algorithm}/{movement}/"
                                f"{attack}/seed={seed}: {verdict}"
                            )
        result.add_row(
            model.value,
            n,
            runs,
            f"{passed['term']}/{runs}",
            f"{passed['eps']}/{runs}",
            f"{passed['val']}/{runs}",
            f"{passed['p1']}/{runs}",
            f"{passed['p2']}/{runs}",
        )
    result.add_note(
        "every cell must read runs/runs: Theorem 2 guarantees all five "
        "properties for every MSR member above the bound"
    )
    return result

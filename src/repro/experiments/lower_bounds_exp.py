"""EXP-LB1..4 + EXP-OBS2: the lower-bound theorems, executed.

For every model the experiment (i) verifies the E1/E2/E3
indistinguishability triple -- the views really coincide, so *any*
deterministic algorithm is forced into an Agreement violation in E3 --
(ii) defeats each concrete MSR instance on the triple, and (iii) runs
the sustained multi-round stall at ``n = n_Mi - 1`` next to the same
adversary at ``n = n_Mi``, where convergence resumes (tightness).

Observation 2 is covered by the classical FLM triple at ``n = 3f``:
one-round computations starting with ``f`` Byzantine processes and no
cured ones obey the static bound in every model.
"""

from __future__ import annotations

from ..analysis.metrics import convergence_stats
from ..core.lower_bounds import (
    classical_static_scenario,
    lower_bound_scenario,
    run_algorithm_on_scenario,
    stall_configuration,
)
from ..core.mapping import msr_trim_parameter
from ..core.specification import check_trace
from ..faults.models import ALL_MODELS
from ..msr.registry import DEFAULT_ALGORITHMS, make_algorithm
from ..runtime.simulator import run_simulation
from .base import ExperimentResult

__all__ = ["run_lower_bounds"]


def run_lower_bounds(
    fault_counts: tuple[int, ...] = (1, 2),
    algorithms: tuple[str, ...] = DEFAULT_ALGORITHMS,
) -> ExperimentResult:
    """Run all lower-bound reproductions."""
    result = ExperimentResult(
        exp_id="EXP-LB",
        title="Theorems 3-6 -- lower bounds via E1/E2/E3 and sustained stalls",
        headers=[
            "model",
            "f",
            "n",
            "views match",
            "forced E3 decisions",
            "MSR defeated",
            "stall diameter",
            "converges at n+1",
        ],
    )
    for model in ALL_MODELS:
        for f in fault_counts:
            scenario = lower_bound_scenario(model, f)
            verification = scenario.verify()
            views_match = all(match.matches for match in verification.matches)
            if not verification.proves_impossibility:
                result.fail(f"{model.value} f={f}: triple inconclusive")

            defeated = _defeat_all(model, f, algorithms, scenario, result)
            stall_diameter, recovers = _stall_and_recover(
                model, f, algorithms[0], result
            )

            result.add_row(
                model.value,
                f,
                scenario.n,
                views_match,
                str(dict(verification.forced_decisions)),
                defeated,
                stall_diameter,
                recovers,
            )

    _observation2(result)
    result.add_note(
        "'views match': each correct camp's E3 multiset equals its E1/E2 "
        "multiset, so any deterministic algorithm repeats contradictory "
        "choices inside E3 (Simple Approximate Agreement violated)"
    )
    return result


def _defeat_all(model, f, algorithms, scenario, result: ExperimentResult) -> bool:
    """Every concrete MSR instance must violate agreement on the triple."""
    tau = msr_trim_parameter(model, f)
    all_defeated = True
    for name in algorithms:
        function = make_algorithm(name, tau)
        defeat = run_algorithm_on_scenario(scenario, function)
        if not defeat.defeated:
            all_defeated = False
            result.fail(
                f"{model.value} f={f} {name}: survived the E-triple "
                f"(decisions {defeat.decisions['E3']})"
            )
    return all_defeated


def _stall_and_recover(model, f, algorithm_name, result: ExperimentResult):
    """Stall diameter at the bound; spec verdict one process above it."""
    tau = msr_trim_parameter(model, f)
    function = make_algorithm(algorithm_name, tau)

    stall_trace = run_simulation(stall_configuration(model, f, function, rounds=20))
    stats = convergence_stats(stall_trace)
    if stats.stalled_from() is None or stats.final_diameter <= 0:
        result.fail(
            f"{model.value} f={f}: expected sustained stall, trajectory "
            f"{stats.trajectory[:6]}..."
        )

    recover_config = stall_configuration(
        model, f, function, rounds=60, extra_processes=1
    )
    recover_trace = run_simulation(recover_config)
    recover_stats = convergence_stats(recover_trace)
    recovers = recover_stats.final_diameter <= 1e-3
    if not recovers:
        result.fail(
            f"{model.value} f={f}: same adversary at n+1 should converge, "
            f"final diameter {recover_stats.final_diameter:.3g}"
        )
    # Validity must hold even while stalled (the stall breaks agreement,
    # never safety).
    verdict = check_trace(stall_trace)
    if not verdict.validity:
        result.fail(f"{model.value} f={f}: stall violated Validity: {verdict.validity}")
    return stats.final_diameter, recovers


def _observation2(result: ExperimentResult) -> None:
    """Observation 2: one-round, cured-free computations face n >= 3f+1."""
    for f in (1, 2):
        scenario = classical_static_scenario(f)
        verification = scenario.verify()
        if not verification.proves_impossibility:
            result.fail(f"Observation 2 triple failed for f={f}")
        result.add_row(
            "static (Obs. 2)",
            f,
            scenario.n,
            all(m.matches for m in verification.matches),
            str(dict(verification.forced_decisions)),
            "-",
            "-",
            "-",
        )

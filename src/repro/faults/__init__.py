"""Fault models: mobile Byzantine agents and static mixed-mode faults.

Implements the failure models of the paper's Section 3 (the four mobile
Byzantine variants M1-M4) and the static mixed-mode model of
Kieckhafer-Azadmanesh that the paper maps them onto, together with the
adversary strategy library driving worst-case executions.
"""

from .adversary import Adversary
from .mixed_mode import FaultClass, MixedModeCounts, StaticFaultAssignment
from .models import (
    ALL_MODELS,
    CuredSendBehavior,
    MobileModel,
    ModelSemantics,
    get_semantics,
)
from .movement import (
    AlternatingPools,
    MovementStrategy,
    RandomJump,
    RoundRobinWalk,
    ScriptedMovement,
    StaticAgents,
    TargetExtremes,
)
from .states import FailureState
from .value_strategies import (
    EchoCorrect,
    FixedValue,
    InertiaAttack,
    OscillatingAttack,
    OutlierAttack,
    RandomNoise,
    SplitAttack,
    ValueStrategy,
)
from .view import AdversaryView

__all__ = [
    "FailureState",
    "FaultClass",
    "MixedModeCounts",
    "StaticFaultAssignment",
    "MobileModel",
    "ModelSemantics",
    "CuredSendBehavior",
    "get_semantics",
    "ALL_MODELS",
    "AdversaryView",
    "Adversary",
    "MovementStrategy",
    "StaticAgents",
    "RoundRobinWalk",
    "RandomJump",
    "AlternatingPools",
    "TargetExtremes",
    "ScriptedMovement",
    "ValueStrategy",
    "FixedValue",
    "SplitAttack",
    "OutlierAttack",
    "RandomNoise",
    "EchoCorrect",
    "OscillatingAttack",
    "InertiaAttack",
]

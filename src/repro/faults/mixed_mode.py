"""The static Mixed-Mode fault model of Kieckhafer-Azadmanesh [11].

The paper's central technique maps every mobile Byzantine model onto
this static model, in which each faulty process permanently exhibits one
of three behaviours (paper Definitions 1-3):

* **benign** -- self-incriminating, immediately evident to all non-faulty
  processes (e.g. a detected omission in a synchronous round);
* **symmetric** -- arbitrary but perceived *identically* by every
  non-faulty process (e.g. broadcasting one wrong value to everybody);
* **asymmetric** -- fully arbitrary, possibly different towards every
  non-faulty process (the classical Byzantine fault).

The MSR resilience bound in this model is ``n > 3a + 2s + b``
(Kieckhafer-Azadmanesh), which the paper instantiates per mobile model
to obtain its Table 2.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Mapping
from dataclasses import dataclass

__all__ = ["FaultClass", "MixedModeCounts", "StaticFaultAssignment"]


class FaultClass(enum.Enum):
    """The three static fault behaviours of the mixed-mode model."""

    BENIGN = "benign"
    SYMMETRIC = "symmetric"
    ASYMMETRIC = "asymmetric"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class MixedModeCounts:
    """Fault counts ``(a, s, b)`` of a mixed-mode configuration.

    ``asymmetric`` is the paper's ``a``, ``symmetric`` its ``s`` and
    ``benign`` its ``b``.  The class carries the two derived quantities
    the whole reproduction revolves around: the resilience bound
    ``n > 3a + 2s + b`` and the MSR trim parameter ``tau = a + s``.
    """

    asymmetric: int = 0
    symmetric: int = 0
    benign: int = 0

    def __post_init__(self) -> None:
        for name in ("asymmetric", "symmetric", "benign"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} count must be non-negative")

    @property
    def total(self) -> int:
        """Total number of non-correct processes ``a + s + b``."""
        return self.asymmetric + self.symmetric + self.benign

    @property
    def trim_parameter(self) -> int:
        """The MSR reduction parameter ``tau = a + s``.

        Benign faults need no trimming: their omissions are detected
        during the receive phase and simply absent from the multiset.
        """
        return self.asymmetric + self.symmetric

    def min_processes(self) -> int:
        """The smallest ``n`` satisfying ``n > 3a + 2s + b``."""
        return 3 * self.asymmetric + 2 * self.symmetric + self.benign + 1

    def satisfied_by(self, n: int) -> bool:
        """Return whether ``n`` processes satisfy the resilience bound."""
        return n >= self.min_processes()

    def __str__(self) -> str:
        return (
            f"(a={self.asymmetric}, s={self.symmetric}, b={self.benign})"
        )


class StaticFaultAssignment:
    """A fixed assignment of fault classes to process identifiers.

    Used by the static mixed-mode fault controller: the same processes
    misbehave in the same way every round, which is exactly the setting
    of [11] that the paper's Theorem 1 reduces mobile executions to.
    """

    def __init__(self, assignment: Mapping[int, FaultClass]) -> None:
        self._assignment = dict(assignment)
        for pid in self._assignment:
            if pid < 0:
                raise ValueError(f"invalid process id {pid}")

    @classmethod
    def first_processes(
        cls, asymmetric: int = 0, symmetric: int = 0, benign: int = 0
    ) -> "StaticFaultAssignment":
        """Assign classes to the lowest process ids, in (a, s, b) order.

        Convenient for experiments: with full-mesh communication and
        value-symmetric strategies, *which* processes are faulty does not
        affect the results, only how many of each class.
        """
        assignment: dict[int, FaultClass] = {}
        pid = 0
        for count, fault_class in (
            (asymmetric, FaultClass.ASYMMETRIC),
            (symmetric, FaultClass.SYMMETRIC),
            (benign, FaultClass.BENIGN),
        ):
            for _ in range(count):
                assignment[pid] = fault_class
                pid += 1
        return cls(assignment)

    @property
    def counts(self) -> MixedModeCounts:
        """The ``(a, s, b)`` counts of this assignment."""
        values = list(self._assignment.values())
        return MixedModeCounts(
            asymmetric=values.count(FaultClass.ASYMMETRIC),
            symmetric=values.count(FaultClass.SYMMETRIC),
            benign=values.count(FaultClass.BENIGN),
        )

    @property
    def faulty_ids(self) -> frozenset[int]:
        """Identifiers of all non-correct processes."""
        return frozenset(self._assignment)

    def fault_class(self, pid: int) -> FaultClass | None:
        """Return the fault class of ``pid``, or ``None`` if correct."""
        return self._assignment.get(pid)

    def ids_of(self, fault_class: FaultClass) -> frozenset[int]:
        """Identifiers assigned the given class."""
        return frozenset(
            pid for pid, cls_ in self._assignment.items() if cls_ is fault_class
        )

    def validate_for(self, n: int) -> None:
        """Check every assigned id exists among ``n`` processes."""
        out_of_range = [pid for pid in self._assignment if pid >= n]
        if out_of_range:
            raise ValueError(
                f"fault assignment references process ids {out_of_range} "
                f"but the system has only n={n} processes"
            )

    def items(self) -> Iterable[tuple[int, FaultClass]]:
        """Iterate over ``(pid, fault_class)`` pairs."""
        return self._assignment.items()

    def __len__(self) -> int:
        return len(self._assignment)

    def __repr__(self) -> str:
        return f"StaticFaultAssignment({self._assignment!r})"

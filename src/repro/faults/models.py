"""The four synchronous Mobile Byzantine Fault models (paper Section 3).

Each model fixes (i) *when* agents move relative to the round structure,
(ii) whether a cured process is *aware* of its state, and (iii) what a
cured process consequently does during the send phase:

* **M1 -- Garay [24]**: agents move at the beginning of each round;
  cured processes know they are cured and stay *silent* for one round
  (a detected omission -> benign fault in the mixed-mode image).
* **M2 -- Bonnet et al. [22]**: agents move at the beginning of each
  round; cured processes do not know their state and broadcast their
  (possibly corrupted) value -- the same value to everybody (symmetric).
* **M3 -- Sasaki et al. [25]**: like M2, but the departing agent also
  prepares the outgoing message queue, so a cured process sends possibly
  *different* values to different processes for one extra round
  (asymmetric).
* **M4 -- Buhrman et al. [23]**: agents move *with the messages*; cured
  processes are aware, and no cured process ever executes a send phase
  (the Byzantine send of the old host *is* the movement).

The replica requirements (paper Table 2) follow from the mixed-mode
images via ``n > 3a + 2s + b``: M1 ``n > 4f``, M2 ``n > 5f``,
M3 ``n > 6f``, M4 ``n > 3f``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .mixed_mode import MixedModeCounts

__all__ = [
    "MobileModel",
    "CuredSendBehavior",
    "ModelSemantics",
    "get_semantics",
    "ALL_MODELS",
]


class MobileModel(enum.Enum):
    """Identifier of a mobile Byzantine fault model variant."""

    GARAY = "M1"
    BONNET = "M2"
    SASAKI = "M3"
    BUHRMAN = "M4"

    def __str__(self) -> str:
        return self.value


class CuredSendBehavior(enum.Enum):
    """What a cured process does during the send phase."""

    #: Cured process knows its state and skips the send (M1).
    SILENT = "silent"
    #: Cured process broadcasts its corrupted state, identically to all (M2).
    BROADCAST_STATE = "broadcast-state"
    #: Cured process sends an agent-planted queue, per-recipient (M3).
    PLANTED_QUEUE = "planted-queue"
    #: No process is ever cured at send time (M4).
    NOT_APPLICABLE = "n/a"


@dataclass(frozen=True)
class ModelSemantics:
    """Executable semantics of one mobile Byzantine fault model."""

    model: MobileModel
    display_name: str
    citation: str
    #: Whether a cured process can diagnose its own cured state.
    cured_aware: bool
    #: Whether agents move with messages (M4) rather than at round start.
    moves_with_message: bool
    cured_send: CuredSendBehavior
    #: Table 2 coefficient ``c`` in the requirement ``n > c * f``.
    replica_coefficient: int

    def required_n(self, f: int) -> int:
        """Minimum number of processes tolerating ``f`` agents (Table 2).

        The paper states the requirement as ``n > c*f``; the minimum
        integer satisfying it is ``c*f + 1``.
        """
        _require_nonnegative_f(f)
        if f == 0:
            return 1
        return self.replica_coefficient * f + 1

    def tolerates(self, n: int, f: int) -> bool:
        """Return whether ``n`` processes satisfy the Table 2 bound."""
        _require_nonnegative_f(f)
        return n >= self.required_n(f)

    def max_faults(self, n: int) -> int:
        """Largest ``f`` such that ``n > c*f`` (0 if none)."""
        if n < 1:
            raise ValueError(f"n must be positive, got {n}")
        return max(0, (n - 1) // self.replica_coefficient)

    def mixed_mode_counts(self, f: int, cured: int | None = None) -> MixedModeCounts:
        """The mixed-mode image of a round with ``f`` agents, ``cured`` cured.

        This is the paper's Table 1 / Lemmas 1-4.  ``cured`` defaults to
        ``f``, the per-round worst case (Corollary 1).
        """
        _require_nonnegative_f(f)
        if cured is None:
            cured = f
        if cured < 0 or cured > f:
            raise ValueError(
                f"cured count must be in [0, f={f}], got {cured} (Corollary 1)"
            )
        if self.model is MobileModel.GARAY:
            return MixedModeCounts(asymmetric=f, benign=cured)
        if self.model is MobileModel.BONNET:
            return MixedModeCounts(asymmetric=f, symmetric=cured)
        if self.model is MobileModel.SASAKI:
            return MixedModeCounts(asymmetric=f + cured)
        return MixedModeCounts(asymmetric=f)

    def trim_parameter(self, f: int) -> int:
        """The MSR reduction parameter ``tau = a + s`` (worst case)."""
        return self.mixed_mode_counts(f).trim_parameter

    def __str__(self) -> str:
        return f"{self.model.value} ({self.display_name})"


_SEMANTICS: dict[MobileModel, ModelSemantics] = {
    MobileModel.GARAY: ModelSemantics(
        model=MobileModel.GARAY,
        display_name="Garay's model",
        citation="Garay, WDAG 1994 [24]",
        cured_aware=True,
        moves_with_message=False,
        cured_send=CuredSendBehavior.SILENT,
        replica_coefficient=4,
    ),
    MobileModel.BONNET: ModelSemantics(
        model=MobileModel.BONNET,
        display_name="Bonnet et al.'s model",
        citation="Bonnet, Defago, Nguyen, Potop-Butucaru, DISC 2014 [22]",
        cured_aware=False,
        moves_with_message=False,
        cured_send=CuredSendBehavior.BROADCAST_STATE,
        replica_coefficient=5,
    ),
    MobileModel.SASAKI: ModelSemantics(
        model=MobileModel.SASAKI,
        display_name="Sasaki et al.'s model",
        citation="Sasaki, Yamauchi, Kijima, Yamashita, OPODIS 2013 [25]",
        cured_aware=False,
        moves_with_message=False,
        cured_send=CuredSendBehavior.PLANTED_QUEUE,
        replica_coefficient=6,
    ),
    MobileModel.BUHRMAN: ModelSemantics(
        model=MobileModel.BUHRMAN,
        display_name="Buhrman's model",
        citation="Buhrman, Garay, Hoepman, FTCS 1995 [23]",
        cured_aware=True,
        moves_with_message=True,
        cured_send=CuredSendBehavior.NOT_APPLICABLE,
        replica_coefficient=3,
    ),
}

#: All four models, in the paper's M1..M4 order.
ALL_MODELS: tuple[MobileModel, ...] = (
    MobileModel.GARAY,
    MobileModel.BONNET,
    MobileModel.SASAKI,
    MobileModel.BUHRMAN,
)


def get_semantics(model: MobileModel | str) -> ModelSemantics:
    """Look up the semantics of a model, accepting ``"M1"``-style names."""
    if isinstance(model, str):
        normalized = model.strip().upper()
        for candidate in MobileModel:
            if candidate.value == normalized or candidate.name == normalized:
                model = candidate
                break
        else:
            known = ", ".join(m.value for m in MobileModel)
            raise KeyError(f"unknown mobile model {model!r}; known: {known}")
    return _SEMANTICS[model]


def _require_nonnegative_f(f: int) -> None:
    if f < 0:
        raise ValueError(f"f must be non-negative, got {f}")

"""The adversary: a movement strategy paired with a value strategy.

The paper's adversary "controls Byzantine agents and moves them from one
process to another" (Section 1) and, while an agent sits on a process,
chooses every message it sends and every value it leaves in memory.
:class:`Adversary` bundles the two orthogonal policies; the fault
controller in :mod:`repro.runtime` consults it at the model-appropriate
moments.
"""

from __future__ import annotations

import random
from collections.abc import Iterable

from .movement import MovementStrategy, StaticAgents
from .value_strategies import SplitAttack, ValueStrategy
from .view import AdversaryView

__all__ = ["Adversary"]


class Adversary:
    """A complete adversary: where agents go and what they make hosts say."""

    def __init__(
        self,
        movement: MovementStrategy | None = None,
        values: ValueStrategy | None = None,
    ) -> None:
        self.movement = movement if movement is not None else StaticAgents()
        self.values = values if values is not None else SplitAttack()

    # -- movement -------------------------------------------------------------

    def initial_positions(self, n: int, f: int, rng: random.Random) -> frozenset[int]:
        """Agent placement for round 0."""
        return self.movement.initial_positions(n, f, rng)

    def next_positions(self, view: AdversaryView) -> frozenset[int]:
        """Agent placement after the next movement step."""
        return self.movement.next_positions(view)

    # -- values ---------------------------------------------------------------

    def attack_message(
        self, view: AdversaryView, sender: int, recipient: int | None
    ) -> float:
        """Message a faulty ``sender`` sends to ``recipient`` (None = symmetric)."""
        return self.values.attack_message(view, sender, recipient)

    def attack_outbox(
        self, view: AdversaryView, sender: int, recipients: Iterable[int]
    ) -> dict[int, float]:
        """A faulty ``sender``'s whole per-recipient outbox in one call.

        Bit-identical to calling :meth:`attack_message` per recipient in
        order (see :meth:`ValueStrategy.attack_outbox`); the fault
        controllers use this batch form on their hot path.  A subclass
        that overrides the per-message :meth:`attack_message` is still
        honoured: the batch form detects the override and loops through
        it.
        """
        if type(self).attack_message is not Adversary.attack_message:
            attack = self.attack_message
            return {
                recipient: attack(view, sender, recipient)
                for recipient in recipients
            }
        return self.values.attack_outbox(view, sender, recipients)

    def attack_camps(self, view: AdversaryView, sender: int):
        """The sender's outbox as recipient camps, or ``None``.

        A subclass that re-routes either the per-message or the batch
        hook opts out of camp planning -- the underlying strategy's
        camps could silently disagree with the override.
        """
        if (
            type(self).attack_message is not Adversary.attack_message
            or type(self).attack_outbox is not Adversary.attack_outbox
        ):
            return None
        return self.values.attack_camps(view, sender)

    def departure_value(self, view: AdversaryView, pid: int) -> float:
        """Memory contents the agent leaves behind when departing ``pid``."""
        return self.values.departure_value(view, pid)

    def planted_message(
        self, view: AdversaryView, sender: int, recipient: int
    ) -> float:
        """M3 planted-queue message from cured ``sender`` to ``recipient``."""
        return self.values.planted_message(view, sender, recipient)

    def planted_outbox(
        self, view: AdversaryView, sender: int, recipients: Iterable[int]
    ) -> dict[int, float]:
        """A cured ``sender``'s whole M3 planted queue in one call."""
        if type(self).planted_message is not Adversary.planted_message:
            planted = self.planted_message
            return {
                recipient: planted(view, sender, recipient)
                for recipient in recipients
            }
        return self.values.planted_outbox(view, sender, recipients)

    def planted_camps(self, view: AdversaryView, sender: int):
        """A cured sender's M3 planted queue as recipient camps, or ``None``.

        Mirrors :meth:`attack_camps`: a subclass that re-routes either
        planted hook opts out, because the strategy's camps could
        silently disagree with the override.
        """
        if (
            type(self).planted_message is not Adversary.planted_message
            or type(self).planted_outbox is not Adversary.planted_outbox
        ):
            return None
        return self.values.planted_camps(view, sender)

    @property
    def shares_round_outboxes(self) -> bool:
        """Whether one outbox per round serves every sender.

        True when the value strategy declares itself sender-agnostic
        (see :attr:`ValueStrategy.sender_agnostic`) and no subclass
        re-routed the per-message hooks.  Fault controllers then build
        each round's attack (and planted) outbox once and share the
        mapping across all faulty (cured) processes -- the values are
        identical by the sender-agnostic contract.
        """
        return (
            self.values.sender_agnostic
            and type(self).attack_message is Adversary.attack_message
            and type(self).planted_message is Adversary.planted_message
        )

    @property
    def shares_scalar_values(self) -> bool:
        """Whether one departure/compute value per view serves every host.

        Both scalar corruption hooks default to the symmetric attack
        value ``attack_message(view, pid, None)``; for a sender-agnostic
        strategy that value is independent of ``pid`` and consumes no
        per-call randomness, so the fault controllers compute it once
        per view and fan it out across all cured/occupied processes.
        Any override of either scalar hook -- on the strategy or on an
        Adversary subclass -- opts out, because the override may read
        ``pid``.
        """
        return (
            self.values.sender_agnostic
            and type(self).departure_value is Adversary.departure_value
            and type(self).corrupted_compute is Adversary.corrupted_compute
            and type(self.values).departure_value
            is ValueStrategy.departure_value
            and type(self.values).corrupted_compute
            is ValueStrategy.corrupted_compute
        )

    def corrupted_compute(self, view: AdversaryView, pid: int) -> float:
        """State an occupied process's computation phase ends with."""
        return self.values.corrupted_compute(view, pid)

    def describe(self) -> str:
        """Short description used in experiment tables."""
        return f"{self.movement.describe()}+{self.values.describe()}"

    def __repr__(self) -> str:
        return (
            f"Adversary(movement={self.movement!r}, values={self.values!r})"
        )

"""The adversary: a movement strategy paired with a value strategy.

The paper's adversary "controls Byzantine agents and moves them from one
process to another" (Section 1) and, while an agent sits on a process,
chooses every message it sends and every value it leaves in memory.
:class:`Adversary` bundles the two orthogonal policies; the fault
controller in :mod:`repro.runtime` consults it at the model-appropriate
moments.
"""

from __future__ import annotations

import random

from .movement import MovementStrategy, StaticAgents
from .value_strategies import SplitAttack, ValueStrategy
from .view import AdversaryView

__all__ = ["Adversary"]


class Adversary:
    """A complete adversary: where agents go and what they make hosts say."""

    def __init__(
        self,
        movement: MovementStrategy | None = None,
        values: ValueStrategy | None = None,
    ) -> None:
        self.movement = movement if movement is not None else StaticAgents()
        self.values = values if values is not None else SplitAttack()

    # -- movement -------------------------------------------------------------

    def initial_positions(self, n: int, f: int, rng: random.Random) -> frozenset[int]:
        """Agent placement for round 0."""
        return self.movement.initial_positions(n, f, rng)

    def next_positions(self, view: AdversaryView) -> frozenset[int]:
        """Agent placement after the next movement step."""
        return self.movement.next_positions(view)

    # -- values ---------------------------------------------------------------

    def attack_message(
        self, view: AdversaryView, sender: int, recipient: int | None
    ) -> float:
        """Message a faulty ``sender`` sends to ``recipient`` (None = symmetric)."""
        return self.values.attack_message(view, sender, recipient)

    def departure_value(self, view: AdversaryView, pid: int) -> float:
        """Memory contents the agent leaves behind when departing ``pid``."""
        return self.values.departure_value(view, pid)

    def planted_message(
        self, view: AdversaryView, sender: int, recipient: int
    ) -> float:
        """M3 planted-queue message from cured ``sender`` to ``recipient``."""
        return self.values.planted_message(view, sender, recipient)

    def corrupted_compute(self, view: AdversaryView, pid: int) -> float:
        """State an occupied process's computation phase ends with."""
        return self.values.corrupted_compute(view, pid)

    def describe(self) -> str:
        """Short description used in experiment tables."""
        return f"{self.movement.describe()}+{self.values.describe()}"

    def __repr__(self) -> str:
        return (
            f"Adversary(movement={self.movement!r}, values={self.values!r})"
        )

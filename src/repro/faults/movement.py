"""Agent movement strategies: where the mobile Byzantine agents go.

Section 3 of the paper: between rounds, the adversary may move each of
its ``f`` agents arbitrarily (for M4, the move happens with the
message).  A :class:`MovementStrategy` chooses the set of occupied
processes each round; the fault controller enforces the model's timing.

Strategies must return at most ``f`` positions.  Staying put is always
allowed ("agents *can* move" -- they do not have to), which is what
:class:`StaticAgents` exploits to degenerate the mobile model into the
classical static Byzantine model for comparison experiments.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections.abc import Sequence

try:  # numpy is optional: every strategy has a scalar path.
    import numpy as _np
except Exception:  # pragma: no cover - exercised only without numpy
    _np = None

from .view import AdversaryView

__all__ = [
    "MovementStrategy",
    "StaticAgents",
    "RoundRobinWalk",
    "RandomJump",
    "AlternatingPools",
    "TargetExtremes",
    "ScriptedMovement",
]


class MovementStrategy(ABC):
    """Base class for agent movement policies."""

    @abstractmethod
    def initial_positions(self, n: int, f: int, rng: random.Random) -> frozenset[int]:
        """Agent positions at round 0 (no process is cured yet)."""

    @abstractmethod
    def next_positions(self, view: AdversaryView) -> frozenset[int]:
        """Agent positions for the next movement step."""

    def describe(self) -> str:
        """Short name used in experiment tables."""
        return type(self).__name__

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"

    @staticmethod
    def _validate(positions: frozenset[int], n: int, f: int) -> frozenset[int]:
        if len(positions) > f:
            raise ValueError(
                f"movement placed {len(positions)} agents but only f={f} exist"
            )
        if positions and (min(positions) < 0 or max(positions) >= n):
            bad = [pid for pid in positions if pid < 0 or pid >= n]
            raise ValueError(f"movement placed agents on invalid ids {bad}")
        return positions


class StaticAgents(MovementStrategy):
    """Agents never move: the classical static Byzantine special case."""

    def __init__(self, positions: Sequence[int] | None = None) -> None:
        self._fixed = None if positions is None else frozenset(positions)

    def initial_positions(self, n: int, f: int, rng: random.Random) -> frozenset[int]:
        positions = self._fixed if self._fixed is not None else frozenset(range(f))
        return self._validate(positions, n, f)

    def next_positions(self, view: AdversaryView) -> frozenset[int]:
        return view.positions

    def describe(self) -> str:
        return "static"


class RoundRobinWalk(MovementStrategy):
    """Agents sweep the ring: positions shift by ``stride`` each round.

    With the default ``stride = f`` every process is eventually visited,
    maximising the number of distinct processes that experience the
    cured state -- the canonical "perturbation sweeping across the
    network" scenario from the paper's introduction.
    """

    def __init__(self, stride: int | None = None) -> None:
        if stride is not None and stride < 1:
            raise ValueError("stride must be >= 1")
        self.stride = stride

    def initial_positions(self, n: int, f: int, rng: random.Random) -> frozenset[int]:
        return self._validate(frozenset(range(min(f, n))), n, f)

    def next_positions(self, view: AdversaryView) -> frozenset[int]:
        stride = self.stride if self.stride is not None else max(view.f, 1)
        positions = view.positions
        if _np is not None and len(positions) >= 32:
            # Same set, computed in one vector op: frozenset equality
            # (and iteration order, which hashes by value for small
            # ints) is independent of construction order.
            stepped = _np.fromiter(positions, dtype=_np.int64, count=len(positions))
            moved = frozenset(((stepped + stride) % view.n).tolist())
        else:
            moved = frozenset((pid + stride) % view.n for pid in positions)
        return self._validate(moved, view.n, view.f)

    def describe(self) -> str:
        return f"round-robin(stride={self.stride or 'f'})"


class RandomJump(MovementStrategy):
    """Each round the agents jump to a fresh uniformly random subset.

    ``move_probability`` below 1.0 makes each round's jump conditional,
    producing bursty occupations (agents linger, then scatter).
    """

    def __init__(self, move_probability: float = 1.0) -> None:
        if not 0.0 <= move_probability <= 1.0:
            raise ValueError("move_probability must be within [0, 1]")
        self.move_probability = move_probability

    def initial_positions(self, n: int, f: int, rng: random.Random) -> frozenset[int]:
        count = min(f, n)
        return self._validate(frozenset(rng.sample(range(n), count)), n, f)

    def next_positions(self, view: AdversaryView) -> frozenset[int]:
        if view.rng.random() > self.move_probability:
            return view.positions
        count = min(view.f, view.n)
        return self._validate(
            frozenset(view.rng.sample(range(view.n), count)), view.n, view.f
        )

    def describe(self) -> str:
        if self.move_probability >= 1.0:
            return "random-jump"
        return f"random-jump(p={self.move_probability:g})"


class AlternatingPools(MovementStrategy):
    """Agents alternate between two disjoint pools of processes.

    The workhorse of the lower-bound stall scenarios: the pool vacated
    this round is exactly the cured set of the next round, so the
    adversary sustains ``|cured| = f`` forever (the per-round worst case
    of Corollary 1).
    """

    def __init__(self, pool_a: Sequence[int], pool_b: Sequence[int]) -> None:
        self.pool_a = frozenset(pool_a)
        self.pool_b = frozenset(pool_b)
        if self.pool_a & self.pool_b:
            raise ValueError("pools must be disjoint")
        if not self.pool_a or not self.pool_b:
            raise ValueError("pools must be non-empty")

    def initial_positions(self, n: int, f: int, rng: random.Random) -> frozenset[int]:
        return self._validate(self.pool_a, n, f)

    def next_positions(self, view: AdversaryView) -> frozenset[int]:
        target = self.pool_b if view.positions == self.pool_a else self.pool_a
        return self._validate(target, view.n, view.f)

    def describe(self) -> str:
        return "alternating-pools"


class TargetExtremes(MovementStrategy):
    """Occupy the processes holding the most extreme values.

    A greedy adversary that corrupts whichever processes currently
    anchor the ends of the correct range, maximising the information
    destroyed per move.
    """

    def initial_positions(self, n: int, f: int, rng: random.Random) -> frozenset[int]:
        return self._validate(frozenset(range(min(f, n))), n, f)

    def next_positions(self, view: AdversaryView) -> frozenset[int]:
        candidates = sorted(
            view.values, key=lambda pid: (view.values[pid], pid)
        )
        picked: set[int] = set()
        low, high = 0, len(candidates) - 1
        # Alternate ends so both extremes lose their anchors.
        while len(picked) < min(view.f, view.n) and low <= high:
            picked.add(candidates[low])
            low += 1
            if len(picked) < min(view.f, view.n) and low <= high:
                picked.add(candidates[high])
                high -= 1
        return self._validate(frozenset(picked), view.n, view.f)

    def describe(self) -> str:
        return "target-extremes"


class ScriptedMovement(MovementStrategy):
    """Positions read from an explicit per-movement script.

    ``script[0]`` is the initial placement; each subsequent call to
    :meth:`next_positions` consumes the next entry (one call happens per
    movement step).  Steps beyond the script's end repeat the last
    entry.  Used by regression tests to pin exact executions (e.g. the
    E1/E2/E3 constructions).
    """

    def __init__(self, script: Sequence[Sequence[int]]) -> None:
        if not script:
            raise ValueError("script must contain at least one entry")
        self.script = [frozenset(entry) for entry in script]
        self._step = 0

    def initial_positions(self, n: int, f: int, rng: random.Random) -> frozenset[int]:
        self._step = 1
        return self._validate(self.script[0], n, f)

    def next_positions(self, view: AdversaryView) -> frozenset[int]:
        index = min(self._step, len(self.script) - 1)
        self._step += 1
        return self._validate(self.script[index], view.n, view.f)

    def describe(self) -> str:
        return f"scripted({len(self.script)} steps)"

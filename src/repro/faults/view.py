"""The omniscient adversary's view of a round.

Mobile Byzantine agents are computationally unbounded and, in the worst
case, fully informed: strategies receive a snapshot of the entire system
state at the moment they act.  Keeping the view explicit (rather than
letting strategies poke at the simulator) makes strategies pure
functions of ``view -> choice``, which keeps runs reproducible and lets
tests construct views directly.
"""

from __future__ import annotations

import random
from collections.abc import Mapping
from dataclasses import dataclass, field

from ..msr.multiset import Interval

__all__ = ["AdversaryView"]


@dataclass(frozen=True)
class AdversaryView:
    """Everything the adversary knows when choosing an action.

    Attributes
    ----------
    round_index:
        The current round ``r_k``.
    n, f:
        System size and number of mobile agents.
    values:
        True current memory value of every process (the adversary reads
        all memories, including corrupted ones).
    positions:
        Processes currently hosting an agent.
    cured:
        Processes in the cured state this round.
    correct_values:
        Memory values of the processes that are neither faulty nor
        cured -- the ``U``-generators whose range Validity protects.
    rng:
        Deterministic randomness stream reserved for the adversary.
    topology:
        The run's communication graph (:class:`~repro.topology.Topology`),
        when one is configured: the omniscient adversary knows which
        channels exist, so strategies can target cut vertices or avoid
        wasting lies on unreachable recipients.  ``None`` (the default
        for directly-constructed views) reads as the full mesh.
    """

    round_index: int
    n: int
    f: int
    values: Mapping[int, float]
    positions: frozenset[int]
    cured: frozenset[int]
    correct_values: Mapping[int, float] = field(default_factory=dict)
    rng: random.Random = field(default_factory=random.Random, compare=False)
    topology: object | None = field(default=None, compare=False)

    @property
    def correct_ids(self) -> frozenset[int]:
        """Identifiers of currently-correct processes."""
        return frozenset(self.correct_values)

    def correct_range(self) -> Interval:
        """The interval spanned by currently-correct values.

        Falls back to the range over *all* values when no process is
        correct (only possible in deliberately degenerate tests).

        The view is an immutable snapshot, so the interval is computed
        once and cached: strategies query it per message, which made it
        the hottest call of a whole simulation before caching.
        """
        cached = self.__dict__.get("_correct_range")
        if cached is not None:
            return cached
        source = self.correct_values or self.values
        if not source:
            raise ValueError("adversary view contains no process values")
        interval = Interval(min(source.values()), max(source.values()))
        object.__setattr__(self, "_correct_range", interval)
        return interval

    def correct_midpoint(self) -> float:
        """Midpoint of the correct range; the split point of attacks."""
        return self.correct_range().midpoint()

    def neighbors(self, pid: int) -> frozenset[int]:
        """Processes whose channel to ``pid`` exists (excluding ``pid``).

        Falls back to "everyone else" when no topology is attached, so
        strategies can consult reachability unconditionally.
        """
        if self.topology is None:
            return frozenset(range(self.n)) - {pid}
        return self.topology.neighbor_sets[pid]

    def memo(self, key: str, compute):
        """Cache a per-round derived quantity on this (immutable) view.

        Value strategies use this to share work across the senders of a
        round -- e.g. the recipient-class assignment of a camp-declaring
        strategy is computed once per view however many agents attack
        (see :meth:`~repro.faults.value_strategies.ValueStrategy.attack_camps`).
        The view is a frozen snapshot, so memoized values can never go
        stale within it.
        """
        cache = self.__dict__.get("_memo")
        if cache is None:
            cache = {}
            object.__setattr__(self, "_memo", cache)
        if key not in cache:
            cache[key] = compute()
        return cache[key]

"""The omniscient adversary's view of a round.

Mobile Byzantine agents are computationally unbounded and, in the worst
case, fully informed: strategies receive a snapshot of the entire system
state at the moment they act.  Keeping the view explicit (rather than
letting strategies poke at the simulator) makes strategies pure
functions of ``view -> choice``, which keeps runs reproducible and lets
tests construct views directly.
"""

from __future__ import annotations

import random
from collections.abc import Mapping
from dataclasses import dataclass, field

from ..msr.multiset import Interval

try:  # numpy is optional: the scalar paths never need it.
    import numpy as _np
except Exception:  # pragma: no cover - exercised only without numpy
    _np = None

__all__ = ["AdversaryView", "batch_correct_ranges"]


def batch_correct_ranges(stack, mask):
    """Correct-range intervals for a whole stack of runs at once.

    The cross-run planner's batched companion to
    :meth:`AdversaryView._correct_range_from_array`: one masked min/max
    reduction over the ``(R, n)`` value ``stack`` (``mask`` True where a
    process is currently correct) yields every run's interval in a
    single numpy pass.  Masked min/max merely *select* elements, so the
    floats are bit-identical to the view's own per-run reduction.

    An entry is ``None`` -- deferring to the view's lazy first-wins
    scalar rescan, exactly the per-cell behaviour -- when an endpoint
    is ``0.0`` (either signed zero under numpy's reductions) or the
    row is fully masked (``inf`` endpoints).  Callers seed surviving
    intervals onto views as ``_correct_range`` and leave the rest for
    :meth:`AdversaryView.correct_range` to recompute.
    """
    inf = float("inf")
    lows = _np.where(mask, stack, inf).min(axis=1).tolist()
    highs = _np.where(mask, stack, -inf).max(axis=1).tolist()
    return [
        None
        if low == 0.0 or high == 0.0 or low == inf or high == -inf
        else Interval(low, high)
        for low, high in zip(lows, highs)
    ]


class _LazyCorrectValues:
    """Descriptor deriving ``correct_values`` from the view on demand.

    Building the correct-value dict eagerly was one of the hottest
    allocations of a whole simulation (every round, every controller),
    yet most strategies only ever ask for :meth:`AdversaryView.correct_range`,
    which the array fast path answers without the dict.  Constructors
    may still pass an explicit mapping (tests do); passing nothing
    defers the dict comprehension until some strategy actually reads
    the attribute.
    """

    def __get__(self, view, owner=None):
        if view is None:
            return self
        cached = view.__dict__.get("correct_values")
        if cached is None:
            cached = {
                pid: value
                for pid, value in view.values.items()
                if pid not in view.positions and pid not in view.cured
            }
            view.__dict__["correct_values"] = cached
        return cached

    def __set__(self, view, value):
        view.__dict__["correct_values"] = value


@dataclass(frozen=True)
class AdversaryView:
    """Everything the adversary knows when choosing an action.

    Attributes
    ----------
    round_index:
        The current round ``r_k``.
    n, f:
        System size and number of mobile agents.
    values:
        True current memory value of every process (the adversary reads
        all memories, including corrupted ones).
    positions:
        Processes currently hosting an agent.
    cured:
        Processes in the cured state this round.
    correct_values:
        Memory values of the processes that are neither faulty nor
        cured -- the ``U``-generators whose range Validity protects.
        Derived lazily from ``values``/``positions``/``cured`` when the
        constructor leaves it unset (the controllers' fast path).
    rng:
        Deterministic randomness stream reserved for the adversary.
    topology:
        The run's communication graph (:class:`~repro.topology.Topology`),
        when one is configured: the omniscient adversary knows which
        channels exist, so strategies can target cut vertices or avoid
        wasting lies on unreachable recipients.  ``None`` (the default
        for directly-constructed views) reads as the full mesh.
    """

    round_index: int
    n: int
    f: int
    values: Mapping[int, float]
    positions: frozenset[int]
    cured: frozenset[int]
    correct_values: Mapping[int, float] | None = None
    rng: random.Random = field(default_factory=random.Random, compare=False)
    topology: object | None = field(default=None, compare=False)

    @property
    def correct_ids(self) -> frozenset[int]:
        """Identifiers of currently-correct processes."""
        return frozenset(self.correct_values)

    def correct_range(self) -> Interval:
        """The interval spanned by currently-correct values.

        Falls back to the range over *all* values when no process is
        correct (only possible in deliberately degenerate tests).

        The view is an immutable snapshot, so the interval is computed
        once and cached: strategies query it per message, which made it
        the hottest call of a whole simulation before caching.
        """
        cached = self.__dict__.get("_correct_range")
        if cached is not None:
            return cached
        interval = self._correct_range_from_array()
        if interval is None:
            source = self.correct_values or self.values
            if not source:
                raise ValueError("adversary view contains no process values")
            interval = Interval(min(source.values()), max(source.values()))
        object.__setattr__(self, "_correct_range", interval)
        return interval

    def _correct_range_from_array(self) -> Interval | None:
        """Masked min/max over an array-backed value snapshot.

        Applies only when ``correct_values`` was left to its lazy
        default -- an explicit mapping is authoritative and may differ
        from the derived one.  Returns ``None`` to defer to the scalar
        fallback only when no array mirror exists.  A ``0.0`` endpoint
        could be either signed zero under numpy's min/max (``-0.0 ==
        0.0``), so those rounds recompute with the first-wins scalar
        scan over the same snapshot -- without materializing the
        ``correct_values`` dict the generic fallback would build.
        """
        if _np is None or self.__dict__.get("correct_values") is not None:
            return None
        array = getattr(self.values, "array", None)
        if array is None:
            return None
        # Controllers stash one shared exclusion mask per round (both
        # value views exclude the same positions/cured sets).
        mask = self.__dict__.get("_range_mask")
        if mask is not None:
            sub = array[mask]
        else:
            excluded = self.positions | self.cured
            if excluded:
                mask = _np.ones(array.shape[0], dtype=bool)
                mask[list(excluded)] = False
                sub = array[mask]
            else:
                sub = array
        if not sub.shape[0]:
            # No correct process at all (degenerate, test-only
            # configurations): the fallback ranges over every value.
            sub = array
            if not sub.shape[0]:
                return None
        low = sub.min()
        high = sub.max()
        # A 0.0 endpoint could be either signed zero; the scalar scan
        # keeps the *first* minimal/maximal occurrence in pid order.
        # Masking preserved pid order, so the first element comparing
        # equal to zero is exactly the scan's pick (for any other
        # endpoint, equal floats share one bit pattern).
        if low == 0.0:
            low = sub[int(_np.argmax(sub == 0.0))]
        if high == 0.0:
            high = sub[int(_np.argmax(sub == 0.0))]
        return Interval(float(low), float(high))

    def correct_midpoint(self) -> float:
        """Midpoint of the correct range; the split point of attacks."""
        return self.correct_range().midpoint()

    def neighbors(self, pid: int) -> frozenset[int]:
        """Processes whose channel to ``pid`` exists (excluding ``pid``).

        Falls back to "everyone else" when no topology is attached, so
        strategies can consult reachability unconditionally.
        """
        if self.topology is None:
            return frozenset(range(self.n)) - {pid}
        return self.topology.neighbor_sets[pid]

    def memo(self, key: str, compute):
        """Cache a per-round derived quantity on this (immutable) view.

        Value strategies use this to share work across the senders of a
        round -- e.g. the recipient-class assignment of a camp-declaring
        strategy is computed once per view however many agents attack
        (see :meth:`~repro.faults.value_strategies.ValueStrategy.attack_camps`).
        The view is a frozen snapshot, so memoized values can never go
        stale within it.
        """
        cache = self.__dict__.get("_memo")
        if cache is None:
            cache = {}
            object.__setattr__(self, "_memo", cache)
        if key not in cache:
            cache[key] = compute()
        return cache[key]


# Installed after the dataclass machinery has captured the field's None
# default: object.__setattr__ in the generated __init__ routes through
# this data descriptor, so an explicit mapping is stored verbatim and
# the None default triggers the lazy derivation on first access.
AdversaryView.correct_values = _LazyCorrectValues()

"""Byzantine value strategies: what corrupted processes say and leave behind.

A :class:`ValueStrategy` answers the four questions the fault controller
asks during a round (see DESIGN.md Section 4):

* ``attack_message`` -- what a *faulty* process sends to one recipient
  (per-recipient: the asymmetric behaviour of Definition 3);
* ``departure_value`` -- what the agent leaves in a process's memory
  when it moves away (the corrupted state a cured process holds);
* ``planted_message`` -- the outgoing queue the agent prepares in
  Sasaki's model M3 (per-recipient, sent by the cured process);
* ``corrupted_compute`` -- the garbage an occupied process's
  computation phase produces.

Recipient ``None`` in ``attack_message`` requests a *symmetric* value
(one value perceived identically by everybody), used for symmetric
mixed-mode faults and for M2 departure values.

All strategies are deterministic functions of the view (including the
view's seeded ``rng``), so simulations replay exactly.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

from .view import AdversaryView

__all__ = [
    "ValueStrategy",
    "RecipientCamps",
    "CampOutbox",
    "FixedValue",
    "SplitAttack",
    "OutlierAttack",
    "RandomNoise",
    "EchoCorrect",
    "OscillatingAttack",
    "InertiaAttack",
    "CrossfireAttack",
]


@dataclass(frozen=True)
class RecipientCamps:
    """A per-recipient outbox compressed to value camps.

    Many attacks partition the recipients into a handful of *camps*
    that each receive one value (the split attack's low/high halves,
    the outlier attack's parity sides).  Materializing such an outbox
    as an ``n``-entry dict per sender makes fault planning ``O(n * f)``
    for sender-dependent strategies; declaring the camps instead costs
    one shared ``assignment`` per round plus ``O(#camps)`` values per
    sender, and lets the round kernel group recipients by camp index
    directly (see :class:`CampOutbox`).

    Attributes
    ----------
    values:
        One float per camp (finite; validated at the controller
        boundary like every adversary output).
    assignment:
        Camp index per recipient, length ``n``.  Strategies share one
        assignment tuple across all senders of a round via
        :meth:`~repro.faults.view.AdversaryView.memo`; the kernel
        detects the sharing by identity.
    """

    values: tuple[float, ...]
    assignment: tuple[int, ...]

    def validate(self, n: int, context: str) -> "RecipientCamps":
        """Full structural checks at the controller boundary."""
        self.validate_values(context)
        self.validate_assignment(n, context)
        return self

    def validate_values(self, context: str) -> None:
        """O(#camps) per-sender check: every camp value is a finite real."""
        for value in self.values:
            if not math.isfinite(value):
                raise ValueError(
                    f"adversary produced non-finite value {value!r} "
                    f"({context}); value strategies must return finite reals"
                )

    def validate_assignment(self, n: int, context: str) -> bool:
        """O(n) shape check: length ``n``, indices within ``values``.

        A malformed camp index would otherwise surface rounds later as
        a bare ``IndexError`` inside the kernel's fold.  Senders share
        one assignment tuple per round, so controllers memoize this
        scan per round on the adversary view instead of paying it per
        sender.
        """
        if len(self.assignment) != n:
            raise ValueError(
                f"recipient camps ({context}): assignment covers "
                f"{len(self.assignment)} recipients, expected {n}"
            )
        codes = getattr(self.assignment, "array", None)
        if codes is not None and codes.shape[0]:
            # CampAssignment mirror: bounds-check without re-scanning
            # the tuple (the mirror holds the same integers).
            lowest, highest = int(codes.min()), int(codes.max())
        elif self.assignment:
            lowest, highest = min(self.assignment), max(self.assignment)
        else:
            return True
        if not (0 <= lowest and highest < len(self.values)):
            raise ValueError(
                f"recipient camps ({context}): assignment references camp "
                f"indices outside the {len(self.values)} declared values"
            )
        return True


class CampAssignment(tuple):
    """A camp-assignment tuple carrying its integer-array mirror.

    Equal to -- and interchangeable with -- the plain tuple the scalar
    strategies build; camp strategies with an array-backed view attach
    the numpy codes they already computed as ``array`` so the
    vectorized kernel indexes camps without re-encoding the tuple
    every round.  Consumers must treat the mirror as immutable.
    """

    array = None


class CampOutbox(Mapping):
    """A read-only ``recipient -> value`` Mapping backed by camps.

    Drop-in replacement for the per-recipient outbox dicts carried in
    :class:`~repro.runtime.controllers.RoundPlan.send_overrides`: same
    keys (every recipient), same values, same iteration order -- but
    O(#camps) storage per sender and O(1) construction once the shared
    assignment exists.  The round kernel special-cases it to use the
    camp index itself as the distinct-inbox grouping key.
    """

    __slots__ = ("camp_values", "assignment")

    def __init__(self, camps: RecipientCamps) -> None:
        # Named camp_values (not values): a Mapping's .values() method
        # must stay callable.
        self.camp_values: Sequence[float] = tuple(
            float(value) for value in camps.values
        )
        self.assignment: Sequence[int] = camps.assignment

    def __getitem__(self, pid: int) -> float:
        if isinstance(pid, int) and 0 <= pid < len(self.assignment):
            try:
                return self.camp_values[self.assignment[pid]]
            except IndexError:
                # Unvalidated camps with an out-of-range index: keep
                # the Mapping contract (KeyError, never IndexError).
                raise KeyError(pid) from None
        raise KeyError(pid)

    def get(self, pid: int, default=None):
        if isinstance(pid, int) and 0 <= pid < len(self.assignment):
            try:
                return self.camp_values[self.assignment[pid]]
            except IndexError:
                # Unvalidated camps with an out-of-range index: .get
                # never raises (Mapping contract); validate() is the
                # integrity boundary.
                return default
        return default

    def __contains__(self, pid: object) -> bool:
        return isinstance(pid, int) and 0 <= pid < len(self.assignment)

    def __iter__(self):
        return iter(range(len(self.assignment)))

    def __len__(self) -> int:
        return len(self.assignment)

    def __eq__(self, other: object) -> bool:
        # Mapping-value equality: full-trace records carry camp
        # outboxes verbatim, and those records must compare equal to
        # dict-recorded ones.  (The kernel's dedup uses id(), never
        # equality or hashing, so this stays off the hot path.)
        if isinstance(other, CampOutbox):
            if (
                self.camp_values == other.camp_values
                and self.assignment == other.assignment
            ):
                return True
        elif not isinstance(other, Mapping):
            return NotImplemented
        return dict(self) == dict(other)

    def __repr__(self) -> str:
        return (
            f"CampOutbox({len(self.camp_values)} camps, "
            f"{len(self.assignment)} recipients)"
        )


class ValueStrategy(ABC):
    """Base class for Byzantine value choices."""

    #: Whether this strategy's attack/planted messages depend only on
    #: the view and the recipient -- never on the *sender* -- and
    #: consume no per-call randomness.  When True, every faulty sender
    #: of a round emits the same outbox, so the fault controller builds
    #: it once and shares it across all agents (the round-planning hot
    #: path is O(n) instead of O(n*f) for such strategies).  Strategies
    #: that read ``sender`` or draw from ``view.rng`` per message must
    #: leave this False.
    sender_agnostic: bool = False

    @abstractmethod
    def attack_message(
        self, view: AdversaryView, sender: int, recipient: int | None
    ) -> float:
        """Value a faulty ``sender`` sends to ``recipient`` (None = to all)."""

    def attack_outbox(
        self, view: AdversaryView, sender: int, recipients: Iterable[int]
    ) -> dict[int, float]:
        """The whole per-recipient outbox of a faulty ``sender``.

        Semantically exactly ``{q: attack_message(view, sender, q) for q
        in recipients}`` -- same values, same recipient order, same rng
        consumption -- but overridable as one batch so the fault
        controller's hot path (every agent emits ``n`` messages per
        round) skips the per-message call chain.  Concrete strategies
        override this with a fused loop; any override MUST stay
        bit-identical to the per-message form, which the strategy test
        suite asserts.
        """
        attack = self.attack_message
        return {
            recipient: attack(view, sender, recipient)
            for recipient in recipients
        }

    def attack_camps(
        self, view: AdversaryView, sender: int
    ) -> RecipientCamps | None:
        """Declare this sender's outbox as recipient camps, if possible.

        Must describe exactly the mapping :meth:`attack_outbox` would
        produce over ``range(view.n)`` -- same values for every
        recipient (the strategy test-suite asserts the equivalence).
        Returning ``None`` (the default) keeps the materialized-outbox
        contract.  Strategies whose camps share one recipient
        partition across senders should memoize the assignment on the
        view (``view.memo``) so fault planning costs ``O(n + f *
        #camps)`` per round instead of ``O(n * f)``.

        Strategies that consume per-message randomness or send
        recipient-unique values cannot declare camps.
        """
        return None

    def planted_outbox(
        self, view: AdversaryView, sender: int, recipients: Iterable[int]
    ) -> dict[int, float]:
        """The whole M3 planted queue of a cured ``sender``.

        Batch counterpart of :meth:`planted_message` with the same
        bit-identity contract as :meth:`attack_outbox`.  When
        :meth:`planted_message` is not overridden it delegates
        per-message to :meth:`attack_message`, so the batch form can
        reuse :meth:`attack_outbox` wholesale; strategies that *do*
        customize the planted queue fall back to the per-message loop.
        """
        if type(self).planted_message is ValueStrategy.planted_message:
            return self.attack_outbox(view, sender, recipients)
        planted = self.planted_message
        return {
            recipient: planted(view, sender, recipient)
            for recipient in recipients
        }

    def planted_camps(
        self, view: AdversaryView, sender: int
    ) -> RecipientCamps | None:
        """Declare a cured sender's M3 planted queue as camps, if possible.

        Planted queues default to the live attack values
        (:meth:`planted_message` delegates to :meth:`attack_message`),
        so a strategy's attack camps describe its planted queues too --
        unless the strategy customizes :meth:`planted_message` *or*
        the batch :meth:`planted_outbox`, in which case the camps could
        silently disagree and ``None`` keeps the materialized-queue
        contract.  The same bit-identity rule as :meth:`attack_camps`
        applies: the camps must describe exactly what
        :meth:`planted_outbox` would produce over ``range(view.n)``.
        """
        if (
            type(self).planted_message is ValueStrategy.planted_message
            and type(self).planted_outbox is ValueStrategy.planted_outbox
        ):
            return self.attack_camps(view, sender)
        return None

    def departure_value(self, view: AdversaryView, pid: int) -> float:
        """Memory value the agent leaves behind on departure from ``pid``.

        Defaults to the symmetric attack value, which is the natural
        "most disruptive single value" of each strategy.
        """
        return self.attack_message(view, pid, None)

    def planted_message(
        self, view: AdversaryView, sender: int, recipient: int
    ) -> float:
        """M3 planted-queue value from cured ``sender`` to ``recipient``.

        Defaults to the same choice as a live attack, which is the
        strongest option available to the agent.
        """
        return self.attack_message(view, sender, recipient)

    def corrupted_compute(self, view: AdversaryView, pid: int) -> float:
        """State an occupied process ends the round with."""
        return self.departure_value(view, pid)

    def describe(self) -> str:
        """Short name used in experiment tables."""
        return type(self).__name__

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def _zero_assignment(view: AdversaryView) -> tuple[int, ...]:
    """The single-camp assignment (everybody camp 0), shared per round."""
    return view.memo("camps-zero", lambda: (0,) * view.n)


def _parity_assignment(view: AdversaryView) -> tuple[int, ...]:
    """Camp by recipient-id parity (even -> 0, odd -> 1), shared per round."""
    return view.memo(
        "camps-parity", lambda: tuple(pid % 2 for pid in range(view.n))
    )


def _split_assignment(view: AdversaryView) -> tuple[int, ...]:
    """The bisection partition: camp 0 at/below the correct midpoint.

    Recipients with unknown state (not in ``view.values``) fall back to
    id parity, mirroring :meth:`SplitAttack.attack_message` exactly.
    Shared across every sender of the round via the view memo.
    """

    def build() -> tuple[int, ...]:
        midpoint = view.correct_range().midpoint()
        values = view.values
        array = getattr(values, "array", None)
        if array is not None:
            # Array-backed snapshots cover every pid, so the parity
            # fallback can't trigger; the comparison is the camp index.
            codes = (array > midpoint).astype("i8")
            assignment = CampAssignment(codes.tolist())
            assignment.array = codes
            return assignment
        assignment = []
        for pid in range(view.n):
            value = values.get(pid)
            if value is None:
                assignment.append(pid % 2)
            else:
                assignment.append(0 if value <= midpoint else 1)
        return tuple(assignment)

    return view.memo("camps-split", build)


class FixedValue(ValueStrategy):
    """Always say the same constant -- the simplest symmetric lie."""

    sender_agnostic = True

    def __init__(self, value: float) -> None:
        self.value = float(value)

    def attack_message(
        self, view: AdversaryView, sender: int, recipient: int | None
    ) -> float:
        return self.value

    def attack_outbox(
        self, view: AdversaryView, sender: int, recipients: Iterable[int]
    ) -> dict[int, float]:
        return dict.fromkeys(recipients, self.value)

    def attack_camps(
        self, view: AdversaryView, sender: int
    ) -> RecipientCamps | None:
        return RecipientCamps(
            values=(self.value,), assignment=_zero_assignment(view)
        )

    def describe(self) -> str:
        return f"fixed({self.value:g})"

    def __repr__(self) -> str:
        return f"FixedValue({self.value!r})"


class SplitAttack(ValueStrategy):
    """The classic bisection attack: keep the correct processes apart.

    Recipients whose current value lies at or below the midpoint of the
    correct range receive the range *minimum*; the others receive the
    range *maximum*.  This reinforces each side's extreme and is the
    worst case for trim-based algorithms (it realises the adversary of
    the paper's lower-bound executions E3).

    ``low``/``high`` override the sent values (used by scripted
    scenarios with a fixed [0, 1] input range).
    """

    sender_agnostic = True

    def __init__(self, low: float | None = None, high: float | None = None) -> None:
        self.low = low
        self.high = high

    def attack_message(
        self, view: AdversaryView, sender: int, recipient: int | None
    ) -> float:
        interval = view.correct_range()
        low = interval.low if self.low is None else self.low
        high = interval.high if self.high is None else self.high
        if recipient is None:
            # Symmetric variant: a single maximally-eccentric value.
            return high
        recipient_value = view.values.get(recipient)
        if recipient_value is None:
            # Unknown recipient state (e.g. another faulty process):
            # split deterministically by identifier parity.
            return low if recipient % 2 == 0 else high
        return low if recipient_value <= interval.midpoint() else high

    def attack_outbox(
        self, view: AdversaryView, sender: int, recipients: Iterable[int]
    ) -> dict[int, float]:
        interval = view.correct_range()
        low = interval.low if self.low is None else self.low
        high = interval.high if self.high is None else self.high
        midpoint = interval.midpoint()
        values = view.values
        outbox = {}
        for recipient in recipients:
            recipient_value = values.get(recipient)
            if recipient_value is None:
                outbox[recipient] = low if recipient % 2 == 0 else high
            else:
                outbox[recipient] = (
                    low if recipient_value <= midpoint else high
                )
        return outbox

    def attack_camps(
        self, view: AdversaryView, sender: int
    ) -> RecipientCamps | None:
        interval = view.correct_range()
        low = interval.low if self.low is None else self.low
        high = interval.high if self.high is None else self.high
        return RecipientCamps(
            values=(low, high), assignment=_split_assignment(view)
        )

    def describe(self) -> str:
        if self.low is None and self.high is None:
            return "split(range)"
        return f"split({self.low:g},{self.high:g})"


class OutlierAttack(ValueStrategy):
    """Send values far outside the correct range.

    Exercises the reduction stage (P1): every sent value must be trimmed
    or Validity breaks.  ``magnitude`` controls how far outside; the
    sign alternates with the recipient id so both ends are attacked.
    """

    sender_agnostic = True

    def __init__(self, magnitude: float = 1e6) -> None:
        if magnitude <= 0:
            raise ValueError("magnitude must be positive")
        self.magnitude = float(magnitude)

    def attack_message(
        self, view: AdversaryView, sender: int, recipient: int | None
    ) -> float:
        interval = view.correct_range()
        if recipient is None or recipient % 2 == 0:
            return interval.high + self.magnitude
        return interval.low - self.magnitude

    def attack_outbox(
        self, view: AdversaryView, sender: int, recipients: Iterable[int]
    ) -> dict[int, float]:
        interval = view.correct_range()
        above = interval.high + self.magnitude
        below = interval.low - self.magnitude
        return {
            recipient: above if recipient % 2 == 0 else below
            for recipient in recipients
        }

    def attack_camps(
        self, view: AdversaryView, sender: int
    ) -> RecipientCamps | None:
        interval = view.correct_range()
        return RecipientCamps(
            values=(interval.high + self.magnitude, interval.low - self.magnitude),
            assignment=_parity_assignment(view),
        )

    def describe(self) -> str:
        return f"outlier({self.magnitude:g})"


class RandomNoise(ValueStrategy):
    """Uniform random values within an envelope around the correct range.

    ``spread`` scales the envelope: 1.0 keeps lies inside the correct
    range, larger values allow out-of-range lies.  Uses the view's
    seeded adversary rng, so runs stay reproducible.
    """

    def __init__(self, spread: float = 2.0) -> None:
        if spread <= 0:
            raise ValueError("spread must be positive")
        self.spread = float(spread)

    def attack_message(
        self, view: AdversaryView, sender: int, recipient: int | None
    ) -> float:
        interval = view.correct_range()
        center = interval.midpoint()
        half_width = max(interval.width, 1e-9) * self.spread / 2.0
        return view.rng.uniform(center - half_width, center + half_width)

    def describe(self) -> str:
        return f"noise(spread={self.spread:g})"


class EchoCorrect(ValueStrategy):
    """A *weak* adversary that mimics a correct process.

    Sends the midpoint of the correct range everywhere.  Used as a
    control in experiments: with this adversary even under-provisioned
    systems converge, which shows the bounds of Table 2 are about
    worst-case adversaries, not averages.
    """

    sender_agnostic = True

    def attack_message(
        self, view: AdversaryView, sender: int, recipient: int | None
    ) -> float:
        return view.correct_midpoint()

    def attack_outbox(
        self, view: AdversaryView, sender: int, recipients: Iterable[int]
    ) -> dict[int, float]:
        return dict.fromkeys(recipients, view.correct_midpoint())

    def attack_camps(
        self, view: AdversaryView, sender: int
    ) -> RecipientCamps | None:
        return RecipientCamps(
            values=(view.correct_midpoint(),), assignment=_zero_assignment(view)
        )

    def describe(self) -> str:
        return "echo-correct"


class OscillatingAttack(ValueStrategy):
    """Time-varying symmetric lies: all-low rounds alternate with
    all-high rounds.

    Each round the faulty processes jointly push one end of the correct
    range (the low end on even rounds, the high end on odd rounds).
    Within a round the behaviour is symmetric, but across rounds it
    exercises the *temporal* robustness of the protocol: reductions
    must keep filtering even though the lie direction flips under the
    moving agents.
    """

    sender_agnostic = True

    def attack_message(
        self, view: AdversaryView, sender: int, recipient: int | None
    ) -> float:
        interval = view.correct_range()
        return interval.low if view.round_index % 2 == 0 else interval.high

    def attack_outbox(
        self, view: AdversaryView, sender: int, recipients: Iterable[int]
    ) -> dict[int, float]:
        interval = view.correct_range()
        value = interval.low if view.round_index % 2 == 0 else interval.high
        return dict.fromkeys(recipients, value)

    def attack_camps(
        self, view: AdversaryView, sender: int
    ) -> RecipientCamps | None:
        interval = view.correct_range()
        value = interval.low if view.round_index % 2 == 0 else interval.high
        return RecipientCamps(
            values=(value,), assignment=_zero_assignment(view)
        )

    def describe(self) -> str:
        return "oscillating"


class InertiaAttack(ValueStrategy):
    """Echo each recipient its *own* current value.

    A subtle anti-convergence attack: instead of pushing extremes, the
    adversary reinforces every process's current position, maximising
    the weight of the status quo inside each multiset.  Trimming caps
    its effect -- experiments show it slows convergence by at most the
    predicted contraction factor -- but it is the natural "keep them
    apart without being an outlier" strategy and exercises recipient-
    dependent lies that stay *inside* the correct range (so P1 can
    never flag them).
    """

    sender_agnostic = True

    def attack_message(
        self, view: AdversaryView, sender: int, recipient: int | None
    ) -> float:
        if recipient is None:
            return view.correct_midpoint()
        value = view.values.get(recipient)
        if value is None:
            return view.correct_midpoint()
        # Clamp to the correct range: corrupted memories of other
        # faulty processes must not leak outliers through this path.
        interval = view.correct_range()
        return min(max(value, interval.low), interval.high)

    def attack_outbox(
        self, view: AdversaryView, sender: int, recipients: Iterable[int]
    ) -> dict[int, float]:
        interval = view.correct_range()
        low, high = interval.low, interval.high
        midpoint = interval.midpoint()
        values = view.values
        outbox = {}
        for recipient in recipients:
            value = values.get(recipient)
            outbox[recipient] = (
                midpoint if value is None else min(max(value, low), high)
            )
        return outbox

    def describe(self) -> str:
        return "inertia"


class CrossfireAttack(ValueStrategy):
    """A *sender-dependent* split: agents push the camps in opposite
    directions.

    Even-indexed agents behave like the classic split attack (low camp
    hears the minimum, high camp the maximum); odd-indexed agents
    invert it, feeding each camp the opposite extreme.  Each recipient
    thus hears *both* extremes from the attacking coalition, which
    stresses the reduction from both sides simultaneously while every
    sender's outbox differs -- the worst case for the fault planner's
    ``O(n * f)`` outbox contract and therefore the reference workload
    for recipient-class (camp) planning: the camp *partition* is shared
    by all senders, only the two camp values swap per sender.
    """

    sender_agnostic = False

    def attack_message(
        self, view: AdversaryView, sender: int, recipient: int | None
    ) -> float:
        interval = view.correct_range()
        low, high = interval.low, interval.high
        if recipient is None:
            # Symmetric variant (departures, static symmetric faults):
            # each agent commits to its own extreme.
            return high if sender % 2 == 0 else low
        recipient_value = view.values.get(recipient)
        if recipient_value is None:
            low_camp = recipient % 2 == 0
        else:
            low_camp = recipient_value <= interval.midpoint()
        if sender % 2 == 0:
            return low if low_camp else high
        return high if low_camp else low

    def attack_outbox(
        self, view: AdversaryView, sender: int, recipients: Iterable[int]
    ) -> dict[int, float]:
        interval = view.correct_range()
        low, high = interval.low, interval.high
        if sender % 2 == 0:
            to_low_camp, to_high_camp = low, high
        else:
            to_low_camp, to_high_camp = high, low
        midpoint = interval.midpoint()
        values = view.values
        outbox = {}
        for recipient in recipients:
            recipient_value = values.get(recipient)
            if recipient_value is None:
                low_camp = recipient % 2 == 0
            else:
                low_camp = recipient_value <= midpoint
            outbox[recipient] = to_low_camp if low_camp else to_high_camp
        return outbox

    def attack_camps(
        self, view: AdversaryView, sender: int
    ) -> RecipientCamps | None:
        interval = view.correct_range()
        low, high = interval.low, interval.high
        values = (low, high) if sender % 2 == 0 else (high, low)
        return RecipientCamps(
            values=values, assignment=_split_assignment(view)
        )

    def describe(self) -> str:
        return "crossfire"

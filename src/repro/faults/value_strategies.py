"""Byzantine value strategies: what corrupted processes say and leave behind.

A :class:`ValueStrategy` answers the four questions the fault controller
asks during a round (see DESIGN.md Section 4):

* ``attack_message`` -- what a *faulty* process sends to one recipient
  (per-recipient: the asymmetric behaviour of Definition 3);
* ``departure_value`` -- what the agent leaves in a process's memory
  when it moves away (the corrupted state a cured process holds);
* ``planted_message`` -- the outgoing queue the agent prepares in
  Sasaki's model M3 (per-recipient, sent by the cured process);
* ``corrupted_compute`` -- the garbage an occupied process's
  computation phase produces.

Recipient ``None`` in ``attack_message`` requests a *symmetric* value
(one value perceived identically by everybody), used for symmetric
mixed-mode faults and for M2 departure values.

All strategies are deterministic functions of the view (including the
view's seeded ``rng``), so simulations replay exactly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable

from .view import AdversaryView

__all__ = [
    "ValueStrategy",
    "FixedValue",
    "SplitAttack",
    "OutlierAttack",
    "RandomNoise",
    "EchoCorrect",
    "OscillatingAttack",
    "InertiaAttack",
]


class ValueStrategy(ABC):
    """Base class for Byzantine value choices."""

    #: Whether this strategy's attack/planted messages depend only on
    #: the view and the recipient -- never on the *sender* -- and
    #: consume no per-call randomness.  When True, every faulty sender
    #: of a round emits the same outbox, so the fault controller builds
    #: it once and shares it across all agents (the round-planning hot
    #: path is O(n) instead of O(n*f) for such strategies).  Strategies
    #: that read ``sender`` or draw from ``view.rng`` per message must
    #: leave this False.
    sender_agnostic: bool = False

    @abstractmethod
    def attack_message(
        self, view: AdversaryView, sender: int, recipient: int | None
    ) -> float:
        """Value a faulty ``sender`` sends to ``recipient`` (None = to all)."""

    def attack_outbox(
        self, view: AdversaryView, sender: int, recipients: Iterable[int]
    ) -> dict[int, float]:
        """The whole per-recipient outbox of a faulty ``sender``.

        Semantically exactly ``{q: attack_message(view, sender, q) for q
        in recipients}`` -- same values, same recipient order, same rng
        consumption -- but overridable as one batch so the fault
        controller's hot path (every agent emits ``n`` messages per
        round) skips the per-message call chain.  Concrete strategies
        override this with a fused loop; any override MUST stay
        bit-identical to the per-message form, which the strategy test
        suite asserts.
        """
        attack = self.attack_message
        return {
            recipient: attack(view, sender, recipient)
            for recipient in recipients
        }

    def planted_outbox(
        self, view: AdversaryView, sender: int, recipients: Iterable[int]
    ) -> dict[int, float]:
        """The whole M3 planted queue of a cured ``sender``.

        Batch counterpart of :meth:`planted_message` with the same
        bit-identity contract as :meth:`attack_outbox`.  When
        :meth:`planted_message` is not overridden it delegates
        per-message to :meth:`attack_message`, so the batch form can
        reuse :meth:`attack_outbox` wholesale; strategies that *do*
        customize the planted queue fall back to the per-message loop.
        """
        if type(self).planted_message is ValueStrategy.planted_message:
            return self.attack_outbox(view, sender, recipients)
        planted = self.planted_message
        return {
            recipient: planted(view, sender, recipient)
            for recipient in recipients
        }

    def departure_value(self, view: AdversaryView, pid: int) -> float:
        """Memory value the agent leaves behind on departure from ``pid``.

        Defaults to the symmetric attack value, which is the natural
        "most disruptive single value" of each strategy.
        """
        return self.attack_message(view, pid, None)

    def planted_message(
        self, view: AdversaryView, sender: int, recipient: int
    ) -> float:
        """M3 planted-queue value from cured ``sender`` to ``recipient``.

        Defaults to the same choice as a live attack, which is the
        strongest option available to the agent.
        """
        return self.attack_message(view, sender, recipient)

    def corrupted_compute(self, view: AdversaryView, pid: int) -> float:
        """State an occupied process ends the round with."""
        return self.departure_value(view, pid)

    def describe(self) -> str:
        """Short name used in experiment tables."""
        return type(self).__name__

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class FixedValue(ValueStrategy):
    """Always say the same constant -- the simplest symmetric lie."""

    sender_agnostic = True

    def __init__(self, value: float) -> None:
        self.value = float(value)

    def attack_message(
        self, view: AdversaryView, sender: int, recipient: int | None
    ) -> float:
        return self.value

    def attack_outbox(
        self, view: AdversaryView, sender: int, recipients: Iterable[int]
    ) -> dict[int, float]:
        return dict.fromkeys(recipients, self.value)

    def describe(self) -> str:
        return f"fixed({self.value:g})"

    def __repr__(self) -> str:
        return f"FixedValue({self.value!r})"


class SplitAttack(ValueStrategy):
    """The classic bisection attack: keep the correct processes apart.

    Recipients whose current value lies at or below the midpoint of the
    correct range receive the range *minimum*; the others receive the
    range *maximum*.  This reinforces each side's extreme and is the
    worst case for trim-based algorithms (it realises the adversary of
    the paper's lower-bound executions E3).

    ``low``/``high`` override the sent values (used by scripted
    scenarios with a fixed [0, 1] input range).
    """

    sender_agnostic = True

    def __init__(self, low: float | None = None, high: float | None = None) -> None:
        self.low = low
        self.high = high

    def attack_message(
        self, view: AdversaryView, sender: int, recipient: int | None
    ) -> float:
        interval = view.correct_range()
        low = interval.low if self.low is None else self.low
        high = interval.high if self.high is None else self.high
        if recipient is None:
            # Symmetric variant: a single maximally-eccentric value.
            return high
        recipient_value = view.values.get(recipient)
        if recipient_value is None:
            # Unknown recipient state (e.g. another faulty process):
            # split deterministically by identifier parity.
            return low if recipient % 2 == 0 else high
        return low if recipient_value <= interval.midpoint() else high

    def attack_outbox(
        self, view: AdversaryView, sender: int, recipients: Iterable[int]
    ) -> dict[int, float]:
        interval = view.correct_range()
        low = interval.low if self.low is None else self.low
        high = interval.high if self.high is None else self.high
        midpoint = interval.midpoint()
        values = view.values
        outbox = {}
        for recipient in recipients:
            recipient_value = values.get(recipient)
            if recipient_value is None:
                outbox[recipient] = low if recipient % 2 == 0 else high
            else:
                outbox[recipient] = (
                    low if recipient_value <= midpoint else high
                )
        return outbox

    def describe(self) -> str:
        if self.low is None and self.high is None:
            return "split(range)"
        return f"split({self.low:g},{self.high:g})"


class OutlierAttack(ValueStrategy):
    """Send values far outside the correct range.

    Exercises the reduction stage (P1): every sent value must be trimmed
    or Validity breaks.  ``magnitude`` controls how far outside; the
    sign alternates with the recipient id so both ends are attacked.
    """

    sender_agnostic = True

    def __init__(self, magnitude: float = 1e6) -> None:
        if magnitude <= 0:
            raise ValueError("magnitude must be positive")
        self.magnitude = float(magnitude)

    def attack_message(
        self, view: AdversaryView, sender: int, recipient: int | None
    ) -> float:
        interval = view.correct_range()
        if recipient is None or recipient % 2 == 0:
            return interval.high + self.magnitude
        return interval.low - self.magnitude

    def attack_outbox(
        self, view: AdversaryView, sender: int, recipients: Iterable[int]
    ) -> dict[int, float]:
        interval = view.correct_range()
        above = interval.high + self.magnitude
        below = interval.low - self.magnitude
        return {
            recipient: above if recipient % 2 == 0 else below
            for recipient in recipients
        }

    def describe(self) -> str:
        return f"outlier({self.magnitude:g})"


class RandomNoise(ValueStrategy):
    """Uniform random values within an envelope around the correct range.

    ``spread`` scales the envelope: 1.0 keeps lies inside the correct
    range, larger values allow out-of-range lies.  Uses the view's
    seeded adversary rng, so runs stay reproducible.
    """

    def __init__(self, spread: float = 2.0) -> None:
        if spread <= 0:
            raise ValueError("spread must be positive")
        self.spread = float(spread)

    def attack_message(
        self, view: AdversaryView, sender: int, recipient: int | None
    ) -> float:
        interval = view.correct_range()
        center = interval.midpoint()
        half_width = max(interval.width, 1e-9) * self.spread / 2.0
        return view.rng.uniform(center - half_width, center + half_width)

    def describe(self) -> str:
        return f"noise(spread={self.spread:g})"


class EchoCorrect(ValueStrategy):
    """A *weak* adversary that mimics a correct process.

    Sends the midpoint of the correct range everywhere.  Used as a
    control in experiments: with this adversary even under-provisioned
    systems converge, which shows the bounds of Table 2 are about
    worst-case adversaries, not averages.
    """

    sender_agnostic = True

    def attack_message(
        self, view: AdversaryView, sender: int, recipient: int | None
    ) -> float:
        return view.correct_midpoint()

    def attack_outbox(
        self, view: AdversaryView, sender: int, recipients: Iterable[int]
    ) -> dict[int, float]:
        return dict.fromkeys(recipients, view.correct_midpoint())

    def describe(self) -> str:
        return "echo-correct"


class OscillatingAttack(ValueStrategy):
    """Time-varying symmetric lies: all-low rounds alternate with
    all-high rounds.

    Each round the faulty processes jointly push one end of the correct
    range (the low end on even rounds, the high end on odd rounds).
    Within a round the behaviour is symmetric, but across rounds it
    exercises the *temporal* robustness of the protocol: reductions
    must keep filtering even though the lie direction flips under the
    moving agents.
    """

    sender_agnostic = True

    def attack_message(
        self, view: AdversaryView, sender: int, recipient: int | None
    ) -> float:
        interval = view.correct_range()
        return interval.low if view.round_index % 2 == 0 else interval.high

    def attack_outbox(
        self, view: AdversaryView, sender: int, recipients: Iterable[int]
    ) -> dict[int, float]:
        interval = view.correct_range()
        value = interval.low if view.round_index % 2 == 0 else interval.high
        return dict.fromkeys(recipients, value)

    def describe(self) -> str:
        return "oscillating"


class InertiaAttack(ValueStrategy):
    """Echo each recipient its *own* current value.

    A subtle anti-convergence attack: instead of pushing extremes, the
    adversary reinforces every process's current position, maximising
    the weight of the status quo inside each multiset.  Trimming caps
    its effect -- experiments show it slows convergence by at most the
    predicted contraction factor -- but it is the natural "keep them
    apart without being an outlier" strategy and exercises recipient-
    dependent lies that stay *inside* the correct range (so P1 can
    never flag them).
    """

    sender_agnostic = True

    def attack_message(
        self, view: AdversaryView, sender: int, recipient: int | None
    ) -> float:
        if recipient is None:
            return view.correct_midpoint()
        value = view.values.get(recipient)
        if value is None:
            return view.correct_midpoint()
        # Clamp to the correct range: corrupted memories of other
        # faulty processes must not leak outliers through this path.
        interval = view.correct_range()
        return min(max(value, interval.low), interval.high)

    def attack_outbox(
        self, view: AdversaryView, sender: int, recipients: Iterable[int]
    ) -> dict[int, float]:
        interval = view.correct_range()
        low, high = interval.low, interval.high
        midpoint = interval.midpoint()
        values = view.values
        outbox = {}
        for recipient in recipients:
            value = values.get(recipient)
            outbox[recipient] = (
                midpoint if value is None else min(max(value, low), high)
            )
        return outbox

    def describe(self) -> str:
        return "inertia"

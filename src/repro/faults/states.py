"""Process failure-state lifecycle for the mobile Byzantine model.

Section 3 of the paper: a process is *faulty* while a mobile Byzantine
agent occupies it, *cured* during the first round after the agent left,
and *correct* otherwise.  A cured process recovers the correct algorithm
code from tamper-proof memory, but its local variables may have been
corrupted arbitrarily by the departing agent.
"""

from __future__ import annotations

import enum

__all__ = ["FailureState"]


class FailureState(enum.Enum):
    """The paper's per-round failure states (Section 3, "Failure model")."""

    #: No agent on the process and no agent left it this round.
    CORRECT = "correct"
    #: An agent occupied the process in the previous round and left;
    #: the code is restored from tamper-proof memory but the state
    #: (local variables) may be corrupted.
    CURED = "cured"
    #: A mobile Byzantine agent currently occupies the process.
    FAULTY = "faulty"

    @property
    def is_nonfaulty(self) -> bool:
        """Correct and cured processes are the "non faulty" of the spec."""
        return self is not FailureState.FAULTY

    def __str__(self) -> str:
        return self.value

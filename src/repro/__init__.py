"""repro -- Approximate Agreement under Mobile Byzantine Faults.

A complete reproduction of Bonomi, Del Pozzo, Potop-Butucaru, Tixeuil,
*Approximate Agreement under Mobile Byzantine Faults* (ICDCS 2016,
arXiv:1604.03871): the four mobile Byzantine fault models (M1-M4), the
static mixed-mode substrate, the MSR algorithm family, the model
mapping and replica bounds (Tables 1-2), executable lower bounds
(Theorems 3-6) and the full experiment harness.

Quickstart::

    import repro

    trace = repro.simulate(model="M2", f=1, algorithm="ftm", seed=42)
    print(trace.summary())
    print(repro.check(trace))
"""

from . import (
    analysis,
    core,
    experiments,
    extensions,
    faults,
    msr,
    runtime,
    sweep,
    topology,
)
from .api import (
    check,
    evenly_spread_values,
    mobile_config,
    movement_strategy,
    simulate,
    sweep_grid,
    value_strategy,
)

__version__ = "1.0.0"

__all__ = [
    "simulate",
    "sweep_grid",
    "check",
    "mobile_config",
    "movement_strategy",
    "value_strategy",
    "evenly_spread_values",
    "msr",
    "faults",
    "runtime",
    "core",
    "analysis",
    "experiments",
    "extensions",
    "sweep",
    "topology",
    "__version__",
]

"""Multidimensional approximate agreement: the robot-gathering use case.

The paper's introduction motivates approximate agreement with mobile
robots converging to nearby positions.  Positions are vectors, so this
extension lifts the scalar machinery coordinate-wise, in the spirit of
Mendes-Herlihy multidimensional agreement restricted to box validity:

* each coordinate runs an independent scalar MSR agreement;
* the *fault pattern* (agent positions per round) is shared across
  coordinates -- an agent occupying a robot corrupts all coordinates of
  what it says;
* Validity becomes *box validity*: every decided point lies in the
  bounding box of the initially non-faulty inputs;
* epsilon-Agreement is measured in the infinity norm (each coordinate
  within epsilon), the natural notion for coordinate-wise protocols.

The shared fault pattern relies on movement strategies that do not read
process values (static, round-robin, random, alternating, scripted):
identically-seeded runs then move agents identically in every
coordinate.  Value-dependent strategies (``TargetExtremes``) are
rejected because coordinates would diverge.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..api import mobile_config
from ..core.specification import check_trace
from ..faults.movement import (
    AlternatingPools,
    MovementStrategy,
    RandomJump,
    RoundRobinWalk,
    ScriptedMovement,
    StaticAgents,
)
from ..faults.models import MobileModel
from ..msr.base import MSRFunction
from ..runtime.simulator import run_simulation
from ..runtime.trace import Trace

__all__ = [
    "MultidimResult",
    "multidim_simulate",
    "gathering_diameter",
    "ensure_value_blind_movement",
]

_VALUE_BLIND_MOVEMENTS = (
    StaticAgents,
    RoundRobinWalk,
    RandomJump,
    AlternatingPools,
    ScriptedMovement,
)


@dataclass(frozen=True)
class MultidimResult:
    """Outcome of a multidimensional agreement run."""

    dimension: int
    traces: tuple[Trace, ...]
    #: Decided point of every process non-faulty in all coordinates.
    decisions: dict[int, tuple[float, ...]]

    def decision_diameter_inf(self) -> float:
        """Largest pairwise infinity-norm distance between decisions."""
        points = list(self.decisions.values())
        worst = 0.0
        for i, p in enumerate(points):
            for q in points[i + 1 :]:
                worst = max(
                    worst, max(abs(a - b) for a, b in zip(p, q))
                )
        return worst

    def validity_box(self) -> list[tuple[float, float]]:
        """Per-coordinate range of the initially non-faulty inputs."""
        box = []
        for trace in self.traces:
            interval = trace.validity_interval()
            box.append((interval.low, interval.high))
        return box

    def box_validity_holds(self, tolerance: float = 1e-9) -> bool:
        """Every decision inside the initial non-faulty bounding box."""
        box = self.validity_box()
        for point in self.decisions.values():
            for coordinate, (low, high) in zip(point, box):
                if not low - tolerance <= coordinate <= high + tolerance:
                    return False
        return True

    def scalar_verdicts(self):
        """Per-coordinate specification verdicts."""
        return [check_trace(trace) for trace in self.traces]


def multidim_simulate(
    points: Sequence[Sequence[float]],
    model: MobileModel | str = "M1",
    f: int = 1,
    algorithm: str | MSRFunction = "ftm",
    movement: str | MovementStrategy = "round-robin",
    attack: str = "split",
    rounds: int = 30,
    epsilon: float = 1e-3,
    seed: int = 0,
) -> MultidimResult:
    """Run coordinate-wise approximate agreement on vector inputs.

    ``points[i]`` is process ``i``'s initial vector (e.g. a robot's
    position).  All vectors must share one dimension.
    """
    if not points:
        raise ValueError("need at least one input point")
    dimension = len(points[0])
    if dimension < 1:
        raise ValueError("points must have at least one coordinate")
    if any(len(point) != dimension for point in points):
        raise ValueError("all points must share the same dimension")

    traces: list[Trace] = []
    for axis in range(dimension):
        config = mobile_config(
            model=model,
            f=f,
            n=len(points),
            algorithm=algorithm,
            movement=_fresh_movement(movement),
            attack=attack,
            initial_values=[point[axis] for point in points],
            rounds=rounds,
            epsilon=epsilon,
            seed=seed,
        )
        traces.append(run_simulation(config))

    patterns = [
        tuple((r.faulty_at_send, r.cured_at_send) for r in trace.rounds)
        for trace in traces
    ]
    if any(pattern != patterns[0] for pattern in patterns):
        raise RuntimeError(
            "fault patterns diverged between coordinates; use a "
            "value-blind movement strategy"
        )

    shared = set(traces[0].decisions)
    for trace in traces[1:]:
        shared &= set(trace.decisions)
    decisions = {
        pid: tuple(trace.decisions[pid] for trace in traces)
        for pid in sorted(shared)
    }
    return MultidimResult(
        dimension=dimension, traces=tuple(traces), decisions=decisions
    )


def gathering_diameter(points: Sequence[Sequence[float]]) -> float:
    """Infinity-norm diameter of a point set (gathering quality metric)."""
    worst = 0.0
    points = [tuple(point) for point in points]
    for i, p in enumerate(points):
        for q in points[i + 1 :]:
            worst = max(worst, max(abs(a - b) for a, b in zip(p, q)))
    return worst


def ensure_value_blind_movement(
    movement: str | MovementStrategy,
) -> str | MovementStrategy:
    """Validate that the movement strategy is value-blind.

    Named strategies are re-resolved per coordinate (fresh instances);
    instances are checked by type.  Value-dependent strategies would
    give each coordinate a different fault pattern.  Shared by every
    coordinate-wise construction (multidim, interactive consistency).
    """
    if isinstance(movement, str):
        if movement == "target-extremes":
            raise ValueError(
                "target-extremes reads process values and cannot be "
                "shared across coordinates"
            )
        return movement
    if not isinstance(movement, _VALUE_BLIND_MOVEMENTS):
        raise ValueError(
            f"{type(movement).__name__} is not value-blind; "
            "multidimensional runs need identical fault patterns per "
            "coordinate"
        )
    return movement


#: Backwards-compatible private alias.
_fresh_movement = ensure_value_blind_movement

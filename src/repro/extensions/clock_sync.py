"""Approximate clock synchronization under mobile Byzantine faults.

The paper's conclusion proposes reusing the mapping technique for
"other classical problems ... e.g. clock synchronization".  This
extension makes that concrete: processes own drifting hardware clocks
and periodically run one MSR voting round on their logical clock
readings, under any of the four mobile Byzantine models.

Model
-----
Hardware clock of process ``i`` at real time ``t``:
``H_i(t) = (1 + drift_i) * t + phase_i`` with ``|drift_i| <= rho``.
The logical clock is ``L_i(t) = H_i(t) + adj_i``.  Every ``period``
time units the processes exchange logical readings and each non-faulty
process sets ``adj_i`` so that ``L_i`` jumps to ``F_MSR(received)``.

Between two synchronisations the non-faulty skew grows by at most
``2 * rho * period``; each synchronisation contracts it by the MSR
contraction factor ``K``, so the steady-state skew is bounded by

    skew_bound = 2 * rho * period / (1 - K)      (+ initial transient)

which :func:`steady_state_skew_bound` computes and the experiment
checks against measured trajectories.

The fault machinery is the same as the agreement simulator's: agents
move per the model's timing, faulty processes send arbitrary readings,
cured processes are silent (M1), broadcast a corrupted reading (M2) or
send a planted queue (M3); in M4 the senders of the round are the
agent hosts.  Validity here means a non-faulty logical clock never
leaves the envelope of non-faulty readings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..faults.adversary import Adversary
from ..faults.models import CuredSendBehavior, MobileModel, get_semantics
from ..faults.view import AdversaryView
from ..msr.base import MSRFunction
from ..msr.multiset import ValueMultiset
from ..runtime.rng import derive_rng

__all__ = [
    "ClockConfig",
    "ClockSyncRound",
    "ClockSyncTrace",
    "ClockSyncSimulator",
    "steady_state_skew_bound",
]


def steady_state_skew_bound(rho: float, period: float, contraction: float) -> float:
    """Steady-state non-faulty skew bound for drifting re-synced clocks."""
    if not 0.0 <= contraction < 1.0:
        raise ValueError("contraction must lie in [0, 1) for a bounded skew")
    return 2.0 * rho * period / (1.0 - contraction)


@dataclass(frozen=True)
class ClockConfig:
    """Configuration of a clock-synchronisation run."""

    n: int
    f: int
    model: MobileModel
    algorithm: MSRFunction
    adversary: Adversary
    #: Maximum absolute drift rate of any hardware clock.
    rho: float = 1e-4
    #: Real-time interval between synchronisation rounds.
    period: float = 10.0
    #: Number of synchronisation rounds to simulate.
    sync_rounds: int = 50
    #: Spread of the initial clock phases.
    initial_phase_spread: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("n must be positive")
        if not 0 <= self.f <= self.n:
            raise ValueError("f must lie in [0, n]")
        if self.rho < 0 or self.period <= 0:
            raise ValueError("rho must be >= 0 and period > 0")
        if self.sync_rounds < 1:
            raise ValueError("sync_rounds must be positive")


@dataclass(frozen=True)
class ClockSyncRound:
    """Measurements of one synchronisation round."""

    round_index: int
    time: float
    faulty: frozenset[int]
    cured: frozenset[int]
    #: Skew of non-faulty logical clocks just before re-syncing.
    skew_before: float
    #: Skew just after applying the MSR adjustment.
    skew_after: float


@dataclass
class ClockSyncTrace:
    """Complete clock-synchronisation execution record."""

    config: ClockConfig
    rounds: list[ClockSyncRound] = field(default_factory=list)

    def max_skew_after(self, skip_transient: int = 2) -> float:
        """Largest post-sync skew after the initial transient rounds."""
        relevant = self.rounds[skip_transient:] or self.rounds
        return max(r.skew_after for r in relevant)

    def max_skew_before(self, skip_transient: int = 2) -> float:
        """Largest pre-sync skew after the initial transient rounds."""
        relevant = self.rounds[skip_transient:] or self.rounds
        return max(r.skew_before for r in relevant)

    def skew_series(self) -> list[float]:
        """Post-sync skew per round (the figure series)."""
        return [r.skew_after for r in self.rounds]


class ClockSyncSimulator:
    """Drives drifting clocks through periodic MSR synchronisations."""

    def __init__(self, config: ClockConfig) -> None:
        self.config = config
        self.semantics = get_semantics(config.model)
        rng = derive_rng(config.seed, "clock-sync", "init")
        self._drift = [
            rng.uniform(-config.rho, config.rho) for _ in range(config.n)
        ]
        self._phase = [
            rng.uniform(0.0, config.initial_phase_spread) for _ in range(config.n)
        ]
        self._adjustment = [0.0] * config.n
        self._adversary_rng = derive_rng(config.seed, "clock-sync", "adversary")
        self._positions: frozenset[int] | None = None

    # -- clock readings ---------------------------------------------------------

    def hardware(self, pid: int, time: float) -> float:
        """Hardware clock of ``pid`` at real time ``time``."""
        return (1.0 + self._drift[pid]) * time + self._phase[pid]

    def logical(self, pid: int, time: float) -> float:
        """Logical clock of ``pid`` at real time ``time``."""
        return self.hardware(pid, time) + self._adjustment[pid]

    # -- simulation ----------------------------------------------------------------

    def run(self) -> ClockSyncTrace:
        """Execute all synchronisation rounds."""
        trace = ClockSyncTrace(config=self.config)
        for round_index in range(self.config.sync_rounds):
            trace.rounds.append(self._sync_round(round_index))
        return trace

    def _sync_round(self, round_index: int) -> ClockSyncRound:
        config = self.config
        time = (round_index + 1) * config.period
        faulty_at_send, cured, cured_payload = self._move_agents(round_index, time)

        readings = {pid: self.logical(pid, time) for pid in range(config.n)}
        # Pre-sync skew over *correct* clocks: cured ones still hold the
        # corrupted adjustment the agent left, which the coming
        # computation phase repairs (Lemma 5's analogue).
        skew_before = _spread(
            readings[pid]
            for pid in range(config.n)
            if pid not in faulty_at_send and pid not in cured
        )

        view = self._view(round_index, readings, faulty_at_send, cured)
        inboxes = self._exchange(readings, view, faulty_at_send, cured, cured_payload)

        # In M4 the exchange just moved the agents with the messages, so
        # the processes occupied during the computation phase are the new
        # hosts; in M1-M3 they are the send-phase hosts.
        occupied = self._positions if self._positions is not None else frozenset()
        computing = [pid for pid in range(config.n) if pid not in occupied]

        # Computation phase: every non-occupied process (cured included,
        # Lemma 5) re-targets its logical clock to the MSR value of what
        # it received.
        for pid in computing:
            received = ValueMultiset(inboxes[pid].values())
            target = config.algorithm(received)
            self._adjustment[pid] += target - readings[pid]
        for pid in occupied:
            # The agent corrupts the host's adjustment; it is rebuilt
            # from received readings at the next non-faulty sync.
            self._adjustment[pid] += self._adversary_rng.uniform(-1.0, 1.0)

        skew_after = _spread(self.logical(pid, time) for pid in computing)
        return ClockSyncRound(
            round_index=round_index,
            time=time,
            faulty=faulty_at_send,
            cured=cured,
            skew_before=skew_before,
            skew_after=skew_after,
        )

    # -- fault machinery --------------------------------------------------------------

    def _move_agents(
        self, round_index: int, time: float
    ) -> tuple[frozenset[int], frozenset[int], dict[int, float]]:
        """Apply the model's movement timing; returns (faulty, cured,
        corrupted cured readings)."""
        config = self.config
        readings = {pid: self.logical(pid, time) for pid in range(config.n)}
        if self._positions is None:
            self._positions = config.adversary.initial_positions(
                config.n, config.f, self._adversary_rng
            )
            return self._positions, frozenset(), {}
        if self.semantics.moves_with_message:
            # M4: current hosts send Byzantine values; agents then ride
            # to the next hosts, handled at the end of the exchange.
            return self._positions, frozenset(), {}
        view = self._view(round_index, readings, self._positions, frozenset())
        new_positions = config.adversary.next_positions(view)
        cured = self._positions - new_positions
        self._positions = new_positions
        payload = {
            pid: config.adversary.departure_value(view, pid) for pid in cured
        }
        return new_positions, cured, payload

    def _exchange(
        self,
        readings: dict[int, float],
        view: AdversaryView,
        faulty: frozenset[int],
        cured: frozenset[int],
        cured_payload: dict[int, float],
    ) -> dict[int, dict[int, float]]:
        """Send + receive phases; returns per-recipient inboxes."""
        config = self.config
        inboxes: dict[int, dict[int, float]] = {
            pid: {} for pid in range(config.n)
        }
        for sender in range(config.n):
            if sender in faulty:
                for recipient in range(config.n):
                    inboxes[recipient][sender] = config.adversary.attack_message(
                        view, sender, recipient
                    )
                continue
            if sender in cured:
                behavior = self.semantics.cured_send
                if behavior is CuredSendBehavior.SILENT:
                    continue
                if behavior is CuredSendBehavior.BROADCAST_STATE:
                    for recipient in range(config.n):
                        inboxes[recipient][sender] = cured_payload[sender]
                    continue
                if behavior is CuredSendBehavior.PLANTED_QUEUE:
                    for recipient in range(config.n):
                        inboxes[recipient][sender] = config.adversary.planted_message(
                            view, sender, recipient
                        )
                    continue
            for recipient in range(config.n):
                inboxes[recipient][sender] = readings[sender]

        if self.semantics.moves_with_message and self._positions is not None:
            # M4 movement: agents relocate with the messages just sent.
            self._positions = config.adversary.next_positions(view)
        return inboxes

    def _view(
        self,
        round_index: int,
        readings: dict[int, float],
        positions: frozenset[int],
        cured: frozenset[int],
    ) -> AdversaryView:
        correct = {
            pid: value
            for pid, value in readings.items()
            if pid not in positions and pid not in cured
        }
        return AdversaryView(
            round_index=round_index,
            n=self.config.n,
            f=self.config.f,
            values=readings,
            positions=positions,
            cured=cured,
            correct_values=correct,
            rng=self._adversary_rng,
        )


def _spread(values) -> float:
    values = list(values)
    if not values:
        return 0.0
    return max(values) - min(values)

"""Approximate interactive consistency under mobile Byzantine faults.

The paper's conclusion proposes reusing its technique for "agreement,
clock synchronization, interactive consistency etc.".  This extension
covers interactive consistency (IC): every process must output a
*vector* with one entry per process, approximating each process's
input.

Construction
------------
IC decomposes into ``n`` parallel approximate agreements, one per
source:

1. **Dissemination** -- every source broadcasts its input once.
   Authenticated reliable channels deliver a correct source's input
   exactly; a source occupied by an agent sends arbitrary per-recipient
   values.
2. **Voting** -- for each source ``k``, the processes run the MSR
   agreement of the main library, seeded with what they received from
   ``k``.  All ``n`` instances share one fault pattern: an agent on a
   process corrupts *all* coordinates of what it says (realised by
   running the per-coordinate simulations with identical seeds and a
   value-blind movement strategy, as in :mod:`repro.extensions.multidim`).

Guarantees (with ``n > n_Mi``, paper Table 2):

* **eps-Agreement** per coordinate: non-faulty vectors agree within
  ``epsilon`` entry-wise;
* **Exact validity for correct sources**: a source that was non-faulty
  at dissemination time gave every non-faulty process the *same* value,
  so the coordinate starts unanimous and -- by P1 -- remains exactly the
  input forever (unanimity is an MSR fixpoint).  Cured processes
  re-acquire the exact value from the others' copies.
* **Range validity for faulty sources**: outputs stay inside the range
  of the values the source disseminated.

The per-coordinate round-0 agent placement coincides with the
dissemination placement (identical derived randomness), which models an
adversary that keeps its agents in place between dissemination and the
first voting round -- a legal choice the adversary is free to make.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..api import mobile_config, movement_strategy, value_strategy
from ..core.specification import check_trace
from ..faults.adversary import Adversary
from ..faults.models import MobileModel, get_semantics
from ..faults.view import AdversaryView
from ..msr.base import MSRFunction
from ..runtime.rng import derive_rng
from ..runtime.simulator import run_simulation
from ..runtime.trace import Trace
from .multidim import ensure_value_blind_movement

__all__ = ["ICResult", "interactive_consistency"]


@dataclass(frozen=True)
class ICResult:
    """Outcome of an interactive-consistency run."""

    n: int
    f: int
    inputs: tuple[float, ...]
    #: Sources occupied by an agent during dissemination.
    faulty_sources: frozenset[int]
    #: ``vectors[i][k]``: process i's output for source k (processes
    #: non-faulty at the decision round only).
    vectors: dict[int, tuple[float, ...]]
    #: The per-source agreement traces.
    traces: tuple[Trace, ...]

    def agreement_spread(self) -> float:
        """Largest entry-wise disagreement between two output vectors."""
        worst = 0.0
        vectors = list(self.vectors.values())
        for i, left in enumerate(vectors):
            for right in vectors[i + 1 :]:
                worst = max(
                    worst, max(abs(a - b) for a, b in zip(left, right))
                )
        return worst

    def exact_validity_error(self) -> float:
        """Largest deviation from a correct source's actual input."""
        worst = 0.0
        for vector in self.vectors.values():
            for source, estimate in enumerate(vector):
                if source not in self.faulty_sources:
                    worst = max(worst, abs(estimate - self.inputs[source]))
        return worst

    def coordinate_verdicts(self):
        """Full specification verdict of every coordinate's agreement."""
        return [check_trace(trace) for trace in self.traces]


def interactive_consistency(
    inputs: Sequence[float],
    model: MobileModel | str = "M1",
    f: int = 1,
    algorithm: str | MSRFunction = "ftm",
    movement="round-robin",
    attack="split",
    rounds: int = 30,
    epsilon: float = 1e-3,
    seed: int = 0,
) -> ICResult:
    """Run approximate interactive consistency on scalar inputs.

    ``inputs[k]`` is process ``k``'s private input; every process
    outputs an ``n``-vector of estimates.  ``n = len(inputs)`` must
    satisfy the model's Table 2 bound for ``f``.
    """
    n = len(inputs)
    semantics = get_semantics(model)
    if n < semantics.required_n(f):
        raise ValueError(
            f"interactive consistency needs n >= {semantics.required_n(f)} "
            f"for {semantics.model.value} with f={f}, got n={n}"
        )
    movement = ensure_value_blind_movement(movement)

    disseminated, faulty_sources = _disseminate(
        inputs, semantics.model, f, movement, attack, seed
    )

    traces: list[Trace] = []
    for source in range(n):
        config = mobile_config(
            model=model,
            f=f,
            n=n,
            algorithm=algorithm,
            movement=movement,
            attack=attack,
            initial_values=[disseminated[receiver][source] for receiver in range(n)],
            rounds=rounds,
            epsilon=epsilon,
            seed=seed,
        )
        traces.append(run_simulation(config))

    patterns = [
        tuple((r.faulty_at_send, r.cured_at_send) for r in trace.rounds)
        for trace in traces
    ]
    if any(pattern != patterns[0] for pattern in patterns):
        raise RuntimeError(
            "fault patterns diverged between coordinates; use a "
            "value-blind movement strategy"
        )

    shared = set(traces[0].decisions)
    for trace in traces[1:]:
        shared &= set(trace.decisions)
    vectors = {
        pid: tuple(trace.decisions[pid] for trace in traces)
        for pid in sorted(shared)
    }
    return ICResult(
        n=n,
        f=f,
        inputs=tuple(float(v) for v in inputs),
        faulty_sources=faulty_sources,
        vectors=vectors,
        traces=tuple(traces),
    )


def _disseminate(inputs, model, f, movement, attack, seed):
    """Round 0: every source broadcasts its input.

    Returns ``(received, faulty_sources)`` where ``received[i][k]`` is
    what process ``i`` stores as source ``k``'s input.  The agent
    placement replays the per-coordinate simulations' round-0 placement
    (identical derived randomness), so the fault pattern is continuous.
    """
    n = len(inputs)
    mover = movement_strategy(movement) if isinstance(movement, str) else movement
    values = value_strategy(attack) if isinstance(attack, str) else attack
    adversary = Adversary(movement=mover, values=values)
    rng = derive_rng(seed, "adversary")
    positions = adversary.initial_positions(n, f, rng)

    correct_values = {
        pid: float(value)
        for pid, value in enumerate(inputs)
        if pid not in positions
    }
    view = AdversaryView(
        round_index=0,
        n=n,
        f=f,
        values={pid: float(value) for pid, value in enumerate(inputs)},
        positions=positions,
        cured=frozenset(),
        correct_values=correct_values,
        rng=rng,
    )

    received: list[list[float]] = []
    for receiver in range(n):
        row = []
        for source in range(n):
            if source in positions:
                row.append(adversary.attack_message(view, source, receiver))
            else:
                row.append(float(inputs[source]))
        received.append(row)
    return received, positions

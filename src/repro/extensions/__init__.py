"""Extensions beyond the paper's core results.

* :mod:`repro.extensions.clock_sync` -- approximate clock
  synchronization under mobile Byzantine faults (the conclusion's
  proposed reuse of the mapping technique);
* :mod:`repro.extensions.multidim` -- coordinate-wise multidimensional
  agreement for the robot-gathering motivation;
* :mod:`repro.extensions.interactive_consistency` -- approximate
  interactive consistency via parallel per-source agreements;
* :mod:`repro.extensions.median_validity` -- the median-validity
  property of the Stolz-Wattenhofer-inspired baseline.
"""

from .clock_sync import (
    ClockConfig,
    ClockSyncRound,
    ClockSyncSimulator,
    ClockSyncTrace,
    steady_state_skew_bound,
)
from .interactive_consistency import ICResult, interactive_consistency
from .median_validity import median_validity_holds, median_validity_interval
from .multidim import (
    MultidimResult,
    ensure_value_blind_movement,
    gathering_diameter,
    multidim_simulate,
)

__all__ = [
    "ClockConfig",
    "ClockSyncRound",
    "ClockSyncTrace",
    "ClockSyncSimulator",
    "steady_state_skew_bound",
    "MultidimResult",
    "multidim_simulate",
    "gathering_diameter",
    "ensure_value_blind_movement",
    "ICResult",
    "interactive_consistency",
    "median_validity_interval",
    "median_validity_holds",
]

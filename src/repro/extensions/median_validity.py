"""Median-validity baseline (Stolz-Wattenhofer-inspired).

Related work (paper Section 2.1): Stolz and Wattenhofer propose
approximate agreement where the decision must lie close to the *median*
of the inputs, achieved by a King-style protocol outside the MSR class.
This reproduction includes the MSR-expressible core of that idea -- the
trimmed median (:func:`repro.msr.algorithms.median_trim`) -- as a
baseline, and this module provides the median-validity *property*
checker used to compare it against plain range validity.

With ``n`` inputs and at most ``f`` Byzantine ones, no algorithm can
pin the exact median (Byzantine inputs shift it by up to ``f`` order
positions), so median validity asks the decision to lie within the
``f``-neighbourhood of the true median of the correct inputs:

    [ sorted_correct[k - f], sorted_correct[k + f] ]    (k = median index,
                                                         clamped to range)

which is the guarantee of [17] restated over the correct inputs.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..msr.multiset import Interval, ValueMultiset

__all__ = ["median_validity_interval", "median_validity_holds"]


def median_validity_interval(
    correct_inputs: Mapping[int, float] | ValueMultiset, f: int
) -> Interval:
    """The f-neighbourhood of the correct inputs' median.

    ``correct_inputs`` are the proposals of the correct processes; the
    interval spans the order statistics ``f`` positions below and above
    the median, clamped to the input range.
    """
    if f < 0:
        raise ValueError("f must be non-negative")
    if isinstance(correct_inputs, ValueMultiset):
        values = correct_inputs
    else:
        values = ValueMultiset(correct_inputs.values())
    if len(values) == 0:
        raise ValueError("need at least one correct input")
    count = len(values)
    lower_mid = (count - 1) // 2
    upper_mid = count // 2
    low_index = max(0, lower_mid - f)
    high_index = min(count - 1, upper_mid + f)
    return Interval(values[low_index], values[high_index])


def median_validity_holds(
    correct_inputs: Mapping[int, float] | ValueMultiset,
    decisions: Mapping[int, float],
    f: int,
    tolerance: float = 1e-9,
) -> bool:
    """Whether every decision lies in the median-validity interval."""
    interval = median_validity_interval(correct_inputs, f)
    return all(
        interval.contains(value, tolerance) for value in decisions.values()
    )

"""Named per-cell probes: extra metrics condensed from the trace.

A :class:`~repro.sweep.engine.CellResult` deliberately carries only the
universal outcome of a run.  Some sweeps need more -- e.g. the Table 1
experiment classifies every cured process's observable send behaviour
from the full message matrix.  A *probe* is a named, registered
function from the finished trace to a tuple of ``(key, value)`` pairs
of primitives; :func:`repro.sweep.engine.run_cell` applies it after the
simulation and stores the pairs in ``CellResult.extras``.

Probes are addressed by name (not by function object) so cells remain
picklable, worker processes can resolve them by import, and the cell
cache can fold the probe into its content hash.  A probe registered
from user code must therefore live in a module the workers import.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

__all__ = ["Probe", "get_probe", "register_probe", "PROBES"]

#: Extras payload: a sorted-stable tuple of (name, primitive) pairs.
Extras = tuple[tuple[str, object], ...]


@dataclass(frozen=True)
class Probe:
    """A registered trace probe.

    ``requires_full`` marks probes that read per-round message records
    and therefore cannot run on the trace-lite fast path; the engine
    rejects such probe/detail combinations up front.
    """

    name: str
    extract: Callable[[object], Extras]
    requires_full: bool = False


def _send_classification(trace) -> Extras:
    """Classify faulty and cured send behaviour over every round.

    The Table 1 probe: per-round cured counts plus the observable fault
    class (silent / symmetric / asymmetric) of every faulty and cured
    process, computed from the message matrix alone.
    """
    from ..core.mapping import classify_cured_processes, classify_send_behavior

    faulty_classes: set[str] = set()
    cured_classes: set[str] = set()
    max_cured = 0
    for record in trace.rounds:
        max_cured = max(max_cured, len(record.cured_at_send))
        for pid in record.faulty_at_send:
            faulty_classes.add(classify_send_behavior(record, pid).value)
        cured_classes.update(
            cls.value for cls in classify_cured_processes(record).values()
        )
    return (
        ("cured_classes", tuple(sorted(cured_classes))),
        ("faulty_classes", tuple(sorted(faulty_classes))),
        ("max_cured", max_cured),
    )


PROBES: dict[str, Probe] = {
    "send-classification": Probe(
        name="send-classification",
        extract=_send_classification,
        requires_full=True,
    ),
}


def register_probe(
    name: str, extract: Callable[[object], Extras], requires_full: bool = False
) -> None:
    """Register a custom probe under ``name``.

    For parallel or sharded sweeps the registration must happen at
    import time of a module worker processes also import.
    """
    if name in PROBES:
        raise ValueError(f"probe {name!r} is already registered")
    PROBES[name] = Probe(name=name, extract=extract, requires_full=requires_full)


def get_probe(name: str) -> Probe:
    """Resolve a probe by name with a helpful error."""
    try:
        return PROBES[name]
    except KeyError:
        known = ", ".join(sorted(PROBES))
        raise KeyError(f"unknown probe {name!r}; known: {known}") from None

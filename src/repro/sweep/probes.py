"""Named per-cell probes: extra metrics condensed from the trace.

A :class:`~repro.sweep.engine.CellResult` deliberately carries only the
universal outcome of a run.  Some sweeps need more -- e.g. the Table 1
experiment classifies every cured process's observable send behaviour
from the full message matrix.  A *probe* is a named, registered
function from the finished trace to a tuple of ``(key, value)`` pairs
of primitives; :func:`repro.sweep.engine.run_cell` applies it after the
simulation and stores the pairs in ``CellResult.extras``.

Probes are addressed by name (not by function object) so cells remain
picklable, worker processes can resolve them by import, and the cell
cache can fold the probe into its content hash.

Two address forms exist:

* a *registered* name (``"send-classification"``) resolved against
  :data:`PROBES` -- registration must happen at import time of a module
  every worker imports;
* an *entry-point* name (``"my_package.my_module:my_probe"``) that any
  process -- including sharded invocations on other hosts and remote
  workers that never ran the registering module -- resolves by
  importing ``my_package.my_module`` and reading the ``my_probe``
  attribute (a :class:`Probe` or a bare extract callable, optionally
  tagged with a ``requires_full`` attribute).  Nothing is ever pickled:
  the name is the whole wire format, so shipping a probe to a remote
  backend is shipping a string.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Callable

__all__ = ["Probe", "get_probe", "register_probe", "PROBES"]

#: Extras payload: a sorted-stable tuple of (name, primitive) pairs.
Extras = tuple[tuple[str, object], ...]


@dataclass(frozen=True)
class Probe:
    """A registered trace probe.

    ``requires_full`` marks probes that read per-round message records
    and therefore cannot run on the trace-lite fast path; the engine
    rejects such probe/detail combinations up front.
    """

    name: str
    extract: Callable[[object], Extras]
    requires_full: bool = False


def _send_classification(trace) -> Extras:
    """Classify faulty and cured send behaviour over every round.

    The Table 1 probe: per-round cured counts plus the observable fault
    class (silent / symmetric / asymmetric) of every faulty and cured
    process, computed from the message matrix alone.
    """
    from ..core.mapping import classify_cured_processes, classify_send_behavior

    faulty_classes: set[str] = set()
    cured_classes: set[str] = set()
    max_cured = 0
    for record in trace.rounds:
        max_cured = max(max_cured, len(record.cured_at_send))
        for pid in record.faulty_at_send:
            faulty_classes.add(classify_send_behavior(record, pid).value)
        cured_classes.update(
            cls.value for cls in classify_cured_processes(record).values()
        )
    return (
        ("cured_classes", tuple(sorted(cured_classes))),
        ("faulty_classes", tuple(sorted(faulty_classes))),
        ("max_cured", max_cured),
    )


PROBES: dict[str, Probe] = {
    "send-classification": Probe(
        name="send-classification",
        extract=_send_classification,
        requires_full=True,
    ),
}


def register_probe(
    name: str, extract: Callable[[object], Extras], requires_full: bool = False
) -> None:
    """Register a custom probe under ``name``.

    For parallel or sharded sweeps the registration must happen at
    import time of a module worker processes also import.
    """
    if name in PROBES:
        raise ValueError(f"probe {name!r} is already registered")
    PROBES[name] = Probe(name=name, extract=extract, requires_full=requires_full)


def decision_extent(trace) -> Extras:
    """Min/max/spread of the decided values (lite-safe).

    Doubles as the reference *entry-point* probe: address it from any
    backend as ``"repro.sweep.probes:decision_extent"`` without
    registering anything.
    """
    decisions = list(trace.decisions.values())
    if not decisions:
        return (("decision_count", 0),)
    return (
        ("decision_count", len(decisions)),
        ("decision_max", max(decisions)),
        ("decision_min", min(decisions)),
    )


def _resolve_entry_point(name: str) -> Probe:
    """Import ``module:attr`` and adapt the target into a :class:`Probe`."""
    module_name, _, attr = name.partition(":")
    if not module_name or not attr:
        raise KeyError(
            f"malformed probe entry point {name!r}: expected "
            "'package.module:attribute'"
        )
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise KeyError(
            f"probe entry point {name!r}: cannot import module "
            f"{module_name!r} ({exc}); the module must be installed on "
            "every worker/shard host"
        ) from None
    try:
        target = getattr(module, attr)
    except AttributeError:
        raise KeyError(
            f"probe entry point {name!r}: module {module_name!r} has no "
            f"attribute {attr!r}"
        ) from None
    if isinstance(target, Probe):
        return target
    if callable(target):
        return Probe(
            name=name,
            extract=target,
            requires_full=bool(getattr(target, "requires_full", False)),
        )
    raise KeyError(
        f"probe entry point {name!r} resolves to {type(target).__name__}, "
        "expected a Probe or a callable(trace) -> extras"
    )


def get_probe(name: str) -> Probe:
    """Resolve a probe by registered name or ``module:attr`` entry point."""
    probe = PROBES.get(name)
    if probe is not None:
        return probe
    if ":" in name:
        return _resolve_entry_point(name)
    known = ", ".join(sorted(PROBES))
    raise KeyError(
        f"unknown probe {name!r}; known: {known} (or address an "
        "importable probe as 'package.module:attribute')"
    )

"""Cell scenarios: the config families a sweep cell can describe.

PR 1's sweep engine only knew the :func:`repro.api.mobile_config`
family, so the experiments that also run static mixed-mode substrates
and lower-bound stall adversaries could not ride the engine.  This
module is the dispatch point that closes the gap: every
:class:`~repro.sweep.grid.CellSpec` names a *scenario*, and each
scenario is a builder from the cell's primitive fields to a validated
:class:`~repro.runtime.config.SimulationConfig`.

Builders must be deterministic pure functions of the cell (the cache
and the sharded backend both rely on it) and raise :class:`ValueError`
on bad parameters so :func:`repro.sweep.engine.run_cell` can condense
the failure into the cell's ``error`` field.

Scenarios:

``mobile``
    The paper's mobile-Byzantine runs via :func:`repro.api.mobile_config`.
``static-mixed``
    A static mixed-mode substrate run: ``params`` carry the ``(a, s, b)``
    fault counts, ``n`` is explicit, the attack is the cell's value
    strategy applied by statically assigned faults.
``stall``
    The Table 2 lower-bound adversary at ``n = n_Mi - 1 + extra``
    (:func:`repro.core.lower_bounds.stall_configuration`); ``params``
    may carry ``extra`` (default 0).
``mixed-stall``
    The camp-split adversary at exactly ``n = 3a + 2s + b`` for a
    mixed-mode count triple (:func:`mixed_stall_config`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from ..core.lower_bounds import stall_configuration
from ..core.mapping import msr_trim_parameter
from ..faults.adversary import Adversary
from ..faults.mixed_mode import MixedModeCounts, StaticFaultAssignment
from ..faults.models import get_semantics
from ..msr.registry import make_algorithm
from ..runtime.config import SimulationConfig, StaticMixedSetup
from ..runtime.termination import FixedRounds
from ..topology import DEFAULT_TOPOLOGY

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a module cycle
    from .grid import CellSpec

__all__ = [
    "SCENARIOS",
    "build_cell_config",
    "mixed_stall_config",
    "register_scenario",
]


def mixed_stall_config(counts: MixedModeCounts, rounds: int = 20) -> SimulationConfig:
    """The camp-split adversary at exactly ``n = 3a + 2s + b``.

    Layout (requires ``a >= 1``): the low camp holds ``a + s`` correct
    processes at 0, the high camp ``a`` correct processes at 1; the
    symmetric faults broadcast 1, the asymmetric ones send 0 to the low
    camp and 1 to the high camp.  Each camp's reduced multiset is then
    unanimous at its own value, freezing the diameter.
    """
    from ..faults.value_strategies import SplitAttack

    if counts.asymmetric < 1:
        raise ValueError("the camp-split stall needs at least one asymmetric fault")
    a, s, b = counts.asymmetric, counts.symmetric, counts.benign
    n = 3 * a + 2 * s + b
    assignment = StaticFaultAssignment.first_processes(
        asymmetric=a, symmetric=s, benign=b
    )
    initial = [0.0] * n
    high_camp_start = (a + s + b) + (a + s)
    for pid in range(high_camp_start, n):
        initial[pid] = 1.0
    return SimulationConfig(
        n=n,
        f=counts.total,
        initial_values=tuple(initial),
        algorithm=make_algorithm("ftm", counts.trim_parameter),
        setup=StaticMixedSetup(
            assignment=assignment, adversary=Adversary(values=SplitAttack())
        ),
        termination=FixedRounds(rounds),
        bound_check="ignore",
    )


def _require_rounds(spec: "CellSpec") -> int:
    if spec.rounds is None:
        raise ValueError(
            f"scenario {spec.scenario!r} needs an explicit round budget "
            "(CellSpec.rounds is None)"
        )
    return spec.rounds


def _counts_from(spec: "CellSpec") -> MixedModeCounts:
    params = spec.params_dict()
    counts = MixedModeCounts(
        asymmetric=int(params.get("a", 0)),
        symmetric=int(params.get("s", 0)),
        benign=int(params.get("b", 0)),
    )
    if counts.total != spec.f:
        raise ValueError(
            f"cell f={spec.f} disagrees with its (a, s, b) total {counts.total}"
        )
    return counts


def _require_bonomi(spec: "CellSpec") -> None:
    """Reject family axes on scenarios whose configs pin the protocol.

    The lower-bound scenarios construct their adversary and population
    to defeat the *Bonomi* voting protocol specifically; running them
    under another family would demonstrate nothing about that family's
    bound.
    """
    if spec.family != "bonomi":
        raise ValueError(
            f"scenario {spec.scenario!r} is defined for the 'bonomi' "
            f"family only (its lower-bound construction targets the MSR "
            f"voting protocol); got family={spec.family!r}"
        )


def _require_default_topology(spec: "CellSpec") -> None:
    """Reject topology axes on scenarios pinned to the complete graph.

    The static-substrate and lower-bound scenarios model the paper's
    full-mesh constructions; a communication-graph axis only applies to
    the ``mobile`` scenario (whose family decides admissibility).
    """
    if spec.topology != DEFAULT_TOPOLOGY:
        raise ValueError(
            f"scenario {spec.scenario!r} models the paper's complete-graph "
            f"substrate and takes no topology axis; got "
            f"topology={spec.topology!r} (topologies apply to 'mobile' cells)"
        )


def _build_mobile(spec: "CellSpec") -> SimulationConfig:
    from ..api import mobile_config

    return mobile_config(
        model=spec.model,
        f=spec.f,
        n=spec.n,
        algorithm=spec.algorithm,
        movement=spec.movement,
        attack=spec.attack,
        epsilon=spec.epsilon,
        seed=spec.seed,
        rounds=spec.rounds,
        max_rounds=spec.max_rounds,
        family=spec.family,
        topology=spec.topology,
    )


def _build_static_mixed(spec: "CellSpec") -> SimulationConfig:
    from ..api import evenly_spread_values, value_strategy

    _require_default_topology(spec)
    counts = _counts_from(spec)
    if spec.n is None:
        raise ValueError("scenario 'static-mixed' needs an explicit n")
    assignment = StaticFaultAssignment.first_processes(
        asymmetric=counts.asymmetric,
        symmetric=counts.symmetric,
        benign=counts.benign,
    )
    return SimulationConfig(
        n=spec.n,
        f=counts.total,
        initial_values=evenly_spread_values(spec.n),
        algorithm=make_algorithm(spec.algorithm, counts.trim_parameter),
        setup=StaticMixedSetup(
            assignment=assignment,
            adversary=Adversary(values=value_strategy(spec.attack)),
        ),
        termination=FixedRounds(_require_rounds(spec)),
        family=spec.family,
    )


def _build_stall(spec: "CellSpec") -> SimulationConfig:
    _require_bonomi(spec)
    _require_default_topology(spec)
    semantics = get_semantics(spec.model)
    function = make_algorithm(
        spec.algorithm, msr_trim_parameter(semantics.model, spec.f)
    )
    extra = int(spec.params_dict().get("extra", 0))
    return stall_configuration(
        spec.model,
        spec.f,
        function,
        rounds=_require_rounds(spec),
        extra_processes=extra,
    )


def _build_mixed_stall(spec: "CellSpec") -> SimulationConfig:
    _require_bonomi(spec)
    _require_default_topology(spec)
    return mixed_stall_config(_counts_from(spec), rounds=_require_rounds(spec))


#: Scenario name -> config builder.  Builders used in parallel sweeps
#: must be importable from this module (workers rebuild cells by name).
SCENARIOS: dict[str, Callable[["CellSpec"], SimulationConfig]] = {
    "mobile": _build_mobile,
    "static-mixed": _build_static_mixed,
    "stall": _build_stall,
    "mixed-stall": _build_mixed_stall,
}


def register_scenario(
    name: str, builder: Callable[["CellSpec"], SimulationConfig]
) -> None:
    """Register a custom scenario builder under ``name``.

    Parallel and sharded execution requires the registration to happen
    at import time of a module the workers also import.
    """
    if name in SCENARIOS:
        raise ValueError(f"scenario {name!r} is already registered")
    SCENARIOS[name] = builder


def build_cell_config(spec: "CellSpec") -> SimulationConfig:
    """Materialize a cell through its scenario's builder."""
    try:
        builder = SCENARIOS[spec.scenario]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise ValueError(
            f"unknown cell scenario {spec.scenario!r}; known: {known}"
        ) from None
    return builder(spec)

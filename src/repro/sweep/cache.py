"""Content-addressed cell cache: memoize sweep cells on disk.

PR 1's determinism contract makes every cell's result a pure function
of ``(CellSpec, trace_detail, probe)`` under a fixed code schema.  The
:class:`CellStore` exploits that: results are stored one-file-per-cell
under a key that is the SHA-256 of the canonical JSON encoding of
exactly those inputs plus :data:`SWEEP_SCHEMA_VERSION`.  Any backend
consults the store before executing a cell and writes through after,
which makes overlapping grids near-free to re-run and interrupted
sweeps resumable -- and lets independently computed shards merge
through a shared store.

Layout::

    <root>/v<SWEEP_SCHEMA_VERSION>/<first two key hex chars>/<key>.json

Bump :data:`SWEEP_SCHEMA_VERSION` whenever the serialized layout *or*
the simulation semantics change: old entries then simply miss (they
live under the old version directory) instead of poisoning new runs.

Robustness contract: a corrupted, truncated or foreign cache entry is
*never* trusted -- :meth:`CellStore.load` re-decodes the stored spec
and compares it field-by-field against the requested one, and treats
any decoding failure as a miss, so the worst a bad entry can cause is
a re-execution.

Floats survive the JSON round-trip bit-exactly (Python encodes them
via ``repr``, the shortest representation that round-trips), so cached
results compare equal to freshly computed ones.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from ..runtime.families import DEFAULT_FAMILY
from ..topology import DEFAULT_TOPOLOGY

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a module cycle
    from .engine import CellResult
    from .grid import CellSpec

__all__ = [
    "SWEEP_SCHEMA_VERSION",
    "CacheGCReport",
    "CacheStats",
    "CellStore",
    "result_to_dict",
    "result_from_dict",
    "spec_to_dict",
    "spec_from_dict",
]

#: Bumped whenever the serialized cell layout or simulation semantics
#: change incompatibly; doubles as the cache directory version.
SWEEP_SCHEMA_VERSION = 1

#: How old a ``.tmp.*`` file must be before :meth:`CellStore.gc` treats
#: it as wreckage of an interrupted write rather than an in-flight one.
_TMP_GRACE_SECONDS = 600.0


@dataclass(frozen=True)
class CacheGCReport:
    """Outcome of one :meth:`CellStore.gc` pass."""

    scanned: int
    kept: int
    removed: int
    freed_bytes: int
    dry_run: bool

    def describe(self) -> str:
        verb = "would remove" if self.dry_run else "removed"
        return (
            f"cache-gc: scanned {self.scanned} entries, kept {self.kept}, "
            f"{verb} {self.removed} ({self.freed_bytes / 1024:.1f} KiB)"
        )


@dataclass(frozen=True)
class CacheStats:
    """Immutable snapshot of one :class:`CellStore`'s traffic counters.

    Surfaced on :class:`~repro.sweep.aggregate.SweepResult` (compare-
    excluded, like ``dispatch``: traffic is a property of the executing
    invocation, not of the result) and printed in the CLI sweep
    summary.  Counters reflect the snapshotting instance's own lookups
    -- the parent process's view of a sweep; worker-process write-
    throughs are not folded back in.
    """

    hits: int = 0
    misses: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def describe(self) -> str:
        return (
            f"{self.hits} hits, {self.misses} misses, "
            f"{self.bytes_read / 1024:.1f} KiB read, "
            f"{self.bytes_written / 1024:.1f} KiB written"
        )


def _freeze(value: Any) -> Any:
    """Recursively convert JSON lists back into the tuples cells use."""
    if isinstance(value, list):
        return tuple(_freeze(item) for item in value)
    return value


def spec_to_dict(spec: "CellSpec") -> dict[str, Any]:
    """Encode a cell spec as JSON-compatible primitives.

    ``family`` and ``topology`` are emitted only off their defaults:
    pre-family (and pre-topology) cells keep their exact canonical
    encoding, so content hashes -- and therefore every
    already-populated cache entry -- stay valid.
    """
    payload = {
        "model": spec.model,
        "f": spec.f,
        "n": spec.n,
        "algorithm": spec.algorithm,
        "movement": spec.movement,
        "attack": spec.attack,
        "epsilon": spec.epsilon,
        "seed": spec.seed,
        "rounds": spec.rounds,
        "max_rounds": spec.max_rounds,
        "scenario": spec.scenario,
        "params": [[name, value] for name, value in spec.params],
    }
    if spec.family != DEFAULT_FAMILY:
        payload["family"] = spec.family
    if spec.topology != DEFAULT_TOPOLOGY:
        payload["topology"] = spec.topology
    return payload


def spec_from_dict(payload: dict[str, Any]) -> "CellSpec":
    """Rebuild a cell spec from :func:`spec_to_dict` output."""
    from .grid import CellSpec

    return CellSpec(
        model=payload["model"],
        f=payload["f"],
        n=payload["n"],
        algorithm=payload["algorithm"],
        movement=payload["movement"],
        attack=payload["attack"],
        epsilon=payload["epsilon"],
        seed=payload["seed"],
        rounds=payload["rounds"],
        max_rounds=payload["max_rounds"],
        scenario=payload["scenario"],
        params=tuple((name, _freeze(value)) for name, value in payload["params"]),
        family=payload.get("family", DEFAULT_FAMILY),
        topology=payload.get("topology", DEFAULT_TOPOLOGY),
    )


def result_to_dict(result: "CellResult") -> dict[str, Any]:
    """Encode a cell result as JSON-compatible primitives."""
    return {
        "spec": spec_to_dict(result.spec),
        "decisions": [[pid, value] for pid, value in result.decisions],
        "rounds": result.rounds,
        "terminated": result.terminated,
        "decision_diameter": result.decision_diameter,
        "diameters": list(result.diameters),
        "termination_ok": result.termination_ok,
        "agreement_ok": result.agreement_ok,
        "validity_ok": result.validity_ok,
        "p1_ok": result.p1_ok,
        "p2_ok": result.p2_ok,
        "error": result.error,
        "extras": [[name, value] for name, value in result.extras],
    }


def result_from_dict(payload: dict[str, Any]) -> "CellResult":
    """Rebuild a cell result from :func:`result_to_dict` output."""
    from .engine import CellResult

    return CellResult(
        spec=spec_from_dict(payload["spec"]),
        decisions=tuple(
            (int(pid), float(value)) for pid, value in payload["decisions"]
        ),
        rounds=payload["rounds"],
        terminated=payload["terminated"],
        decision_diameter=payload["decision_diameter"],
        diameters=tuple(payload["diameters"]),
        termination_ok=payload["termination_ok"],
        agreement_ok=payload["agreement_ok"],
        validity_ok=payload["validity_ok"],
        p1_ok=payload["p1_ok"],
        p2_ok=payload["p2_ok"],
        error=payload["error"],
        extras=tuple(
            (name, _freeze(value)) for name, value in payload["extras"]
        ),
    )


@dataclass
class CellStore:
    """A content-addressed on-disk store of cell results.

    Cheap to construct and picklable (it carries only the root path),
    so worker processes can write through during parallel execution.
    The ``hits``/``misses``/``bytes_read``/``bytes_written`` counters
    track lookups made through *this* instance -- the parent process's
    view of a sweep's cache traffic (worker-side write-throughs happen
    on the workers' own copies and are not folded back).
    """

    root: Path
    hits: int = field(default=0, compare=False)
    misses: int = field(default=0, compare=False)
    bytes_read: int = field(default=0, compare=False)
    bytes_written: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    # -- keys -------------------------------------------------------------------

    def cell_key(
        self, spec: "CellSpec", trace_detail: str, probe: str | None = None
    ) -> str:
        """The content hash addressing one cell's result."""
        payload = {
            "schema": SWEEP_SCHEMA_VERSION,
            "trace_detail": trace_detail,
            "probe": probe,
            "spec": spec_to_dict(spec),
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def path_for(
        self, spec: "CellSpec", trace_detail: str, probe: str | None = None
    ) -> Path:
        key = self.cell_key(spec, trace_detail, probe)
        return self.root / f"v{SWEEP_SCHEMA_VERSION}" / key[:2] / f"{key}.json"

    # -- lookups ----------------------------------------------------------------

    def load(
        self, spec: "CellSpec", trace_detail: str, probe: str | None = None
    ) -> "CellResult | None":
        """Return the cached result, or ``None`` on any doubt.

        Missing, truncated, corrupted or mismatching entries all count
        as misses; the caller re-executes the cell and overwrites.
        """
        path = self.path_for(spec, trace_detail, probe)
        try:
            text = path.read_text(encoding="utf-8")
            self.bytes_read += len(text)
            payload = json.loads(text)
            if payload.get("schema") != SWEEP_SCHEMA_VERSION:
                return None
            if payload.get("trace_detail") != trace_detail:
                return None
            if payload.get("probe") != probe:
                return None
            result = result_from_dict(payload["result"])
        except (OSError, ValueError, KeyError, TypeError):
            return None
        if result.spec != spec:
            return None
        return result

    def save(
        self, result: "CellResult", trace_detail: str, probe: str | None = None
    ) -> Path:
        """Write a result through to the store (atomic per entry)."""
        path = self.path_for(result.spec, trace_detail, probe)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": SWEEP_SCHEMA_VERSION,
            "trace_detail": trace_detail,
            "probe": probe,
            "result": result_to_dict(result),
        }
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        text = json.dumps(payload, sort_keys=True)
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, path)
        self.bytes_written += len(text)
        return path

    # -- maintenance ------------------------------------------------------------

    def gc(
        self,
        older_than: float | None = None,
        keep_versions: "set[int] | None" = None,
        dry_run: bool = False,
        now: float | None = None,
        max_bytes: int | None = None,
    ) -> "CacheGCReport":
        """Evict stale entries from a long-lived store.

        An entry is evicted when its schema version directory is not in
        ``keep_versions`` (default: only the current
        :data:`SWEEP_SCHEMA_VERSION` -- superseded versions can never be
        read again and only waste disk), **or** when ``older_than`` is
        given and the entry file was last written more than that many
        seconds before ``now``.  Orphaned ``.tmp.*`` files from
        interrupted atomic writes are evicted once they are older than
        a short grace period (an atomic write is in-flight for
        milliseconds; anything older is wreckage).

        ``max_bytes`` caps the total size of the *surviving* entries:
        after the version/age filters, the oldest survivors (by mtime,
        path-tiebroken for determinism) are evicted until the store
        fits -- the size-based knob for long-lived cell stores on
        shared runners.  With ``dry_run=True`` nothing is deleted; the
        report counts what *would* go.  A missing or empty store is a
        no-op.

        Concurrent sweeps are safe: the tmp grace period keeps gc away
        from in-flight writes, and evicting a finished entry at worst
        costs the next sweep a recomputation -- the store is a cache,
        never the source of truth.
        """
        import time

        if now is None:
            now = time.time()
        if keep_versions is None:
            keep_versions = {SWEEP_SCHEMA_VERSION}
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be non-negative, got {max_bytes}")
        if older_than is not None and older_than < 0:
            raise ValueError(
                f"older_than must be non-negative, got {older_than}"
            )
        cutoff = None if older_than is None else now - older_than
        scanned = kept = removed = 0
        freed_bytes = 0
        root = Path(self.root)
        if not root.is_dir():
            return CacheGCReport(0, 0, 0, 0, dry_run)

        def evict(path: Path, size: int | None = None) -> None:
            nonlocal removed, freed_bytes
            removed += 1
            try:
                freed_bytes += path.stat().st_size if size is None else size
                if not dry_run:
                    path.unlink()
            except OSError:
                pass

        #: Surviving result entries as (mtime, path, size), fed to the
        #: size cap below; tmp files never count towards the budget.
        survivors: list[tuple[float, Path, int]] = []
        version_dirs: list[Path] = []
        for version_dir in sorted(root.glob("v*")):
            if not version_dir.is_dir():
                continue
            try:
                version = int(version_dir.name[1:])
            except ValueError:
                continue  # foreign directory: never touch it
            version_dirs.append(version_dir)
            stale_version = version not in keep_versions
            for entry in sorted(version_dir.glob("*/*")):
                if not entry.is_file():
                    continue
                scanned += 1
                try:
                    stat = entry.stat()
                except OSError:
                    continue
                mtime = stat.st_mtime
                if ".tmp." in entry.name:
                    # Grace period: a concurrent save() is between its
                    # tmp write and os.replace for milliseconds at
                    # most; never race it.
                    if now - mtime > _TMP_GRACE_SECONDS:
                        evict(entry, stat.st_size)
                    else:
                        kept += 1
                    continue
                if stale_version or (cutoff is not None and mtime < cutoff):
                    evict(entry, stat.st_size)
                else:
                    kept += 1
                    survivors.append((mtime, entry, stat.st_size))

        if max_bytes is not None:
            total = sum(size for _, _, size in survivors)
            # Oldest-first eviction until the survivors fit the cap;
            # the path tiebreak keeps equal-mtime runs deterministic.
            for mtime, entry, size in sorted(survivors):
                if total <= max_bytes:
                    break
                evict(entry, size)
                kept -= 1
                total -= size

        if not dry_run:
            # Prune now-empty shard/version directories.
            for version_dir in version_dirs:
                for subdir in sorted(version_dir.glob("*")):
                    if subdir.is_dir():
                        try:
                            subdir.rmdir()
                        except OSError:
                            pass
                try:
                    version_dir.rmdir()
                except OSError:
                    pass
        return CacheGCReport(scanned, kept, removed, freed_bytes, dry_run)

    # -- bookkeeping ------------------------------------------------------------

    def record(self, hit: bool) -> None:
        """Count one lookup outcome."""
        if hit:
            self.hits += 1
        else:
            self.misses += 1

    def snapshot(self) -> CacheStats:
        """An immutable copy of this instance's traffic counters."""
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            bytes_read=self.bytes_read,
            bytes_written=self.bytes_written,
        )

    def stats(self) -> str:
        """Human-readable counter summary for CLI banners."""
        return self.snapshot().describe()

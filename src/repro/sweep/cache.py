"""Content-addressed cell cache: memoize sweep cells on disk.

PR 1's determinism contract makes every cell's result a pure function
of ``(CellSpec, trace_detail, probe)`` under a fixed code schema.  The
:class:`CellStore` exploits that: results are stored one-file-per-cell
under a key that is the SHA-256 of the canonical JSON encoding of
exactly those inputs plus :data:`SWEEP_SCHEMA_VERSION`.  Any backend
consults the store before executing a cell and writes through after,
which makes overlapping grids near-free to re-run and interrupted
sweeps resumable -- and lets independently computed shards merge
through a shared store.

Layout::

    <root>/v<SWEEP_SCHEMA_VERSION>/<first two key hex chars>/<key>.json

Bump :data:`SWEEP_SCHEMA_VERSION` whenever the serialized layout *or*
the simulation semantics change: old entries then simply miss (they
live under the old version directory) instead of poisoning new runs.

Robustness contract: a corrupted, truncated or foreign cache entry is
*never* trusted -- :meth:`CellStore.load` re-decodes the stored spec
and compares it field-by-field against the requested one, and treats
any decoding failure as a miss, so the worst a bad entry can cause is
a re-execution.

Floats survive the JSON round-trip bit-exactly (Python encodes them
via ``repr``, the shortest representation that round-trips), so cached
results compare equal to freshly computed ones.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a module cycle
    from .engine import CellResult
    from .grid import CellSpec

__all__ = [
    "SWEEP_SCHEMA_VERSION",
    "CellStore",
    "result_to_dict",
    "result_from_dict",
    "spec_to_dict",
    "spec_from_dict",
]

#: Bumped whenever the serialized cell layout or simulation semantics
#: change incompatibly; doubles as the cache directory version.
SWEEP_SCHEMA_VERSION = 1


def _freeze(value: Any) -> Any:
    """Recursively convert JSON lists back into the tuples cells use."""
    if isinstance(value, list):
        return tuple(_freeze(item) for item in value)
    return value


def spec_to_dict(spec: "CellSpec") -> dict[str, Any]:
    """Encode a cell spec as JSON-compatible primitives."""
    return {
        "model": spec.model,
        "f": spec.f,
        "n": spec.n,
        "algorithm": spec.algorithm,
        "movement": spec.movement,
        "attack": spec.attack,
        "epsilon": spec.epsilon,
        "seed": spec.seed,
        "rounds": spec.rounds,
        "max_rounds": spec.max_rounds,
        "scenario": spec.scenario,
        "params": [[name, value] for name, value in spec.params],
    }


def spec_from_dict(payload: dict[str, Any]) -> "CellSpec":
    """Rebuild a cell spec from :func:`spec_to_dict` output."""
    from .grid import CellSpec

    return CellSpec(
        model=payload["model"],
        f=payload["f"],
        n=payload["n"],
        algorithm=payload["algorithm"],
        movement=payload["movement"],
        attack=payload["attack"],
        epsilon=payload["epsilon"],
        seed=payload["seed"],
        rounds=payload["rounds"],
        max_rounds=payload["max_rounds"],
        scenario=payload["scenario"],
        params=tuple((name, _freeze(value)) for name, value in payload["params"]),
    )


def result_to_dict(result: "CellResult") -> dict[str, Any]:
    """Encode a cell result as JSON-compatible primitives."""
    return {
        "spec": spec_to_dict(result.spec),
        "decisions": [[pid, value] for pid, value in result.decisions],
        "rounds": result.rounds,
        "terminated": result.terminated,
        "decision_diameter": result.decision_diameter,
        "diameters": list(result.diameters),
        "termination_ok": result.termination_ok,
        "agreement_ok": result.agreement_ok,
        "validity_ok": result.validity_ok,
        "p1_ok": result.p1_ok,
        "p2_ok": result.p2_ok,
        "error": result.error,
        "extras": [[name, value] for name, value in result.extras],
    }


def result_from_dict(payload: dict[str, Any]) -> "CellResult":
    """Rebuild a cell result from :func:`result_to_dict` output."""
    from .engine import CellResult

    return CellResult(
        spec=spec_from_dict(payload["spec"]),
        decisions=tuple(
            (int(pid), float(value)) for pid, value in payload["decisions"]
        ),
        rounds=payload["rounds"],
        terminated=payload["terminated"],
        decision_diameter=payload["decision_diameter"],
        diameters=tuple(payload["diameters"]),
        termination_ok=payload["termination_ok"],
        agreement_ok=payload["agreement_ok"],
        validity_ok=payload["validity_ok"],
        p1_ok=payload["p1_ok"],
        p2_ok=payload["p2_ok"],
        error=payload["error"],
        extras=tuple(
            (name, _freeze(value)) for name, value in payload["extras"]
        ),
    )


@dataclass
class CellStore:
    """A content-addressed on-disk store of cell results.

    Cheap to construct and picklable (it carries only the root path),
    so worker processes can write through during parallel execution.
    The ``hits``/``misses`` counters track lookups made through *this*
    instance -- the parent process's view of a sweep's cache traffic.
    """

    root: Path
    hits: int = field(default=0, compare=False)
    misses: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    # -- keys -------------------------------------------------------------------

    def cell_key(
        self, spec: "CellSpec", trace_detail: str, probe: str | None = None
    ) -> str:
        """The content hash addressing one cell's result."""
        payload = {
            "schema": SWEEP_SCHEMA_VERSION,
            "trace_detail": trace_detail,
            "probe": probe,
            "spec": spec_to_dict(spec),
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def path_for(
        self, spec: "CellSpec", trace_detail: str, probe: str | None = None
    ) -> Path:
        key = self.cell_key(spec, trace_detail, probe)
        return self.root / f"v{SWEEP_SCHEMA_VERSION}" / key[:2] / f"{key}.json"

    # -- lookups ----------------------------------------------------------------

    def load(
        self, spec: "CellSpec", trace_detail: str, probe: str | None = None
    ) -> "CellResult | None":
        """Return the cached result, or ``None`` on any doubt.

        Missing, truncated, corrupted or mismatching entries all count
        as misses; the caller re-executes the cell and overwrites.
        """
        path = self.path_for(spec, trace_detail, probe)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            if payload.get("schema") != SWEEP_SCHEMA_VERSION:
                return None
            if payload.get("trace_detail") != trace_detail:
                return None
            if payload.get("probe") != probe:
                return None
            result = result_from_dict(payload["result"])
        except (OSError, ValueError, KeyError, TypeError):
            return None
        if result.spec != spec:
            return None
        return result

    def save(
        self, result: "CellResult", trace_detail: str, probe: str | None = None
    ) -> Path:
        """Write a result through to the store (atomic per entry)."""
        path = self.path_for(result.spec, trace_detail, probe)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": SWEEP_SCHEMA_VERSION,
            "trace_detail": trace_detail,
            "probe": probe,
            "result": result_to_dict(result),
        }
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
        os.replace(tmp, path)
        return path

    # -- bookkeeping ------------------------------------------------------------

    def record(self, hit: bool) -> None:
        """Count one lookup outcome."""
        if hit:
            self.hits += 1
        else:
            self.misses += 1

    def stats(self) -> str:
        """Human-readable counter summary for CLI banners."""
        return f"{self.hits} hits, {self.misses} misses"

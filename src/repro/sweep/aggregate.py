"""Sweep aggregation into the harness's tables and series types.

A :class:`SweepResult` is the ordered collection of per-cell outcomes;
its methods reduce the grid back into the shapes the rest of the
harness speaks: :func:`repro.analysis.render_table` tables (per-cell
and grouped summaries) and :class:`repro.analysis.Series` diameter
trajectories (the "figures" of the terminal harness).
"""

from __future__ import annotations

import math
from collections.abc import Iterator
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..analysis import Series, render_table, summarize
from ..runtime.families import DEFAULT_FAMILY

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a module cycle
    from .engine import CellResult

__all__ = ["SweepResult"]


@dataclass(frozen=True)
class SweepResult:
    """Every cell outcome of one sweep, sorted by cell key.

    ``complete`` is ``False`` only for the partial result of one shard
    of a sharded sweep whose sibling shards are still outstanding (see
    :class:`repro.sweep.backends.ShardedBackend`).

    ``dispatch`` records how the cells were actually executed --
    ``"serial"``, ``"parallel"``, their ``"batched-"`` variants, or a
    fallback label when a pooled backend decided a pool could not win
    (e.g. one usable CPU) and ran in-process instead.  It is excluded
    from equality: the decision is a property of the executing machine,
    not of the result, and warm-cache reruns must compare equal to the
    cold runs that produced them.
    """

    cells: tuple["CellResult", ...]
    trace_detail: str = "lite"
    workers: int = 1
    complete: bool = True
    dispatch: str = field(default="serial", compare=False)

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self) -> Iterator["CellResult"]:
        return iter(self.cells)

    # -- lookups ----------------------------------------------------------------

    def by_key(self) -> dict[tuple, "CellResult"]:
        """Index the results by cell key (the join key across sweeps)."""
        return {cell.key: cell for cell in self.cells}

    def errors(self) -> tuple["CellResult", ...]:
        """Cells that could not run (e.g. below the resilience bound)."""
        return tuple(cell for cell in self.cells if cell.error is not None)

    def satisfied_count(self) -> int:
        """Number of cells whose run met the headline specification."""
        return sum(1 for cell in self.cells if cell.satisfied)

    @property
    def all_satisfied(self) -> bool:
        """Whether every cell ran and met the headline specification."""
        return bool(self.cells) and self.satisfied_count() == len(self.cells)

    # -- tables -----------------------------------------------------------------

    def cell_table(self, title: str | None = None) -> str:
        """Per-cell table: one row per grid point."""
        rows = []
        for cell in self.cells:
            if cell.error is not None:
                rows.append(
                    [cell.spec.describe(), "-", "-", "-", f"error: {cell.error[:60]}"]
                )
                continue
            rows.append(
                [
                    cell.spec.describe(),
                    cell.rounds,
                    cell.decision_diameter,
                    cell.terminated,
                    "ok" if cell.satisfied else "VIOLATED",
                ]
            )
        return render_table(
            ["cell", "rounds", "decision diam", "terminated", "spec"],
            rows,
            title=title or f"Sweep cells ({self.trace_detail} traces)",
        )

    @staticmethod
    def _algorithm_label(spec) -> str:
        """The summary grouping label: MSR function, tagged by family.

        The default family stays untagged so single-family sweeps (and
        the golden reports built from them) render exactly as before;
        multi-family sweeps get one row/series per family instead of
        silently averaging the comparison away.
        """
        if spec.family == DEFAULT_FAMILY:
            return spec.algorithm
        return f"{spec.family}:{spec.algorithm}"

    def summary_rows(self) -> list[list[object]]:
        """One row per (model, family-tagged algorithm) group."""
        groups: dict[tuple[str, str], list["CellResult"]] = {}
        for cell in self.cells:
            if cell.error is not None:
                continue
            groups.setdefault(
                (cell.spec.model, self._algorithm_label(cell.spec)), []
            ).append(cell)
        rows: list[list[object]] = []
        for (model, algorithm), members in sorted(groups.items()):
            rounds = summarize(float(cell.rounds) for cell in members)
            diameters = summarize(cell.decision_diameter for cell in members)
            ok = sum(1 for cell in members if cell.satisfied)
            rows.append(
                [
                    model,
                    algorithm,
                    len(members),
                    f"{ok}/{len(members)}",
                    rounds.render(),
                    diameters.mean,
                ]
            )
        return rows

    def summary_table(self, title: str | None = None) -> str:
        """Grouped summary table; the headline output of a sweep."""
        suffix = ""
        if self.errors():
            suffix = f" ({len(self.errors())} cells failed to run)"
        return render_table(
            [
                "model",
                "alg",
                "cells",
                "spec ok",
                "rounds min/med/p95/max",
                "mean decision diam",
            ],
            self.summary_rows(),
            title=(title or f"Sweep summary over {len(self.cells)} cells") + suffix,
        )

    # -- series -----------------------------------------------------------------

    def diameter_series(self) -> list[Series]:
        """Mean non-faulty diameter trajectory per (model, family-tagged
        algorithm) group.

        Trajectories of different lengths are averaged over the cells
        still running at each round, mirroring how the convergence
        experiments aggregate over seeds.
        """
        groups: dict[tuple[str, str], list[tuple[float, ...]]] = {}
        for cell in self.cells:
            if cell.error is None and cell.diameters:
                groups.setdefault(
                    (cell.spec.model, self._algorithm_label(cell.spec)), []
                ).append(cell.diameters)
        series = []
        for (model, algorithm), trajectories in sorted(groups.items()):
            length = max(len(t) for t in trajectories)
            means = []
            for index in range(length):
                points = [t[index] for t in trajectories if index < len(t)]
                means.append(math.fsum(points) / len(points))
            series.append(Series.of(f"{model}/{algorithm}", means))
        return series

"""Sweep aggregation into the harness's tables and series types.

A :class:`SweepResult` is the ordered collection of per-cell outcomes;
its methods reduce the grid back into the shapes the rest of the
harness speaks: :func:`repro.analysis.render_table` tables (per-cell
and grouped summaries) and :class:`repro.analysis.Series` diameter
trajectories (the "figures" of the terminal harness).

:class:`SweepAccumulator` is the *incremental* builder behind streaming
execution: cells are added one by one as chunks, shards or journal
replays complete, group statistics update as they land, and
:meth:`SweepAccumulator.snapshot` yields at any moment the exact
:class:`SweepResult` a batch merge of the same cells would have
produced -- bit-identical, because every reduction used here
(``min``/``max``/``math.fsum``/sorted percentiles) is independent of
arrival order and the cell tuple is maintained in key order.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from collections.abc import Iterator
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..analysis import Series, render_table, summarize
from ..runtime.families import DEFAULT_FAMILY

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a module cycle
    from .cache import CacheStats
    from .engine import CellResult

__all__ = ["SweepAccumulator", "SweepResult"]


@dataclass(frozen=True)
class SweepResult:
    """Every cell outcome of one sweep, sorted by cell key.

    ``complete`` is ``False`` only for the partial result of one shard
    of a sharded sweep whose sibling shards are still outstanding (see
    :class:`repro.sweep.backends.ShardedBackend`).

    ``dispatch`` records how the cells were actually executed --
    ``"serial"``, ``"parallel"``, their ``"batched-"`` variants, an
    ``"async-"`` work-queue label, or a fallback label when a pooled
    backend decided a pool could not win (e.g. one usable CPU) and ran
    in-process instead.  It is excluded from equality: the decision is
    a property of the executing machine, not of the result, and
    warm-cache reruns must compare equal to the cold runs that produced
    them.  ``cache_stats`` is excluded for the same reason: it carries
    the executing invocation's :class:`~repro.sweep.cache.CacheStats`
    traffic counters (``None`` when no cell cache was attached).
    """

    cells: tuple["CellResult", ...]
    trace_detail: str = "lite"
    workers: int = 1
    complete: bool = True
    dispatch: str = field(default="serial", compare=False)
    cache_stats: "CacheStats | None" = field(default=None, compare=False)

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self) -> Iterator["CellResult"]:
        return iter(self.cells)

    # -- lookups ----------------------------------------------------------------

    def by_key(self) -> dict[tuple, "CellResult"]:
        """Index the results by cell key (the join key across sweeps)."""
        return {cell.key: cell for cell in self.cells}

    def errors(self) -> tuple["CellResult", ...]:
        """Cells that could not run (e.g. below the resilience bound)."""
        return tuple(cell for cell in self.cells if cell.error is not None)

    def satisfied_count(self) -> int:
        """Number of cells whose run met the headline specification."""
        return sum(1 for cell in self.cells if cell.satisfied)

    @property
    def all_satisfied(self) -> bool:
        """Whether every cell ran and met the headline specification."""
        return bool(self.cells) and self.satisfied_count() == len(self.cells)

    # -- tables -----------------------------------------------------------------

    def cell_table(self, title: str | None = None) -> str:
        """Per-cell table: one row per grid point."""
        rows = []
        for cell in self.cells:
            if cell.error is not None:
                rows.append(
                    [cell.spec.describe(), "-", "-", "-", f"error: {cell.error[:60]}"]
                )
                continue
            rows.append(
                [
                    cell.spec.describe(),
                    cell.rounds,
                    cell.decision_diameter,
                    cell.terminated,
                    "ok" if cell.satisfied else "VIOLATED",
                ]
            )
        return render_table(
            ["cell", "rounds", "decision diam", "terminated", "spec"],
            rows,
            title=title or f"Sweep cells ({self.trace_detail} traces)",
        )

    @staticmethod
    def _algorithm_label(spec) -> str:
        """The summary grouping label: MSR function, tagged by family.

        The default family stays untagged so single-family sweeps (and
        the golden reports built from them) render exactly as before;
        multi-family sweeps get one row/series per family instead of
        silently averaging the comparison away.
        """
        if spec.family == DEFAULT_FAMILY:
            return spec.algorithm
        return f"{spec.family}:{spec.algorithm}"

    def summary_rows(self) -> list[list[object]]:
        """One row per (model, family-tagged algorithm) group.

        Error cells count toward their group's ``cells`` and
        ``spec ok`` columns -- a failing cell must not vanish from the
        summary -- but are excluded from the round and diameter
        statistics: their zeroed payload fields are placeholders, not
        observations, and folding them in would silently skew group
        means.  A group whose every cell errored renders ``-`` for
        both statistics.
        """
        groups: dict[tuple[str, str], list["CellResult"]] = {}
        for cell in self.cells:
            groups.setdefault(
                (cell.spec.model, self._algorithm_label(cell.spec)), []
            ).append(cell)
        rows: list[list[object]] = []
        for (model, algorithm), members in sorted(groups.items()):
            ran = [cell for cell in members if cell.error is None]
            ok = sum(1 for cell in ran if cell.satisfied)
            if ran:
                rounds = summarize(float(cell.rounds) for cell in ran)
                diameters = summarize(cell.decision_diameter for cell in ran)
                rendered_rounds: object = rounds.render()
                mean_diameter: object = diameters.mean
            else:
                rendered_rounds = "-"
                mean_diameter = "-"
            rows.append(
                [
                    model,
                    algorithm,
                    len(members),
                    f"{ok}/{len(members)}",
                    rendered_rounds,
                    mean_diameter,
                ]
            )
        return rows

    def summary_table(self, title: str | None = None) -> str:
        """Grouped summary table; the headline output of a sweep."""
        suffix = ""
        if self.errors():
            suffix = f" ({len(self.errors())} cells failed to run)"
        return render_table(
            [
                "model",
                "alg",
                "cells",
                "spec ok",
                "rounds min/med/p95/max",
                "mean decision diam",
            ],
            self.summary_rows(),
            title=(title or f"Sweep summary over {len(self.cells)} cells") + suffix,
        )

    # -- series -----------------------------------------------------------------

    def diameter_series(self) -> list[Series]:
        """Mean non-faulty diameter trajectory per (model, family-tagged
        algorithm) group.

        Trajectories of different lengths are averaged over the cells
        still running at each round, mirroring how the convergence
        experiments aggregate over seeds.
        """
        groups: dict[tuple[str, str], list[tuple[float, ...]]] = {}
        for cell in self.cells:
            if cell.error is None and cell.diameters:
                groups.setdefault(
                    (cell.spec.model, self._algorithm_label(cell.spec)), []
                ).append(cell.diameters)
        series = []
        for (model, algorithm), trajectories in sorted(groups.items()):
            length = max(len(t) for t in trajectories)
            means = []
            for index in range(length):
                points = [t[index] for t in trajectories if index < len(t)]
                means.append(math.fsum(points) / len(points))
            series.append(Series.of(f"{model}/{algorithm}", means))
        return series


class SweepAccumulator:
    """Incremental :class:`SweepResult` builder for streaming execution.

    Feed it cells in *any* order -- as async chunks land, shards merge
    or a resume journal replays -- and read aggregates at any moment:
    :meth:`live_summary_rows` updates from per-group accumulators
    without touching the cell list, and :meth:`snapshot` materializes
    the exact result a batch run over the same cells would return.
    Bit-identity with the batch path holds because the cell tuple is
    maintained in key order (the order every backend's ``finalize``
    sorts into) and every group statistic is computed by
    arrival-order-independent reductions; the streaming equivalence
    suite gates this.

    ``expected`` (when known) sizes progress reporting; duplicate cell
    keys are rejected, mirroring :func:`~repro.sweep.engine.run_sweep`'s
    duplicate-grid-cell validation.
    """

    def __init__(
        self,
        trace_detail: str = "lite",
        workers: int = 1,
        dispatch: str = "serial",
        expected: int | None = None,
    ) -> None:
        self.trace_detail = trace_detail
        self.workers = workers
        self.dispatch = dispatch
        self.expected = expected
        self._cells: list["CellResult"] = []
        self._keys: list[tuple] = []
        self._groups: dict[tuple[str, str], dict[str, object]] = {}
        self._errors = 0
        self._satisfied = 0

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def errors(self) -> int:
        """Cells added so far that could not run."""
        return self._errors

    @property
    def satisfied(self) -> int:
        """Cells added so far that met the headline specification."""
        return self._satisfied

    def add(self, cell: "CellResult") -> int:
        """Fold one finished cell in; returns the running cell count."""
        index = bisect_left(self._keys, cell.key)
        if index < len(self._keys) and self._keys[index] == cell.key:
            raise ValueError(
                f"duplicate cell added to accumulator: {cell.spec.describe()}"
            )
        self._keys.insert(index, cell.key)
        self._cells.insert(index, cell)
        group = self._groups.setdefault(
            (cell.spec.model, SweepResult._algorithm_label(cell.spec)),
            {"rounds": [], "diameters": [], "ok": 0, "errors": 0},
        )
        if cell.error is not None:
            self._errors += 1
            # Error cells count as group members (surfaced in the
            # ``cells`` and ``spec ok`` columns) but contribute no
            # observations: their zeroed rounds/diameter would skew
            # the group means.
            group["errors"] += 1
        else:
            if cell.satisfied:
                self._satisfied += 1
                group["ok"] += 1
            group["rounds"].append(float(cell.rounds))
            group["diameters"].append(cell.decision_diameter)
        return len(self._cells)

    def add_many(self, cells) -> int:
        """Fold a batch of finished cells in; returns the cell count."""
        for cell in cells:
            self.add(cell)
        return len(self._cells)

    def live_summary_rows(self) -> list[list[object]]:
        """Current grouped summary, identical to the batch result's.

        Built from the per-group accumulators alone -- O(group sizes)
        per call, independent of how the cells arrived -- and
        bit-identical to ``snapshot().summary_rows()`` because every
        statistic reduces order-independently.
        """
        rows: list[list[object]] = []
        for (model, algorithm), group in sorted(self._groups.items()):
            members = len(group["rounds"]) + group["errors"]
            if group["rounds"]:
                rounds = summarize(group["rounds"])
                diameters = summarize(group["diameters"])
                rendered_rounds: object = rounds.render()
                mean_diameter: object = diameters.mean
            else:
                rendered_rounds = "-"
                mean_diameter = "-"
            rows.append(
                [
                    model,
                    algorithm,
                    members,
                    f"{group['ok']}/{members}",
                    rendered_rounds,
                    mean_diameter,
                ]
            )
        return rows

    def snapshot(self, complete: bool = True) -> SweepResult:
        """The :class:`SweepResult` of everything folded in so far."""
        return SweepResult(
            cells=tuple(self._cells),
            trace_detail=self.trace_detail,
            workers=self.workers,
            complete=complete,
            dispatch=self.dispatch,
        )

    def result(self) -> SweepResult:
        """Finish the stream; raises if expected cells are missing."""
        if self.expected is not None and len(self._cells) != self.expected:
            raise ValueError(
                f"accumulator holds {len(self._cells)} cells but expected "
                f"{self.expected}"
            )
        return self.snapshot(complete=True)

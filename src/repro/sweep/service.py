"""Sweep service layer: resume journals and the ``sweep serve`` daemon.

Two pieces turn the sweep engine from a batch tool into a service:

:class:`SweepJournal` makes long sweeps *interruptible*.  It is an
append-only record of completed cells under a manifest that pins the
grid (by :func:`~repro.sweep.backends.grid_fingerprint`), trace detail
and probe.  :func:`~repro.sweep.engine.run_sweep` records every result
the moment it lands -- at the streaming granularity of the backend, so
an async chunk that finished before a crash is never recomputed -- and
on the next invocation replays the journal, executing only the cells
still missing.  The resumed aggregate is bit-identical to an
uninterrupted run: cells are pure functions of their spec and the
engine sorts by key, so *where* a result came from cannot matter.

:class:`SweepServer` is the long-lived serving tier: a stdlib-only
(``http.server``) JSON daemon in front of a shared
:class:`~repro.sweep.cache.CellStore`.  Grid requests whose cells are
all cached are answered entirely from the store -- the engine's hit
filter leaves nothing to execute, so no worker pool is ever touched
(the response's ``tier`` field proves it) -- while cold cells are
scheduled through the cross-run engine (the zero-copy shared-memory
stealing pool where more than one worker and CPU exist) and written
through, warming the cache for every later client.

The journal additionally records each fresh result's observed compute
seconds (``elapsed``), making it a calibration source:
:meth:`SweepJournal.observations` feeds
:meth:`~repro.sweep.backends.CostModel.fit`, which replaces the
hand-tuned family cost weights with measured ones.
"""

from __future__ import annotations

import json
import os
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import TYPE_CHECKING

from ..telemetry import TelemetryConfig, activate, get_registry
from .backends import ShmCrossRunBackend, grid_fingerprint
from .cache import (
    SWEEP_SCHEMA_VERSION,
    CellStore,
    result_from_dict,
    result_to_dict,
)
from .grid import GridSpec

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a module cycle
    from collections.abc import Sequence

    from .engine import CellResult

__all__ = [
    "SweepJournal",
    "SweepServer",
    "grid_from_payload",
    "request_json",
    "submit_sweep",
]

_MANIFEST = "manifest.json"
_RESULTS = "results.jsonl"


class SweepJournal:
    """Append-only progress record making one sweep resumable.

    A journal directory holds ``manifest.json`` -- the identity of the
    sweep it records (grid fingerprint and size, trace detail, probe,
    schema version) -- and ``results.jsonl``, one completed cell per
    line, appended and flushed as each result lands.  Opening the
    journal against a grid validates the manifest field by field, so a
    directory left over from a *different* sweep can never silently
    contribute results; a missing manifest starts a fresh journal.

    Replay is deliberately forgiving about the tail: a line truncated
    by the crash that interrupted the sweep parses as corrupt and is
    skipped (that cell simply re-runs), but a *well-formed* result for
    a cell outside the manifest's grid is an error -- that is not crash
    damage, it is the wrong journal.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self._completed: dict[tuple, "CellResult"] = {}
        self._timings: dict[tuple, float] = {}
        self._handle = None

    @property
    def manifest_path(self) -> Path:
        return self.root / _MANIFEST

    @property
    def results_path(self) -> Path:
        return self.root / _RESULTS

    @property
    def completed_count(self) -> int:
        """Cells recorded so far (replayed and fresh)."""
        return len(self._completed)

    def open(
        self,
        cells: "Sequence",
        trace_detail: str,
        probe: str | None,
    ) -> dict[tuple, "CellResult"]:
        """Bind the journal to a sweep; returns the replayed results.

        Creates the directory and manifest on first open, validates the
        manifest against the given sweep otherwise, then replays every
        readable line of the results file.  The returned mapping (cell
        key to result) is what the engine skips re-executing.
        """
        expected = {
            "schema": SWEEP_SCHEMA_VERSION,
            "grid": grid_fingerprint(cells),
            "grid_size": len(cells),
            "trace_detail": trace_detail,
            "probe": probe,
        }
        self.root.mkdir(parents=True, exist_ok=True)
        if self.manifest_path.exists():
            manifest = json.loads(self.manifest_path.read_text(encoding="utf-8"))
            for field, value in expected.items():
                if manifest.get(field) != value:
                    raise ValueError(
                        f"journal at {self.root} records a sweep with "
                        f"{field}={manifest.get(field)!r}, but this sweep "
                        f"has {field}={value!r}; resume the matching sweep "
                        "or use a fresh journal directory"
                    )
        else:
            tmp = self.manifest_path.with_name(
                f"{_MANIFEST}.tmp.{os.getpid()}"
            )
            tmp.write_text(json.dumps(expected, sort_keys=True), encoding="utf-8")
            os.replace(tmp, self.manifest_path)

        grid_keys = {cell.key for cell in cells}
        self._completed = {}
        self._timings = {}
        if self.results_path.exists():
            for line in self.results_path.read_text(encoding="utf-8").splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    result = result_from_dict(entry)
                except (ValueError, KeyError, TypeError):
                    # A line truncated by the interrupting crash: the
                    # cell re-runs, bit-identically.
                    continue
                if result.key not in grid_keys:
                    raise ValueError(
                        f"journal at {self.root} holds a well-formed result "
                        f"for {result.spec.describe()}, which is not a cell "
                        "of this grid -- wrong journal directory?"
                    )
                self._completed[result.key] = result
                elapsed = entry.get("elapsed")
                if isinstance(elapsed, (int, float)) and elapsed > 0:
                    self._timings[result.key] = float(elapsed)
        self._handle = open(self.results_path, "a", encoding="utf-8")
        return dict(self._completed)

    def record(self, result: "CellResult") -> bool:
        """Append one finished cell (idempotent); True when written."""
        if self._handle is None:
            raise ValueError(
                "journal is not open; call open(cells, trace_detail, probe) "
                "first (run_sweep does this when passed the journal)"
            )
        if result.key in self._completed:
            return False
        payload = result_to_dict(result)
        if result.elapsed is not None and result.elapsed > 0:
            # Observed compute seconds ride each line (ignored by
            # result_from_dict, so replay stays schema-compatible);
            # CostModel.fit consumes them via observations().
            payload["elapsed"] = result.elapsed
            self._timings[result.key] = result.elapsed
        self._handle.write(json.dumps(payload, sort_keys=True) + "\n")
        # Flushed per result: a journal that loses the cells finished
        # just before the crash would defeat its purpose.
        self._handle.flush()
        self._completed[result.key] = result
        return True

    def timings(self) -> dict[tuple, float]:
        """Observed compute seconds by cell key (recorded + replayed)."""
        return dict(self._timings)

    def observations(self):
        """Yield ``(result, seconds | None)`` for every completed cell.

        The calibration feed of
        :meth:`~repro.sweep.backends.CostModel.fit`: results whose
        journal line carried no timing (replays from older journals,
        cache hits) yield ``None`` and are skipped by the fitter.
        """
        for key, result in self._completed.items():
            yield result, self._timings.get(key)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


#: GridSpec axis fields a ``/sweep`` request payload may set.
_GRID_FIELDS = (
    "models",
    "fs",
    "ns",
    "algorithms",
    "movements",
    "attacks",
    "epsilons",
    "seeds",
    "rounds",
    "max_rounds",
    "families",
    "topologies",
)


def grid_from_payload(payload: dict) -> GridSpec:
    """Build a :class:`GridSpec` from a JSON request payload.

    Field names match :class:`GridSpec` axes; scalars and lists are
    both accepted (JSON lists arrive as sequences, which the grid
    normalizes), and an integer ``seeds`` means the seed *count*
    ``0..K-1``, mirroring :func:`repro.api.sweep_grid`.  Unknown fields
    are rejected by name -- a typoed axis must not silently sweep the
    default.
    """
    if not isinstance(payload, dict):
        raise ValueError(
            f"grid payload must be a JSON object, got {type(payload).__name__}"
        )
    unknown = sorted(set(payload) - set(_GRID_FIELDS))
    if unknown:
        raise ValueError(
            f"unknown grid field(s) {', '.join(unknown)}; "
            f"known: {', '.join(_GRID_FIELDS)}"
        )
    kwargs = dict(payload)
    if isinstance(kwargs.get("seeds"), int):
        kwargs["seeds"] = tuple(range(kwargs["seeds"]))
    return GridSpec(**kwargs)


class _SweepRequestHandler(BaseHTTPRequestHandler):
    """JSON request handler; all sweep logic lives on the server."""

    server: "SweepServer"

    # The daemon's stderr chatter is opt-in (tests and CI keep it off).
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.server.quiet:  # pragma: no cover - log formatting
            super().log_message(format, *args)

    def _respond(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/healthz":
            self._respond(200, self.server.health())
        elif self.path == "/metrics":
            self._respond(200, get_registry().snapshot())
        elif self.path == "/stats":
            self._respond(200, self.server.stats())
        else:
            self._respond(404, {"error": f"unknown endpoint {self.path}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/shutdown":
            self._respond(200, {"ok": True})
            # shutdown() blocks until serve_forever exits; hand it to a
            # helper thread so this handler can finish its response.
            threading.Thread(target=self.server.shutdown, daemon=True).start()
            return
        if self.path != "/sweep":
            self._respond(404, {"error": f"unknown endpoint {self.path}"})
            return
        length = int(self.headers.get("Content-Length") or 0)
        try:
            payload = json.loads(self.rfile.read(length) or b"{}")
            response = self.server.handle_sweep(payload)
        except (ValueError, TypeError, KeyError) as exc:
            message = (
                exc.args[0] if isinstance(exc, KeyError) and exc.args else exc
            )
            self._respond(400, {"error": str(message)})
            return
        self._respond(200, response)


class SweepServer(ThreadingHTTPServer):
    """The ``sweep serve`` daemon: warm-cache serving tier over HTTP.

    Endpoints (all JSON):

    * ``GET /healthz`` -- liveness, schema version, cache root, uptime,
      request counts (total and per serving tier), worker count, and
      accumulated shared-memory arena stats -- everything the CI
      ``sweep-service`` job asserts on.
    * ``GET /metrics`` -- the process metrics registry snapshot
      (counters, gauges, fixed-edge histograms), including the
      worker-side counters each sweep merged back through its result
      channel.
    * ``GET /stats`` -- service-oriented view: uptime, per-tier request
      counts, arena totals, plus the metrics snapshot.
    * ``POST /sweep`` -- ``{"grid": {axes...}, "trace_detail"?,
      "probe"?}``; runs the grid through the cross-run engine (the
      shared-memory stealing pool where workers and CPUs allow)
      against the shared cache and answers with aggregate counts,
      summary rows and the serving ``tier``: ``"cache"`` (every cell
      answered from the store -- nothing executed, no pool touched),
      ``"compute"`` (all cold) or ``"mixed"``.
    * ``POST /shutdown`` -- clean stop of ``serve_forever``.

    Each request runs against its *own* :class:`CellStore` instance on
    the shared root, so the per-request hit/miss counters -- the
    evidence behind ``tier`` -- are isolated even under the threaded
    server's concurrent requests; the content-addressed store itself is
    safely shared (atomic per-entry writes).

    ``telemetry_dir`` activates a tracing session for the daemon's
    lifetime (``sweep serve --telemetry DIR``): every hosted sweep
    traces into it, and ``/metrics`` then carries the sampled kernel
    counters merged back from pool workers.
    """

    daemon_threads = True

    def __init__(
        self,
        cache_dir: str | Path,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 1,
        quiet: bool = True,
        telemetry_dir: str | Path | None = None,
    ) -> None:
        super().__init__((host, port), _SweepRequestHandler)
        self.cache_root = Path(cache_dir)
        self.workers = workers
        self.quiet = quiet
        self.requests_served = 0
        self.started = time.time()
        self.tier_counts = {"cache": 0, "compute": 0, "mixed": 0}
        #: Accumulated :class:`~repro.sweep.backends.ArenaStats` fields
        #: over every pooled shm dispatch this daemon has hosted.
        self.arena_totals = {
            "shm_results": 0,
            "pickle_results": 0,
            "shm_bytes": 0,
            "blocks": 0,
            "unlinked": 0,
        }
        self._stats_lock = threading.Lock()
        if telemetry_dir is not None:
            activate(TelemetryConfig(directory=str(telemetry_dir)))

    @property
    def address(self) -> str:
        """The base URL clients should talk to."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def health(self) -> dict:
        with self._stats_lock:
            return {
                "ok": True,
                "schema": SWEEP_SCHEMA_VERSION,
                "cache": str(self.cache_root),
                "requests": self.requests_served,
                "tiers": dict(self.tier_counts),
                "uptime_seconds": time.time() - self.started,
                "arena": dict(self.arena_totals),
                "workers": self.workers,
            }

    def stats(self) -> dict:
        """The ``/stats`` payload: service view plus metrics snapshot."""
        payload = self.health()
        payload["metrics"] = get_registry().snapshot()
        return payload

    def handle_sweep(self, payload: dict) -> dict:
        """Run one grid request; the response carries its serving tier."""
        from .engine import run_sweep

        if not isinstance(payload, dict):
            raise ValueError(
                f"request body must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        grid = grid_from_payload(payload.get("grid") or {})
        trace_detail = payload.get("trace_detail", "lite")
        probe = payload.get("probe")
        store = CellStore(self.cache_root)
        # An explicit backend instance (rather than run_sweep's auto
        # resolution) keeps the arena stats of the dispatch readable
        # for the /healthz accumulators; its fallback ladder still
        # drops to in-process serial cross-run at 1 worker/CPU.
        backend = ShmCrossRunBackend(max(self.workers, 1))
        start = time.perf_counter()
        result = run_sweep(
            grid,
            workers=self.workers,
            trace_detail=trace_detail,
            backend=backend,
            cache=store,
            probe=probe,
            cross_run=True,
        )
        elapsed = time.perf_counter() - start
        stats = result.cache_stats
        if stats.misses == 0:
            tier = "cache"
        elif stats.hits == 0:
            tier = "compute"
        else:
            tier = "mixed"
        with self._stats_lock:
            self.requests_served += 1
            self.tier_counts[tier] += 1
            arena = backend.last_arena_stats
            if arena is not None:
                self.arena_totals["shm_results"] += arena.shm_results
                self.arena_totals["pickle_results"] += arena.pickle_results
                self.arena_totals["shm_bytes"] += arena.shm_bytes
                self.arena_totals["blocks"] += arena.blocks
                self.arena_totals["unlinked"] += arena.unlinked
        return {
            "cells": len(result),
            "satisfied": result.satisfied_count(),
            "errors": len(result.errors()),
            "all_satisfied": result.all_satisfied,
            "tier": tier,
            "cached": stats.hits,
            "computed": stats.misses,
            "dispatch": result.dispatch,
            "elapsed_seconds": elapsed,
            "summary": [
                [str(value) for value in row] for row in result.summary_rows()
            ],
        }

    def start_background(self) -> threading.Thread:
        """Serve on a daemon thread (tests and embedded use)."""
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        return thread


def request_json(
    url: str, payload: dict | None = None, timeout: float = 300.0
) -> dict:
    """One JSON round-trip: GET without a payload, POST with one.

    Error responses whose bodies carry the server's ``{"error": ...}``
    envelope are re-raised as :class:`RuntimeError` with that message,
    so callers see the actual validation failure, not just an HTTP 400.
    """
    data = (
        None
        if payload is None
        else json.dumps(payload, sort_keys=True).encode("utf-8")
    )
    request = urllib.request.Request(
        url,
        data=data,
        headers={"Content-Type": "application/json"},
        method="GET" if data is None else "POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        try:
            message = json.loads(exc.read().decode("utf-8")).get("error")
        except (ValueError, OSError):
            message = None
        raise RuntimeError(
            f"sweep server rejected {url}: {message or exc}"
        ) from None


def submit_sweep(
    base_url: str,
    grid: dict,
    trace_detail: str = "lite",
    probe: str | None = None,
    timeout: float = 600.0,
) -> dict:
    """Submit one grid to a running :class:`SweepServer`."""
    payload: dict = {"grid": grid, "trace_detail": trace_detail}
    if probe is not None:
        payload["probe"] = probe
    return request_json(f"{base_url}/sweep", payload, timeout=timeout)

"""Scenario sweeps: grids, pluggable backends, cell cache, aggregation.

The paper's tables quantify over families of runs; this subsystem
executes such families.  Declare a family as a :class:`GridSpec`
(cartesian product over model, f, n, algorithm, movement, attack,
epsilon and seed axes) or as an explicit list of :class:`CellSpec`
cells (including static-mixed and lower-bound *scenarios*), run it
with :func:`run_sweep` -- through a pluggable
:class:`~repro.sweep.backends.SweepBackend` (serial, multiprocessing,
the elastic work-queue :class:`AsyncBackend`, or deterministic shards
across hosts), against an optional content-addressed :class:`CellStore`
cell cache -- and aggregate the :class:`SweepResult` into the harness's
tables and series, batched or streaming (:class:`SweepAccumulator`).
The service layer adds resumable sweeps (:class:`SweepJournal`) and the
``sweep serve`` daemon (:class:`SweepServer`), which answers warm-cache
grid queries without touching a worker pool.

>>> from repro.sweep import GridSpec, run_sweep
>>> result = run_sweep(GridSpec(models=("M1", "M2"), seeds=range(4)))
>>> print(result.summary_table())  # doctest: +SKIP
"""

from .aggregate import SweepAccumulator, SweepResult
from .backends import (
    DISPATCH_MODES,
    ArenaStats,
    AsyncBackend,
    CostModel,
    MultiprocessingBackend,
    SerialBackend,
    ShardedBackend,
    SharedResultArena,
    ShmCrossRunBackend,
    SweepBackend,
    estimate_cell_cost,
    merge_shards,
    plan_shm_layout,
)
from .cache import SWEEP_SCHEMA_VERSION, CacheGCReport, CacheStats, CellStore
from .engine import (
    CellResult,
    run_cell,
    run_cell_batch,
    run_cell_many,
    run_sweep,
)
from .grid import CellSpec, GridSpec
from .probes import Probe, get_probe, register_probe
from .scenarios import build_cell_config, mixed_stall_config, register_scenario
from .service import (
    SweepJournal,
    SweepServer,
    grid_from_payload,
    request_json,
    submit_sweep,
)

__all__ = [
    "CellSpec",
    "GridSpec",
    "CellResult",
    "SweepResult",
    "SweepAccumulator",
    "run_cell",
    "run_cell_batch",
    "run_cell_many",
    "run_sweep",
    "SweepBackend",
    "SerialBackend",
    "MultiprocessingBackend",
    "AsyncBackend",
    "ShardedBackend",
    "ShmCrossRunBackend",
    "SharedResultArena",
    "ArenaStats",
    "CostModel",
    "DISPATCH_MODES",
    "estimate_cell_cost",
    "merge_shards",
    "plan_shm_layout",
    "CellStore",
    "CacheStats",
    "CacheGCReport",
    "SWEEP_SCHEMA_VERSION",
    "SweepJournal",
    "SweepServer",
    "grid_from_payload",
    "request_json",
    "submit_sweep",
    "Probe",
    "get_probe",
    "register_probe",
    "build_cell_config",
    "mixed_stall_config",
    "register_scenario",
]

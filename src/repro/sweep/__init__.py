"""Scenario sweeps: grid specification, chunked execution, aggregation.

The paper's tables quantify over families of runs; this subsystem
executes such families.  Declare a family as a :class:`GridSpec`
(cartesian product over model, f, n, algorithm, movement, attack,
epsilon and seed axes), run it with :func:`run_sweep` -- serially or
over ``multiprocessing`` workers, on full traces or the trace-lite fast
path -- and aggregate the :class:`SweepResult` into the harness's
tables and series.

>>> from repro.sweep import GridSpec, run_sweep
>>> result = run_sweep(GridSpec(models=("M1", "M2"), seeds=range(4)))
>>> print(result.summary_table())  # doctest: +SKIP
"""

from .aggregate import SweepResult
from .engine import CellResult, run_cell, run_sweep
from .grid import CellSpec, GridSpec

__all__ = [
    "CellSpec",
    "GridSpec",
    "CellResult",
    "SweepResult",
    "run_cell",
    "run_sweep",
]

"""Scenario sweeps: grids, pluggable backends, cell cache, aggregation.

The paper's tables quantify over families of runs; this subsystem
executes such families.  Declare a family as a :class:`GridSpec`
(cartesian product over model, f, n, algorithm, movement, attack,
epsilon and seed axes) or as an explicit list of :class:`CellSpec`
cells (including static-mixed and lower-bound *scenarios*), run it
with :func:`run_sweep` -- through a pluggable
:class:`~repro.sweep.backends.SweepBackend` (serial, multiprocessing,
or deterministic shards across hosts), against an optional
content-addressed :class:`CellStore` cell cache -- and aggregate the
:class:`SweepResult` into the harness's tables and series.

>>> from repro.sweep import GridSpec, run_sweep
>>> result = run_sweep(GridSpec(models=("M1", "M2"), seeds=range(4)))
>>> print(result.summary_table())  # doctest: +SKIP
"""

from .aggregate import SweepResult
from .backends import (
    MultiprocessingBackend,
    SerialBackend,
    ShardedBackend,
    SweepBackend,
    merge_shards,
)
from .cache import SWEEP_SCHEMA_VERSION, CacheGCReport, CellStore
from .engine import CellResult, run_cell, run_cell_batch, run_sweep
from .grid import CellSpec, GridSpec
from .probes import Probe, get_probe, register_probe
from .scenarios import build_cell_config, mixed_stall_config, register_scenario

__all__ = [
    "CellSpec",
    "GridSpec",
    "CellResult",
    "SweepResult",
    "run_cell",
    "run_cell_batch",
    "run_sweep",
    "SweepBackend",
    "SerialBackend",
    "MultiprocessingBackend",
    "ShardedBackend",
    "merge_shards",
    "CellStore",
    "CacheGCReport",
    "SWEEP_SCHEMA_VERSION",
    "Probe",
    "get_probe",
    "register_probe",
    "build_cell_config",
    "mixed_stall_config",
    "register_scenario",
]

"""Pluggable sweep execution backends.

PR 1 hardcoded two execution strategies inside ``run_sweep``; this
module extracts them behind one small interface so the engine no longer
cares *how* cells run.  A backend answers three questions:

* :meth:`SweepBackend.select` -- which cells of the grid does this
  invocation own?  (All of them, except for sharded execution.)
* :meth:`SweepBackend.execute` -- how do the owned, uncached cells run?
* :meth:`SweepBackend.finalize` -- how do the results become a
  :class:`~repro.sweep.aggregate.SweepResult`?

Determinism contract: backends never change *what* a cell computes --
each cell runs through the same runner callable -- only where and when.
The engine sorts results by cell key, so any backend yields the same
:class:`SweepResult` for the same grid.

:class:`ShardedBackend` is the distribution building block: invocation
``k`` of ``N`` owns the cells whose rank in key order is ``k mod N``,
spills its finished shard to a shared directory, and -- once every
shard file is present -- merges them into the one bit-identical
result a serial run would have produced.  Shards can run in any order,
on any host that shares the spill directory.

:class:`AsyncBackend` is the elastic single-host backend: instead of
cutting the grid into static chunks up front, a dispatcher feeds the
pool from a shared work queue with *dynamic* chunking -- cells are
ordered heaviest-first (LPT scheduling), expensive cells ship alone,
and cheap cells are batched adaptively into chunks sized by a
continuously calibrated cost model, so per-task dispatch overhead is
amortized without starving the pool behind stragglers.  Results stream
back chunk by chunk through :attr:`SweepBackend.on_result`, which is
what powers streaming aggregation, progress lines and resume journals.

Cross-run execution (:meth:`SweepBackend.execute_many`) is the third
packaging of work: cells are partitioned by
:attr:`~repro.sweep.grid.CellSpec.batch_key` -- the cell's identity
minus its seed, so a group describes the *same* simulation shape
differing only in RNG streams -- and each group is one call to
:func:`~repro.sweep.engine.run_cell_many`, which stacks the group's
runs into a single ``(R, n)`` state array and advances all of them per
round with one vectorized pass.  The partition is a true partition
(every cell lands in exactly one group; families, topologies and
scenarios never mix), results are bit-identical to per-cell execution,
and the dispatch label records the batch structure, e.g.
``cross-run(4 batches, max R=16)``.

:class:`ShmCrossRunBackend` is the parallel packaging of cross-run
work: whole ``batch_key`` groups run in pool workers which write their
stacked results into ``multiprocessing.shared_memory`` blocks (planned
by :class:`~repro.runtime.simulator.ShmBatchLayout`) and ship back only
a compact header plus per-run scalars -- result payloads are never
pickled.  A :class:`SharedResultArena` owns block lifecycle
(create-in-worker, attach/unlink-in-parent, crash-safe sweep of
orphaned blocks), and dispatch is *work-stealing*: each worker slot
owns a deque of batches, and an idle slot steals the largest half of
the heaviest victim's biggest pending batch (splittable by run index,
since runs within a group are independent).  The fallback ladder --
shm pool, pickle pool, in-process serial -- keeps results bit-identical
at every rung; only the dispatch label (e.g. ``cross-run-shm(4
batches, max R=16, steals=1)``) records which rung ran.
"""

from __future__ import annotations

import json
import math
import multiprocessing
import os
import queue
import re
import statistics
import time
import warnings
import weakref
from collections import deque
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from functools import partial
from pathlib import Path
from typing import TYPE_CHECKING

try:  # shared_memory is stdlib but absent on exotic builds.
    from multiprocessing import shared_memory as _shared_memory
except Exception:  # pragma: no cover - exercised only without the module
    _shared_memory = None

from ..runtime.simulator import ShmBatchLayout
from ..telemetry import DEFAULT_SIZE_EDGES, count, observe
from .aggregate import SweepResult
from .cache import (
    SWEEP_SCHEMA_VERSION,
    result_from_dict,
    result_to_dict,
    spec_to_dict,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a module cycle
    from .engine import CellResult
    from .grid import CellSpec

__all__ = [
    "SweepBackend",
    "SerialBackend",
    "MultiprocessingBackend",
    "AsyncBackend",
    "ShardedBackend",
    "ShmCrossRunBackend",
    "SharedResultArena",
    "ArenaStats",
    "CostModel",
    "DISPATCH_MODES",
    "estimate_cell_cost",
    "grid_fingerprint",
    "merge_shards",
    "plan_shm_layout",
]

#: Valid ``dispatch_mode`` values: ``auto`` consults
#: :meth:`MultiprocessingBackend._pool_decision`; ``serial`` forces
#: in-process execution; ``pool`` forces worker processes even where a
#: pool cannot win (1 usable CPU), with a warning -- the knob that
#: makes pool code paths testable on single-CPU CI boxes; ``shm``
#: forces the shared-memory cross-run pool (same warning on one CPU)
#: and implies ``cross_run=True`` in :func:`~repro.sweep.run_sweep`.
DISPATCH_MODES = ("auto", "serial", "pool", "shm")

CellRunner = Callable[["CellSpec"], "CellResult"]
BatchRunner = Callable[[list["CellSpec"]], list["CellResult"]]
#: Cross-run group runner: a batch-compatible cell group in, results
#: (in group order) out -- :func:`~repro.sweep.engine.run_cell_many`.
ManyRunner = Callable[[list["CellSpec"]], list["CellResult"]]

_SHARD_FILE = re.compile(r"^shard-(\d{4})-of-(\d{4})\.json$")


def _batch_groups(cells: Sequence["CellSpec"]) -> list[list["CellSpec"]]:
    """Partition cells into cross-run groups by ``batch_key``.

    Order-preserving on both levels: groups appear in first-cell order
    and cells keep their relative order within a group, so execution
    order (and therefore progress reporting) stays deterministic.
    """
    groups: dict[tuple, list["CellSpec"]] = {}
    for cell in cells:
        groups.setdefault(cell.batch_key, []).append(cell)
    return list(groups.values())


def _cross_run_label(groups: Sequence[Sequence["CellSpec"]], suffix: str = "") -> str:
    """Dispatch label recording the cross-run batch structure."""
    max_r = max((len(group) for group in groups), default=0)
    return f"cross-run({len(groups)} batches, max R={max_r}{suffix})"


def grid_fingerprint(cells: Sequence["CellSpec"]) -> str:
    """A stable content hash of a whole grid (order-independent).

    Recorded in every shard spill file so a merge can prove all shards
    were cut from the same grid -- stale spill files from an earlier
    sweep of a *different* grid must never merge silently.  Callers
    driving multi-host sweeps can also use it to derive a per-grid
    spill directory (the CLI's default when only ``--cache-dir`` is
    given).
    """
    import hashlib
    import json as _json

    canonical = _json.dumps(
        sorted(
            _json.dumps(spec_to_dict(cell), sort_keys=True, separators=(",", ":"))
            for cell in cells
        ),
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _sorted_result(
    results: Sequence["CellResult"],
    trace_detail: str,
    workers: int,
    dispatch: str = "serial",
) -> SweepResult:
    return SweepResult(
        cells=tuple(sorted(results, key=lambda result: result.key)),
        trace_detail=trace_detail,
        workers=workers,
        dispatch=dispatch,
    )


def _usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware).

    The ``REPRO_CPUS`` environment variable pins the count for
    reproducible benchmarks and CI jobs; it is clamped to the actual
    affinity (claiming CPUs the scheduler will not grant would only
    distort pool decisions), and nonsensical values -- non-integers,
    anything below 1 -- warn and are ignored.
    """
    affinity = None
    getter = getattr(os, "sched_getaffinity", None)
    if getter is not None:
        try:
            affinity = len(getter(0)) or 1
        except OSError:  # pragma: no cover - exotic platforms
            affinity = None
    if affinity is None:
        affinity = os.cpu_count() or 1
    override = os.environ.get("REPRO_CPUS")
    if override:
        try:
            pinned = int(override)
        except ValueError:
            warnings.warn(
                f"ignoring REPRO_CPUS={override!r}: not an integer",
                RuntimeWarning,
                stacklevel=2,
            )
            return affinity
        if pinned < 1:
            warnings.warn(
                f"ignoring REPRO_CPUS={override!r}: must be at least 1",
                RuntimeWarning,
                stacklevel=2,
            )
            return affinity
        if pinned > affinity:
            warnings.warn(
                f"REPRO_CPUS={pinned} exceeds the {affinity} usable "
                f"cpu(s) of this process; clamping to {affinity}",
                RuntimeWarning,
                stacklevel=2,
            )
            return affinity
        return pinned
    return affinity


class SweepBackend:
    """Base execution strategy; subclasses override :meth:`execute`.

    ``workers`` is the parallelism the backend reports into
    ``SweepResult.workers`` (1 for serial execution).  ``batch_size``
    switches the engine to :meth:`execute_batch`: cells are grouped
    into batches of that size and each batch runs as *one* dispatch
    through a shared round kernel (see
    :func:`~repro.sweep.engine.run_cell_batch`), which amortizes
    process dispatch and buffer setup over many cheap cells.
    """

    workers: int = 1
    batch_size: int | None = None
    #: How the last :meth:`execute`/:meth:`execute_batch` actually
    #: dispatched its cells; copied into ``SweepResult.dispatch``.
    dispatch: str = "serial"
    #: Execution-strategy override consulted by pooled backends; one of
    #: :data:`DISPATCH_MODES`.
    dispatch_mode: str = "auto"
    #: Optional ``callable(CellResult)`` invoked in the parent process
    #: as results become available.  Granularity is a backend property:
    #: per cell for serial execution, per chunk for the async
    #: dispatcher, on completion for ``pool.map``-style backends (the
    #: engine reports any unreported results after ``execute`` either
    #: way, so callers always observe every result exactly once).
    on_result: Callable[["CellResult"], None] | None = None

    @property
    def wants_batches(self) -> bool:
        """Whether the engine should hand this backend a batch runner."""
        return self.batch_size is not None

    def _emit(self, results: Sequence["CellResult"]) -> None:
        """Report freshly finished results to :attr:`on_result`."""
        if self.on_result is not None:
            for result in results:
                self.on_result(result)

    def select(self, cells: list["CellSpec"]) -> list["CellSpec"]:
        """The subset of the grid this invocation executes."""
        return cells

    def execute(
        self, cells: Sequence["CellSpec"], runner: CellRunner
    ) -> list["CellResult"]:
        raise NotImplementedError

    def execute_batch(
        self, cells: Sequence["CellSpec"], batch_runner: BatchRunner
    ) -> list["CellResult"]:
        """Run the cells in batches of :attr:`batch_size` in-process.

        The default executes each batch serially; pooled backends
        override this to dispatch whole batches to workers.  Results
        are bit-identical to per-cell :meth:`execute` -- batching only
        changes how work is packaged.
        """
        size = self.batch_size or len(cells) or 1
        self.dispatch = "batched-serial"
        results: list["CellResult"] = []
        for start in range(0, len(cells), size):
            batch_results = batch_runner(list(cells[start : start + size]))
            results.extend(batch_results)
            self._emit(batch_results)
        return results

    def execute_many(
        self, cells: Sequence["CellSpec"], many_runner: ManyRunner
    ) -> list["CellResult"]:
        """Run the cells as cross-run groups, one group per dispatch.

        The default executes each ``batch_key`` group in-process
        through the stacked ``(R, n)`` engine; pooled backends
        override this to ship whole groups to workers.  Results are
        bit-identical to :meth:`execute` -- only the packaging (and
        the per-round vectorization within a group) changes.
        """
        groups = _batch_groups(cells)
        self.dispatch = _cross_run_label(groups)
        results: list["CellResult"] = []
        for group in groups:
            group_results = many_runner(group)
            results.extend(group_results)
            self._emit(group_results)
        return results

    def finalize(
        self,
        results: Sequence["CellResult"],
        trace_detail: str,
        probe: str | None = None,
    ) -> SweepResult:
        """Assemble the sweep result from this invocation's results."""
        return _sorted_result(results, trace_detail, self.workers, self.dispatch)


class SerialBackend(SweepBackend):
    """In-process execution, one cell after another."""

    def execute(
        self, cells: Sequence["CellSpec"], runner: CellRunner
    ) -> list["CellResult"]:
        self.dispatch = "serial"
        results: list["CellResult"] = []
        for cell in cells:
            result = runner(cell)
            results.append(result)
            self._emit((result,))
        return results


class MultiprocessingBackend(SweepBackend):
    """Chunked execution across a local ``multiprocessing`` pool.

    ``chunk_size`` defaults to ~4 chunks per worker, balancing
    scheduling overhead against stragglers.  Grids of one cell (or a
    single worker) run inline -- a pool cannot help there.
    ``batch_size`` dispatches whole in-worker batches instead of
    single cells: each batch is one pool task running ``batch_size``
    cells on a shared round kernel, the fix for grids whose cells are
    too cheap to amortize per-cell dispatch.
    """

    def __init__(
        self,
        workers: int,
        chunk_size: int | None = None,
        batch_size: int | None = None,
        dispatch_mode: str = "auto",
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be at least 1, got {workers}")
        if chunk_size is not None and chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        if batch_size is not None and batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if dispatch_mode not in DISPATCH_MODES:
            raise ValueError(
                f"dispatch_mode must be one of {DISPATCH_MODES}, "
                f"got {dispatch_mode!r}"
            )
        self.workers = workers
        self.chunk_size = chunk_size
        self.batch_size = batch_size
        self.dispatch_mode = dispatch_mode

    def _pool_decision(self, tasks: int, batched: bool) -> tuple[bool, str]:
        """Whether a pool can win for ``tasks`` dispatch units, and why.

        A single usable CPU is the canonical lost cause: worker
        processes merely time-slice the same core, so every fork,
        pickle and IPC round-trip is pure overhead (observed as the
        ``batched_speedup = 0.9`` regression on 1-CPU CI runners).
        Those invocations auto-fall back to in-process dispatch; the
        label records the decision in ``SweepResult.dispatch``.

        :attr:`dispatch_mode` overrides the heuristic: ``serial``
        always runs in-process, ``pool`` always dispatches to workers
        -- warning (instead of silently falling back) when only one
        usable CPU exists, so pool code paths stay testable on 1-CPU
        CI boxes at an explicitly acknowledged cost.
        """
        label = "batched-" if batched else ""
        if self.dispatch_mode == "serial":
            return False, f"{label}serial (forced)"
        if tasks < 1:
            return False, f"{label}serial"
        if self.dispatch_mode in ("pool", "shm"):
            cpus = _usable_cpus()
            if cpus < 2:
                # Counted so the CLI can surface a one-line warning
                # summary after the sweep -- RuntimeWarnings otherwise
                # vanish under pytest/capture harnesses.
                count("sweep.pool.forced_one_cpu")
                warnings.warn(
                    f"dispatch mode {self.dispatch_mode!r} forced with "
                    f"{self.workers} workers on {cpus} usable cpu: the "
                    "pool cannot win here (fork/pickle/IPC overhead with "
                    "nothing to overlap); results are identical but slower",
                    RuntimeWarning,
                    stacklevel=3,
                )
                return True, f"{label}parallel (forced on {cpus} usable cpu)"
            return True, f"{label}parallel (forced)"
        if self.workers <= 1 or tasks <= 1:
            return False, f"{label}serial"
        cpus = _usable_cpus()
        if cpus < 2:
            return False, (
                f"{label}serial (auto-fallback: {self.workers} workers "
                f"on {cpus} usable cpu)"
            )
        return True, f"{label}parallel"

    def execute(
        self, cells: Sequence["CellSpec"], runner: CellRunner
    ) -> list["CellResult"]:
        use_pool, self.dispatch = self._pool_decision(len(cells), batched=False)
        if not use_pool:
            return [runner(cell) for cell in cells]
        chunk_size = self.chunk_size
        if chunk_size is None:
            chunk_size = max(1, math.ceil(len(cells) / (self.workers * 4)))
        with multiprocessing.Pool(processes=self.workers) as pool:
            return pool.map(runner, cells, chunksize=chunk_size)

    def execute_batch(
        self, cells: Sequence["CellSpec"], batch_runner: BatchRunner
    ) -> list["CellResult"]:
        size = self.batch_size or len(cells) or 1
        batches = [
            list(cells[start : start + size])
            for start in range(0, len(cells), size)
        ]
        use_pool, self.dispatch = self._pool_decision(len(batches), batched=True)
        if not use_pool:
            return [
                result for batch in batches for result in batch_runner(batch)
            ]
        with multiprocessing.Pool(processes=self.workers) as pool:
            return [
                result
                for batch_results in pool.map(batch_runner, batches, chunksize=1)
                for result in batch_results
            ]

    def execute_many(
        self, cells: Sequence["CellSpec"], many_runner: ManyRunner
    ) -> list["CellResult"]:
        """Dispatch whole cross-run groups to pool workers.

        Each ``batch_key`` group is one pool task advancing its stack
        in a worker; the pool decision treats groups as the dispatch
        unit (a single group has nothing to overlap, so it runs
        inline).  Falls back to the in-process default wherever a pool
        cannot win.
        """
        groups = _batch_groups(cells)
        use_pool, _ = self._pool_decision(len(groups), batched=True)
        if not use_pool:
            self.dispatch = _cross_run_label(groups)
            results: list["CellResult"] = []
            for group in groups:
                group_results = many_runner(group)
                results.extend(group_results)
                self._emit(group_results)
            return results
        self.dispatch = _cross_run_label(groups, ", parallel")
        with multiprocessing.Pool(processes=self.workers) as pool:
            return [
                result
                for group_results in pool.map(many_runner, groups, chunksize=1)
                for result in group_results
            ]


#: Cost-model round count for oracle-terminated cells (``rounds=None``):
#: convergence typically lands within a few tens of rounds, so a fixed
#: nominal keeps the *relative* ordering of cells meaningful without
#: simulating anything.
_NOMINAL_ROUNDS = 40

#: Per-family multipliers over the baseline ``n^2 * rounds`` proxy.
#: The bonomi family rides the vectorized fast path; tseng's stateful
#: two-phase protocol runs every round through the scalar engine; the
#: witness family adds relay collection and per-pid witness folds on
#: top of that.  Ratios are calibrated from the committed ledger's
#: per-family sweep timings -- only the ordering matters, the async
#: dispatcher fits the absolute scale at runtime.
_FAMILY_COST_FACTORS: dict[str, float] = {
    "bonomi": 1.0,
    "tseng": 2.5,
    "witness": 6.0,
}

#: Partial-topology multiplier: non-complete graphs leave the
#: vectorized broadcast path, routing every round through per-edge
#: scalar delivery (and witness relays where applicable).
_PARTIAL_TOPOLOGY_FACTOR = 1.5


def _resolve_n(cell: "CellSpec") -> int:
    """The cell's ``n``, Table 2 minimum when unset, 16 when unknown."""
    n = cell.n
    if n is None:
        try:
            from ..faults.models import get_semantics

            n = get_semantics(cell.model).required_n(cell.f)
        except (KeyError, ValueError):
            n = 16
    return max(n, 1)


class CostModel:
    """Relative cell-cost estimator, optionally calibrated from timings.

    The static model prices a cell at ``n^2 * rounds`` weighted by
    hand-tuned per-family factors and a partial-topology multiplier --
    only the *ordering* between cheap and expensive cells matters (the
    async dispatcher fits seconds-per-cost-unit at runtime).

    :meth:`fit` replaces the hand-tuned family weights with ones
    measured from a :class:`~repro.sweep.service.SweepJournal`'s
    recorded per-cell timings: each observation contributes a
    seconds-per-base-unit rate for its family, families with enough
    samples get ``median(rate) / median(reference rate)`` as their
    weight (and their median observed round count as the nominal-round
    estimate for oracle-terminated cells), and families without data
    keep the static fallback -- so a sweep that has actually run
    witness cells prices the next witness sweep from evidence instead
    of folklore.
    """

    def __init__(
        self,
        family_weights: dict[str, float] | None = None,
        family_rounds: dict[str, int] | None = None,
    ) -> None:
        self.family_weights = dict(_FAMILY_COST_FACTORS)
        if family_weights:
            self.family_weights.update(family_weights)
        self.family_rounds = dict(family_rounds or {})
        #: Whether any weight came from observed data (False: static).
        self.calibrated = bool(family_weights)

    def nominal_rounds(self, cell: "CellSpec") -> int:
        """Rounds the model expects the cell to execute."""
        if cell.rounds is not None:
            return max(cell.rounds, 1)
        nominal = self.family_rounds.get(cell.family, _NOMINAL_ROUNDS)
        return max(min(cell.max_rounds, nominal), 1)

    def base_cost(self, cell: "CellSpec", rounds: int | None = None) -> float:
        """The family-agnostic ``n^2 * rounds * topology`` proxy."""
        if rounds is None:
            rounds = self.nominal_rounds(cell)
        cost = float(_resolve_n(cell)) ** 2 * float(max(rounds, 1))
        if cell.topology != "complete":
            cost *= _PARTIAL_TOPOLOGY_FACTOR
        return cost

    def estimate(self, cell: "CellSpec") -> float:
        """Relative execution-cost proxy of one cell."""
        return self.base_cost(cell) * self.family_weights.get(cell.family, 1.0)

    def describe(self) -> str:
        source = "fitted" if self.calibrated else "static"
        weights = ", ".join(
            f"{family}={weight:.2f}"
            for family, weight in sorted(self.family_weights.items())
        )
        return f"cost-model[{source}]({weights})"

    @classmethod
    def fit(
        cls,
        journal,
        reference: str = "bonomi",
        min_samples: int = 3,
    ) -> "CostModel":
        """Calibrate family weights from a journal's recorded timings.

        ``journal`` is a :class:`~repro.sweep.service.SweepJournal`
        (anything with ``observations()`` yielding ``(result,
        seconds)`` pairs works).  Families with fewer than
        ``min_samples`` usable observations -- and every family when
        the journal carries no timings at all -- keep the static
        weights, so ordering degrades gracefully to the hand-tuned
        model rather than to noise.
        """
        rates: dict[str, list[float]] = {}
        rounds_seen: dict[str, list[int]] = {}
        for result, seconds in journal.observations():
            if seconds is None or seconds <= 0 or result.error is not None:
                continue
            cell = result.spec
            executed = max(result.rounds, 1)
            base = cls().base_cost(cell, rounds=executed)
            rates.setdefault(cell.family, []).append(seconds / base)
            rounds_seen.setdefault(cell.family, []).append(executed)
        usable = {
            family: statistics.median(samples)
            for family, samples in rates.items()
            if len(samples) >= min_samples
        }
        if not usable:
            return cls()
        anchor = usable.get(reference)
        if not anchor:
            anchor = min(usable.values())
        if anchor <= 0:
            return cls()
        weights = {family: rate / anchor for family, rate in usable.items()}
        family_rounds = {
            family: max(1, round(statistics.median(observed)))
            for family, observed in rounds_seen.items()
            if family in usable
        }
        return cls(family_weights=weights, family_rounds=family_rounds)


#: The default (uncalibrated) model behind :func:`estimate_cell_cost`.
_STATIC_COST_MODEL = CostModel()


def estimate_cell_cost(cell: "CellSpec") -> float:
    """Relative execution-cost proxy of one cell.

    Messaging and MSR fold work scale roughly with ``n^2 * rounds``,
    weighted by per-family and per-topology factors (a witness-family
    cell on a ring costs several of its bonomi full-mesh neighbours);
    the absolute scale is irrelevant (the dispatcher calibrates
    seconds-per-cost-unit from observed chunk timings), only the
    ordering between cheap and expensive cells matters.  ``n=None``
    resolves to the model's Table 2 minimum; unknown models fall back
    to a small constant so malformed cells (which error out instantly)
    are treated as cheap, and unknown families take no multiplier.
    Delegates to the static :class:`CostModel`; dispatchers accept a
    :meth:`CostModel.fit`-calibrated instance for measured weights.
    """
    return _STATIC_COST_MODEL.estimate(cell)


class _AdaptiveChunker:
    """Forms dispatch chunks from a work queue, heaviest cells first.

    Until the first timing observation lands, chunks are singletons
    (calibration doubles as LPT scheduling of the most expensive
    cells).  Afterwards each chunk is filled greedily until its
    estimated duration reaches ``target_seconds`` under the current
    seconds-per-cost-unit model (an EWMA over observed chunk timings),
    so a cell expensive enough to hit the target alone ships alone
    while runs of cheap cells coalesce into larger and larger chunks.
    """

    def __init__(
        self,
        cells: Sequence["CellSpec"],
        target_seconds: float,
        max_chunk: int,
        cost_model: CostModel | None = None,
    ) -> None:
        self._estimate = (cost_model or _STATIC_COST_MODEL).estimate
        self._queue: deque["CellSpec"] = deque(
            sorted(cells, key=self._estimate, reverse=True)
        )
        self._target = target_seconds
        self._max_chunk = max_chunk
        self._sec_per_cost: float | None = None

    def __len__(self) -> int:
        return len(self._queue)

    def cost_of(self, chunk: Sequence["CellSpec"]) -> float:
        return math.fsum(self._estimate(cell) for cell in chunk)

    def next_chunk(self) -> list["CellSpec"] | None:
        """The next dispatch unit, or ``None`` when the queue is dry."""
        if not self._queue:
            return None
        chunk = [self._queue.popleft()]
        if self._sec_per_cost is None:
            observe("sweep.chunk.size", float(len(chunk)), DEFAULT_SIZE_EDGES)
            return chunk
        budget = self._target - self._estimate(chunk[0]) * self._sec_per_cost
        while self._queue and len(chunk) < self._max_chunk:
            eta = self._estimate(self._queue[0]) * self._sec_per_cost
            if eta > budget:
                break
            chunk.append(self._queue.popleft())
            budget -= eta
        observe("sweep.chunk.size", float(len(chunk)), DEFAULT_SIZE_EDGES)
        return chunk

    def observe(self, cost: float, seconds: float) -> None:
        """Fold one completed chunk's worker-side timing into the model."""
        rate = seconds / max(cost, 1.0)
        if self._sec_per_cost is None:
            self._sec_per_cost = rate
        else:
            self._sec_per_cost = 0.5 * self._sec_per_cost + 0.5 * rate


def _run_chunk(runner: CellRunner, cells: list["CellSpec"]) -> list["CellResult"]:
    """Apply a per-cell runner across one chunk (module level: pickles)."""
    return [runner(cell) for cell in cells]


def _timed_chunk(
    chunk_runner: BatchRunner, cells: list["CellSpec"]
) -> tuple[float, list["CellResult"]]:
    """Run a chunk in a worker, returning its compute time alongside.

    Timing inside the worker (rather than submit-to-callback in the
    parent) keeps queueing delay out of the cost model.
    """
    start = time.perf_counter()
    results = chunk_runner(cells)
    return time.perf_counter() - start, results


class AsyncBackend(MultiprocessingBackend):
    """Work-queue pool dispatcher with adaptive dynamic chunking.

    Replaces the static ``batch_size`` partition of
    :class:`MultiprocessingBackend`: the parent keeps the pool primed
    with one spare chunk beyond the worker count, forms each next chunk
    only when a slot frees (so chunk sizing reacts to the timings of
    everything already finished), and folds results chunk by chunk
    through :attr:`SweepBackend.on_result` -- the streaming spine for
    live aggregation, progress lines and resume journals.  Each chunk
    runs through one shared round kernel in its worker (see
    :func:`~repro.sweep.engine.run_cell_batch`), so the cheap-cell
    dispatch overhead the ``sweep_64`` ledger flagged is amortized
    twice: fewer pool tasks, and fewer kernel setups.

    Where a pool cannot win (``_pool_decision``: one usable CPU, one
    task, forced serial) execution falls back inline on static
    ``inline_batch``-sized chunks -- the batched-serial fast path --
    still emitting per chunk.  Results are bit-identical to every other
    backend for any worker count, chunk shape or timing jitter: cells
    are pure functions of their spec, and the engine sorts by cell key.
    """

    def __init__(
        self,
        workers: int,
        dispatch_mode: str = "auto",
        target_chunk_seconds: float = 0.15,
        max_chunk: int = 32,
        inline_batch: int = 16,
        cost_model: CostModel | None = None,
    ) -> None:
        super().__init__(workers, dispatch_mode=dispatch_mode)
        if target_chunk_seconds <= 0:
            raise ValueError(
                f"target_chunk_seconds must be positive, got "
                f"{target_chunk_seconds}"
            )
        if max_chunk < 1:
            raise ValueError(f"max_chunk must be at least 1, got {max_chunk}")
        if inline_batch < 1:
            raise ValueError(
                f"inline_batch must be at least 1, got {inline_batch}"
            )
        self.target_chunk_seconds = target_chunk_seconds
        self.max_chunk = max_chunk
        self.inline_batch = inline_batch
        #: Optional :meth:`CostModel.fit`-calibrated estimator for LPT
        #: ordering and chunk sizing; ``None`` uses the static weights.
        self.cost_model = cost_model

    @property
    def wants_batches(self) -> bool:
        """Chunks always run through a shared in-worker round kernel."""
        return True

    def execute(
        self, cells: Sequence["CellSpec"], runner: CellRunner
    ) -> list["CellResult"]:
        return self._dispatch(cells, partial(_run_chunk, runner))

    def execute_batch(
        self, cells: Sequence["CellSpec"], batch_runner: BatchRunner
    ) -> list["CellResult"]:
        return self._dispatch(cells, batch_runner)

    def _dispatch(
        self, cells: Sequence["CellSpec"], chunk_runner: BatchRunner
    ) -> list["CellResult"]:
        use_pool, label = self._pool_decision(len(cells), batched=False)
        self.dispatch = f"async-{label}"
        if not use_pool:
            results: list["CellResult"] = []
            for start in range(0, len(cells), self.inline_batch):
                chunk_results = chunk_runner(
                    list(cells[start : start + self.inline_batch])
                )
                results.extend(chunk_results)
                self._emit(chunk_results)
            return results

        chunker = _AdaptiveChunker(
            cells,
            self.target_chunk_seconds,
            self.max_chunk,
            cost_model=self.cost_model,
        )
        completions: queue.SimpleQueue = queue.SimpleQueue()
        results = []
        in_flight = 0
        with multiprocessing.Pool(processes=self.workers) as pool:

            def submit() -> bool:
                nonlocal in_flight
                chunk = chunker.next_chunk()
                if chunk is None:
                    return False
                cost = chunker.cost_of(chunk)
                pool.apply_async(
                    _timed_chunk,
                    (chunk_runner, chunk),
                    callback=lambda timed, c=cost: completions.put(
                        (c, timed, None)
                    ),
                    error_callback=lambda exc, c=cost: completions.put(
                        (c, None, exc)
                    ),
                )
                in_flight += 1
                return True

            # One spare chunk beyond the workers keeps every slot busy
            # while the parent folds a finished chunk's results.
            while in_flight <= self.workers and submit():
                pass
            while in_flight:
                cost, timed, error = completions.get()
                in_flight -= 1
                if error is not None:
                    # Pool.__exit__ terminates the outstanding work.
                    raise error
                seconds, chunk_results = timed
                chunker.observe(cost, seconds)
                results.extend(chunk_results)
                self._emit(chunk_results)
                while in_flight <= self.workers and submit():
                    pass
        return results


#: Shared-memory blocks above this size ride the pickle fallback: one
#: arena block holds one group's stacked payload, and a cap keeps a
#: pathological grid (huge ``n`` times huge ``max_rounds`` times many
#: seeds) from exhausting ``/dev/shm``.
_DEFAULT_MAX_BLOCK_BYTES = 64 * 1024 * 1024


def plan_shm_layout(
    cells: Sequence["CellSpec"],
) -> ShmBatchLayout | None:
    """The stacked shared-memory layout of one cross-run batch.

    ``None`` when no layout can be planned -- an unknown model leaves
    ``n`` unresolvable, so the batch rides the pickle fallback (where
    its config-build error surfaces per cell as usual).  Batches are
    normally one ``batch_key`` group (uniform shape); mixed batches
    are sized to their widest member, which only wastes bytes.
    """
    if not cells:
        return None
    n = 0
    diameter_cap = 0
    for cell in cells:
        cell_n = cell.n
        if cell_n is None:
            try:
                from ..faults.models import get_semantics

                cell_n = get_semantics(cell.model).required_n(cell.f)
            except (KeyError, ValueError):
                return None
        n = max(n, cell_n)
        rounds = cell.rounds if cell.rounds is not None else cell.max_rounds
        # The diameter trajectory is the initial value plus one entry
        # per executed round.
        diameter_cap = max(diameter_cap, rounds + 1)
    if n < 1 or diameter_cap < 1:
        return None
    return ShmBatchLayout(runs=len(cells), n=n, diameter_cap=diameter_cap)


@dataclass(frozen=True)
class _ShmRequest:
    """Parent-issued instruction: create block ``name`` with ``layout``.

    Naming in the parent (not the worker) is what makes cleanup
    crash-safe: the arena knows every block that may exist before the
    worker that creates it has even started.
    """

    name: str
    layout: ShmBatchLayout


@dataclass(frozen=True)
class _ShmRow:
    """Per-run scalars of one shared-memory result row.

    The O(header) part of a cell result: everything bulky (decisions,
    diameter series) lives in the shm block; only checker verdicts and
    a few floats ride the pickle channel.  ``inline`` carries a full
    :class:`~repro.sweep.engine.CellResult` for the rows the stacked
    engine did not write -- error cells, store hits inside the worker,
    and per-cell fallback reruns -- which stay correct at pickle cost.
    """

    decision_diameter: float = 0.0
    termination_ok: bool = False
    agreement_ok: bool = False
    validity_ok: bool = False
    p1_ok: bool | None = None
    p2_ok: bool | None = None
    extras: tuple = ()
    elapsed: float | None = None
    #: Cell-scoped telemetry counters (see ``CellResult.metrics``);
    #: rides the pickle channel like the other header scalars.
    metrics: tuple = ()
    inline: "CellResult | None" = None


@dataclass(frozen=True)
class ShmBatch:
    """A finished batch whose payload lives in a shared-memory block."""

    name: str
    layout: ShmBatchLayout
    rows: tuple[_ShmRow, ...]


@dataclass(frozen=True)
class _PickleBatch:
    """A finished batch on the pickle rung of the fallback ladder."""

    results: tuple


def _untrack_shm(shm) -> None:
    """Drop a block from this process's resource tracker.

    ``SharedMemory.__init__`` registers every block with the resource
    tracker, which would unlink it when the *worker* exits -- but
    ownership belongs to the parent arena (workers create, the parent
    attaches, restores and unlinks).  Best-effort: a build without the
    tracker just leaks a warning at exit, never data.
    """
    try:  # pragma: no cover - tracker layout is interpreter-specific
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


def _unlink_block(name: str) -> bool:
    """Unlink the named block if it still exists; ``True`` if it did."""
    if _shared_memory is None:
        return False
    try:
        shm = _shared_memory.SharedMemory(name=name)
    except (FileNotFoundError, OSError):
        return False
    try:
        shm.close()
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - unlink race
        return False
    return True


def _sweep_orphans(outstanding: set[str], prefix: str) -> int:
    """Unlink every known or prefix-matching leftover block.

    Module level (not a method) so :func:`weakref.finalize` can run it
    after the arena is garbage collected: the set and prefix are the
    only state it needs.  The prefix scan of ``/dev/shm`` catches
    blocks a killed worker created after the parent recorded the name
    but died before returning -- and costs one readdir.
    """
    swept = 0
    for name in sorted(outstanding):
        if _unlink_block(name):
            swept += 1
    outstanding.clear()
    root = Path("/dev/shm")
    if root.is_dir():
        try:
            leftovers = [p.name for p in root.iterdir()]
        except OSError:  # pragma: no cover - racing teardown
            leftovers = []
        for name in leftovers:
            if name.startswith(prefix) and _unlink_block(name):
                swept += 1
    return swept


@dataclass(frozen=True)
class ArenaStats:
    """Counters of one :class:`SharedResultArena` lifetime.

    ``shm_results`` / ``pickle_results`` split delivered cells by
    channel; ``shm_bytes`` is the stacked payload volume that never
    touched a pickle (the zero-copy win); ``blocks`` counts blocks the
    parent commissioned and ``unlinked`` how many it destroyed --
    equal on every clean or cleanly-recovered run.
    """

    shm_results: int = 0
    pickle_results: int = 0
    shm_bytes: int = 0
    blocks: int = 0
    unlinked: int = 0


class SharedResultArena:
    """Parent-side owner of the shared-memory result blocks.

    Lifecycle: :meth:`plan` names a block and remembers it as
    outstanding, the worker creates and fills it
    (:func:`_shm_group_task`), :meth:`restore` attaches, rebuilds the
    :class:`~repro.sweep.engine.CellResult` rows and unlinks, and
    :meth:`close` destroys whatever never came back (worker crash,
    interrupt) plus any ``/dev/shm`` leftovers matching this arena's
    unique prefix.  A :func:`weakref.finalize` guard runs the same
    sweep if the arena is dropped without ``close`` -- blocks must
    never outlive the sweep that commissioned them.

    :meth:`plan` returns ``None`` -- routing the batch to the pickle
    rung -- when ``shared_memory`` is unavailable, the layout is
    unplannable, or the block would exceed ``max_block_bytes``.
    """

    def __init__(self, max_block_bytes: int = _DEFAULT_MAX_BLOCK_BYTES) -> None:
        if max_block_bytes < 1:
            raise ValueError(
                f"max_block_bytes must be positive, got {max_block_bytes}"
            )
        self.max_block_bytes = max_block_bytes
        # psx_* names are capped (POSIX: NAME_MAX minus the leading
        # slash); 8 random hex chars keep concurrent sweeps apart.
        self.prefix = f"rpa{os.urandom(4).hex()}"
        self._seq = 0
        self._outstanding: set[str] = set()
        self._shm_results = 0
        self._pickle_results = 0
        self._shm_bytes = 0
        self._blocks = 0
        self._unlinked = 0
        self._closed = False
        self._finalizer = weakref.finalize(
            self, _sweep_orphans, self._outstanding, self.prefix
        )

    @property
    def enabled(self) -> bool:
        """Whether this build can take the shared-memory rung at all."""
        return _shared_memory is not None

    def plan(self, cells: Sequence["CellSpec"]) -> _ShmRequest | None:
        """A block request for one batch, or ``None`` for pickle."""
        if self._closed:
            raise RuntimeError("arena is closed")
        if not self.enabled:
            return None
        layout = plan_shm_layout(cells)
        if layout is None or layout.total_bytes > self.max_block_bytes:
            return None
        name = f"{self.prefix}n{self._seq}"
        self._seq += 1
        self._outstanding.add(name)
        self._blocks += 1
        return _ShmRequest(name=name, layout=layout)

    def restore(
        self, batch: "ShmBatch | _PickleBatch", cells: Sequence["CellSpec"]
    ) -> list["CellResult"]:
        """Rebuild a finished batch's results and release its block."""
        if isinstance(batch, _PickleBatch):
            self._pickle_results += len(batch.results)
            return list(batch.results)
        results = self._rebuild(batch, cells)
        if _unlink_block(batch.name):
            self._unlinked += 1
        self._outstanding.discard(batch.name)
        self._shm_bytes += batch.layout.total_bytes
        return results

    def _rebuild(
        self, batch: "ShmBatch", cells: Sequence["CellSpec"]
    ) -> list["CellResult"]:
        from .engine import CellResult

        if len(batch.rows) != len(cells):
            raise ValueError(
                f"shm batch carries {len(batch.rows)} rows for "
                f"{len(cells)} cells"
            )
        def rebuild_rows(out) -> list["CellResult"]:
            # A nested scope so every numpy view (and slice thereof)
            # dies on return: a live view of shm.buf makes the close()
            # below raise BufferError.
            rows: list["CellResult"] = []
            for slot, (cell, row) in enumerate(zip(cells, batch.rows)):
                if row.inline is not None:
                    self._pickle_results += 1
                    rows.append(row.inline)
                    continue
                mask = out.decision_mask[slot]
                values = out.final_values[slot]
                decisions = tuple(
                    (pid, float(values[pid]))
                    for pid in range(batch.layout.n)
                    if mask[pid]
                )
                length = int(out.diameter_len[slot])
                diameters = tuple(
                    float(value) for value in out.diameters[slot, :length]
                )
                self._shm_results += 1
                rows.append(
                    CellResult(
                        spec=cell,
                        decisions=decisions,
                        rounds=int(out.rounds[slot]),
                        terminated=bool(out.terminated[slot]),
                        decision_diameter=row.decision_diameter,
                        diameters=diameters,
                        termination_ok=row.termination_ok,
                        agreement_ok=row.agreement_ok,
                        validity_ok=row.validity_ok,
                        p1_ok=row.p1_ok,
                        p2_ok=row.p2_ok,
                        extras=row.extras,
                        elapsed=row.elapsed,
                        metrics=row.metrics,
                    )
                )
            return rows

        shm = _shared_memory.SharedMemory(name=batch.name)
        try:
            results = rebuild_rows(batch.layout.attach(shm.buf))
        finally:
            try:
                shm.close()
            except BufferError:
                # Only reachable when rebuild_rows raised: its
                # traceback pins the frame (and thus the views) alive.
                # The arena still unlinks the block by name on close().
                pass
        return results

    @property
    def stats(self) -> ArenaStats:
        return ArenaStats(
            shm_results=self._shm_results,
            pickle_results=self._pickle_results,
            shm_bytes=self._shm_bytes,
            blocks=self._blocks,
            unlinked=self._unlinked,
        )

    def leaked(self) -> list[str]:
        """Blocks of this arena still present in ``/dev/shm`` (tests)."""
        root = Path("/dev/shm")
        if not root.is_dir():
            return []
        return sorted(
            p.name for p in root.iterdir() if p.name.startswith(self.prefix)
        )

    def close(self) -> ArenaStats:
        """Destroy every block that never came back; idempotent."""
        if not self._closed:
            self._closed = True
            self._finalizer.detach()
            self._unlinked += _sweep_orphans(self._outstanding, self.prefix)
        return self.stats


def _shm_group_task(
    many_runner: ManyRunner,
    request: _ShmRequest | None,
    cells: list["CellSpec"],
) -> "ShmBatch | _PickleBatch":
    """Run one batch in a worker, results into shm (module level: pickles).

    With a request, the worker creates the named block, hands the
    stacked output buffer to the cross-run engine, and ships back the
    block name plus per-run scalar rows -- the payload never touches a
    pickle.  Without one (or if creation fails -- ``/dev/shm`` full,
    size cap raced), the full results ride the pickle rung instead;
    both envelopes restore to bit-identical cell results.  On any
    worker-side error the block is destroyed here (and the parent
    arena sweeps it again by name, so even a SIGKILL between the two
    cannot leak it past the sweep).
    """
    shm = None
    if request is not None and _shared_memory is not None:
        try:
            shm = _shared_memory.SharedMemory(
                name=request.name, create=True, size=request.layout.total_bytes
            )
        except OSError:
            shm = None
    if shm is None:
        return _PickleBatch(results=tuple(many_runner(cells)))
    try:
        _untrack_shm(shm)
        out = request.layout.attach(shm.buf)
        try:
            results = many_runner(cells, out=out)
            written = set(out.written)
        finally:
            del out
        rows = []
        for slot, result in enumerate(results):
            if slot in written:
                rows.append(
                    _ShmRow(
                        decision_diameter=result.decision_diameter,
                        termination_ok=result.termination_ok,
                        agreement_ok=result.agreement_ok,
                        validity_ok=result.validity_ok,
                        p1_ok=result.p1_ok,
                        p2_ok=result.p2_ok,
                        extras=result.extras,
                        elapsed=result.elapsed,
                        metrics=result.metrics,
                    )
                )
            else:
                rows.append(_ShmRow(inline=result))
        shm.close()
        return ShmBatch(name=request.name, layout=request.layout, rows=tuple(rows))
    except BaseException:
        try:
            shm.close()
        except BufferError:  # pragma: no cover - views still alive
            pass
        try:
            shm.unlink()
        except (FileNotFoundError, OSError):
            pass
        raise


class _StealingQueues:
    """Per-slot batch queues with largest-half work stealing.

    The coordinator state of :class:`ShmCrossRunBackend`: every worker
    slot owns a queue of batches (each batch a run-index slice of one
    ``batch_key`` group).  Seeding is LPT -- heaviest group onto the
    lightest slot -- followed by an eager pre-split that cuts the
    biggest batches until every slot can start busy (a single huge
    group still spreads across the whole pool).  :meth:`next_batch`
    serves a slot from its own queue first; a dry slot *steals*: pick
    the victim holding the most pending estimated cost, take its
    biggest pending batch, keep the larger half (ceil) and return the
    rest to the victim in place.  Only pending batches are touched --
    in-flight work is never split -- so every run is dispatched
    exactly once, whatever the interleaving.
    """

    def __init__(
        self,
        groups: Sequence[Sequence["CellSpec"]],
        slots: int,
        estimate: Callable[["CellSpec"], float] | None = None,
    ) -> None:
        if slots < 1:
            raise ValueError(f"slots must be at least 1, got {slots}")
        self.slots = slots
        self.steals = 0
        self._estimate = estimate or estimate_cell_cost
        self._queues: list[list[list["CellSpec"]]] = [[] for _ in range(slots)]
        loads = [0.0] * slots
        for group in sorted(groups, key=self._cost, reverse=True):
            if not group:
                continue
            slot = min(range(slots), key=loads.__getitem__)
            self._queues[slot].append(list(group))
            loads[slot] += self._cost(group)
        self._presplit()

    def _cost(self, batch: Sequence["CellSpec"]) -> float:
        return math.fsum(self._estimate(cell) for cell in batch)

    def _presplit(self) -> None:
        """Cut the biggest batches until every slot can start busy."""
        while sum(len(queue) for queue in self._queues) < self.slots:
            best: tuple[float, int, int] | None = None
            for slot, queue in enumerate(self._queues):
                for index, batch in enumerate(queue):
                    if len(batch) < 2:
                        continue
                    cost = self._cost(batch)
                    if best is None or cost > best[0]:
                        best = (cost, slot, index)
            if best is None:
                return
            _, slot, index = best
            batch = self._queues[slot].pop(index)
            half = (len(batch) + 1) // 2
            self._queues[slot].insert(index, batch[:half])
            idle = min(range(self.slots), key=lambda s: len(self._queues[s]))
            self._queues[idle].append(batch[half:])

    def pending(self) -> int:
        """Batches not yet handed out."""
        return sum(len(queue) for queue in self._queues)

    def next_batch(self, slot: int) -> list["CellSpec"] | None:
        """The next batch for ``slot``, stealing if its queue is dry."""
        own = self._queues[slot]
        if own:
            return own.pop(0)
        victim: tuple[float, int] | None = None
        for candidate, queue in enumerate(self._queues):
            if candidate == slot or not queue:
                continue
            load = math.fsum(self._cost(batch) for batch in queue)
            if victim is None or load > victim[0]:
                victim = (load, candidate)
        if victim is None:
            return None
        queue = self._queues[victim[1]]
        index = max(range(len(queue)), key=lambda k: self._cost(queue[k]))
        batch = queue.pop(index)
        self.steals += 1
        if len(batch) < 2:
            return batch
        half = (len(batch) + 1) // 2
        # The victim keeps the smaller tail, in place.
        queue.insert(index, batch[half:])
        return batch[:half]


class ShmCrossRunBackend(MultiprocessingBackend):
    """Zero-copy parallel cross-run execution with work stealing.

    The pooled counterpart of :meth:`SweepBackend.execute_many`: whole
    ``batch_key`` groups (or stolen run-index slices of them) run in
    pool workers that write their stacked payloads into shared-memory
    blocks owned by a :class:`SharedResultArena`, and the dispatcher
    is a :class:`_StealingQueues` coordinator -- one in-flight batch
    per worker slot, a finishing slot is refilled from its own queue
    or by stealing the largest half of the heaviest victim's biggest
    pending batch.  The fallback ladder keeps every rung
    bit-identical: no usable pool drops to in-process serial
    cross-run; no usable ``shared_memory`` (or an over-cap block)
    drops that batch to the pickle rung.  The dispatch label records
    the rung and the steal count, e.g.
    ``cross-run-shm(4 batches, max R=16, steals=1)``.
    """

    def __init__(
        self,
        workers: int,
        dispatch_mode: str = "auto",
        cost_model: CostModel | None = None,
        max_block_bytes: int = _DEFAULT_MAX_BLOCK_BYTES,
    ) -> None:
        super().__init__(workers, dispatch_mode=dispatch_mode)
        self.cost_model = cost_model or _STATIC_COST_MODEL
        self.max_block_bytes = max_block_bytes
        #: Counters of the last :meth:`execute_many` arena (``None``
        #: until a pooled cross-run dispatch has happened).
        self.last_arena_stats: ArenaStats | None = None
        #: Steal count of the last pooled dispatch.
        self.last_steals = 0

    def execute_many(
        self, cells: Sequence["CellSpec"], many_runner: ManyRunner
    ) -> list["CellResult"]:
        groups = _batch_groups(cells)
        # Batches split by run index, so the parallelism bound is the
        # cell count, not the group count -- one big group still fans
        # out across the pool.
        use_pool, _ = self._pool_decision(len(cells), batched=True)
        if not use_pool:
            self.dispatch = _cross_run_label(groups)
            results: list["CellResult"] = []
            for group in groups:
                group_results = many_runner(group)
                results.extend(group_results)
                self._emit(group_results)
            return results

        arena = SharedResultArena(max_block_bytes=self.max_block_bytes)
        rung = "shm" if arena.enabled else "pickle"
        queues = _StealingQueues(
            groups, self.workers, self.cost_model.estimate
        )
        completions: queue.SimpleQueue = queue.SimpleQueue()
        results = []
        in_flight = 0
        try:
            with multiprocessing.Pool(processes=self.workers) as pool:

                def submit(slot: int) -> bool:
                    nonlocal in_flight
                    batch = queues.next_batch(slot)
                    if batch is None:
                        return False
                    request = arena.plan(batch)
                    pool.apply_async(
                        _shm_group_task,
                        (many_runner, request, batch),
                        callback=lambda out, s=slot, b=batch: completions.put(
                            (s, b, out, None)
                        ),
                        error_callback=lambda exc, s=slot, b=batch: (
                            completions.put((s, b, None, exc))
                        ),
                    )
                    in_flight += 1
                    return True

                for slot in range(self.workers):
                    submit(slot)
                while in_flight:
                    slot, batch, outcome, error = completions.get()
                    in_flight -= 1
                    if error is not None:
                        # Pool.__exit__ terminates outstanding work;
                        # the finally arena.close() sweeps its blocks.
                        raise error
                    # Refill the slot before parent-side restore work
                    # so the pool never idles behind the coordinator.
                    submit(slot)
                    batch_results = arena.restore(outcome, batch)
                    results.extend(batch_results)
                    self._emit(batch_results)
        finally:
            self.last_arena_stats = arena.close()
            self.last_steals = queues.steals
        max_r = max((len(group) for group in groups), default=0)
        self.dispatch = (
            f"cross-run-{rung}({len(groups)} batches, "
            f"max R={max_r}, steals={queues.steals})"
        )
        return results


class ShardedBackend(SweepBackend):
    """Deterministic grid partitioning for multi-invocation sweeps.

    Invocation ``shard_index`` of ``shard_count`` owns every cell whose
    rank in the grid's key order is congruent to ``shard_index`` modulo
    ``shard_count`` -- a pure function of the grid, independent of cell
    order or cache state, so concurrent invocations never overlap.  The
    owned cells run through ``inner`` (serial by default, a
    :class:`MultiprocessingBackend` when ``workers > 1``), the shard's
    results spill to ``spill_dir/shard-IIII-of-NNNN.json``, and
    :meth:`finalize` returns the merged full-grid result once all
    shards are present -- or a partial result (``complete=False``)
    holding only this shard's cells while siblings are outstanding.
    """

    def __init__(
        self,
        shard_index: int,
        shard_count: int,
        spill_dir: str | Path,
        workers: int = 1,
        chunk_size: int | None = None,
        batch_size: int | None = None,
    ) -> None:
        if shard_count < 1:
            raise ValueError(f"shard_count must be at least 1, got {shard_count}")
        if not 0 <= shard_index < shard_count:
            raise ValueError(
                f"shard_index must be in [0, {shard_count}), got {shard_index}"
            )
        if shard_count > 9999:
            raise ValueError(
                f"shard_count must be at most 9999, got {shard_count}"
            )
        if batch_size is not None and batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.shard_index = shard_index
        self.shard_count = shard_count
        self.spill_dir = Path(spill_dir)
        self.workers = workers
        self.batch_size = batch_size
        self._grid_fingerprint: str | None = None
        self._grid_size: int | None = None
        self._inner: SweepBackend = (
            MultiprocessingBackend(workers, chunk_size, batch_size)
            if workers > 1
            else SerialBackend()
        )
        self._inner.batch_size = batch_size

    def select(self, cells: list["CellSpec"]) -> list["CellSpec"]:
        # The full grid's identity is stamped into the spill file so a
        # merge can refuse shards cut from a different grid.
        self._grid_fingerprint = grid_fingerprint(cells)
        self._grid_size = len(cells)
        ordered = sorted(cells, key=lambda cell: cell.key)
        return [
            cell
            for rank, cell in enumerate(ordered)
            if rank % self.shard_count == self.shard_index
        ]

    def execute(
        self, cells: Sequence["CellSpec"], runner: CellRunner
    ) -> list["CellResult"]:
        results = self._inner.execute(cells, runner)
        self.dispatch = f"sharded({self._inner.dispatch})"
        return results

    def execute_batch(
        self, cells: Sequence["CellSpec"], batch_runner: BatchRunner
    ) -> list["CellResult"]:
        results = self._inner.execute_batch(cells, batch_runner)
        self.dispatch = f"sharded({self._inner.dispatch})"
        return results

    def execute_many(
        self, cells: Sequence["CellSpec"], many_runner: ManyRunner
    ) -> list["CellResult"]:
        results = self._inner.execute_many(cells, many_runner)
        self.dispatch = f"sharded({self._inner.dispatch})"
        return results

    def shard_path(self, shard_index: int | None = None) -> Path:
        index = self.shard_index if shard_index is None else shard_index
        return self.spill_dir / (
            f"shard-{index:04d}-of-{self.shard_count:04d}.json"
        )

    def finalize(
        self,
        results: Sequence["CellResult"],
        trace_detail: str,
        probe: str | None = None,
    ) -> SweepResult:
        self.spill_dir.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": SWEEP_SCHEMA_VERSION,
            "shard_index": self.shard_index,
            "shard_count": self.shard_count,
            "trace_detail": trace_detail,
            "probe": probe,
            "grid": self._grid_fingerprint,
            "grid_size": self._grid_size,
            "results": [result_to_dict(result) for result in results],
        }
        path = self.shard_path()
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
        os.replace(tmp, path)

        missing = [
            index
            for index in range(self.shard_count)
            if not self.shard_path(index).exists()
        ]
        if missing:
            partial = _sorted_result(results, trace_detail, self.workers)
            return SweepResult(
                cells=partial.cells,
                trace_detail=trace_detail,
                workers=self.workers,
                complete=False,
                dispatch=self.dispatch,
            )
        return merge_shards(self.spill_dir)


def _require_agreement(shards: dict[int, dict], field: str, label: str):
    """All shards must agree on ``field``; mixed values name examples."""
    values = {index: payload.get(field) for index, payload in shards.items()}
    distinct = sorted(set(values.values()), key=repr)
    if len(distinct) > 1:
        examples = {
            value: min(i for i, v in values.items() if v == value)
            for value in distinct
        }
        rendered = " vs ".join(
            f"{value!r} (shard {examples[value]})" for value in distinct
        )
        raise ValueError(f"cannot merge shards with mixed {label}: {rendered}")
    return distinct[0]


def merge_shards(spill_dir: str | Path) -> SweepResult:
    """Merge a directory of shard spill files into one sweep result.

    Validates the shard family before trusting it: every index of the
    announced ``shard_count`` must be present exactly once, and all
    shards must agree on ``shard_count``, schema version,
    ``trace_detail``, probe and the grid they were cut from (each
    mismatch is rejected naming both sides) -- so stale spill files
    left over from a sweep of a different grid, shard count or probe
    can never merge silently.  No cell may appear in two shards, and
    the merged cell count must cover the recorded grid.  The result is
    bit-identical to a serial :func:`~repro.sweep.engine.run_sweep`
    over the same grid.
    """
    spill_dir = Path(spill_dir)
    payloads: list[dict] = []
    for path in sorted(spill_dir.iterdir()) if spill_dir.is_dir() else []:
        match = _SHARD_FILE.match(path.name)
        if not match:
            continue
        payload = json.loads(path.read_text(encoding="utf-8"))
        if payload.get("schema") != SWEEP_SCHEMA_VERSION:
            raise ValueError(
                f"shard file {path.name} has schema "
                f"{payload.get('schema')!r}; this build reads "
                f"{SWEEP_SCHEMA_VERSION}"
            )
        payloads.append(payload)
    if not payloads:
        raise ValueError(f"no shard files found in {spill_dir}")

    shard_counts = {payload["shard_count"] for payload in payloads}
    if len(shard_counts) > 1:
        raise ValueError(
            f"shard files in {spill_dir} disagree on shard_count: "
            f"{sorted(shard_counts)} (stale spill files from an earlier "
            "sweep? use a fresh spill directory per grid)"
        )
    shard_count = shard_counts.pop()
    shards: dict[int, dict] = {}
    for payload in payloads:
        index = payload["shard_index"]
        if index in shards:
            raise ValueError(
                f"shard index {index} appears in multiple files in "
                f"{spill_dir} (stale spill files from an earlier sweep?)"
            )
        shards[index] = payload
    missing = sorted(set(range(shard_count)) - set(shards))
    if missing:
        raise ValueError(
            f"incomplete shard family in {spill_dir}: missing shard(s) "
            f"{missing} of {shard_count}"
        )

    trace_detail = _require_agreement(shards, "trace_detail", "trace details")
    _require_agreement(shards, "probe", "probes")
    _require_agreement(shards, "grid", "grids")
    grid_size = _require_agreement(shards, "grid_size", "grid sizes")

    results: list["CellResult"] = []
    seen: set[tuple] = set()
    for index in range(shard_count):
        for entry in shards[index]["results"]:
            result = result_from_dict(entry)
            if result.key in seen:
                raise ValueError(
                    f"cell {result.spec.describe()} appears in multiple shards"
                )
            seen.add(result.key)
            results.append(result)
    if grid_size is not None and len(results) != grid_size:
        raise ValueError(
            f"shard family in {spill_dir} covers {len(results)} cells but "
            f"records a grid of {grid_size}"
        )
    return _sorted_result(
        results, trace_detail, workers=1, dispatch="sharded-merge"
    )

"""Pluggable sweep execution backends.

PR 1 hardcoded two execution strategies inside ``run_sweep``; this
module extracts them behind one small interface so the engine no longer
cares *how* cells run.  A backend answers three questions:

* :meth:`SweepBackend.select` -- which cells of the grid does this
  invocation own?  (All of them, except for sharded execution.)
* :meth:`SweepBackend.execute` -- how do the owned, uncached cells run?
* :meth:`SweepBackend.finalize` -- how do the results become a
  :class:`~repro.sweep.aggregate.SweepResult`?

Determinism contract: backends never change *what* a cell computes --
each cell runs through the same runner callable -- only where and when.
The engine sorts results by cell key, so any backend yields the same
:class:`SweepResult` for the same grid.

:class:`ShardedBackend` is the distribution building block: invocation
``k`` of ``N`` owns the cells whose rank in key order is ``k mod N``,
spills its finished shard to a shared directory, and -- once every
shard file is present -- merges them into the one bit-identical
result a serial run would have produced.  Shards can run in any order,
on any host that shares the spill directory.

:class:`AsyncBackend` is the elastic single-host backend: instead of
cutting the grid into static chunks up front, a dispatcher feeds the
pool from a shared work queue with *dynamic* chunking -- cells are
ordered heaviest-first (LPT scheduling), expensive cells ship alone,
and cheap cells are batched adaptively into chunks sized by a
continuously calibrated cost model, so per-task dispatch overhead is
amortized without starving the pool behind stragglers.  Results stream
back chunk by chunk through :attr:`SweepBackend.on_result`, which is
what powers streaming aggregation, progress lines and resume journals.

Cross-run execution (:meth:`SweepBackend.execute_many`) is the third
packaging of work: cells are partitioned by
:attr:`~repro.sweep.grid.CellSpec.batch_key` -- the cell's identity
minus its seed, so a group describes the *same* simulation shape
differing only in RNG streams -- and each group is one call to
:func:`~repro.sweep.engine.run_cell_many`, which stacks the group's
runs into a single ``(R, n)`` state array and advances all of them per
round with one vectorized pass.  The partition is a true partition
(every cell lands in exactly one group; families, topologies and
scenarios never mix), results are bit-identical to per-cell execution,
and the dispatch label records the batch structure, e.g.
``cross-run(4 batches, max R=16)``.
"""

from __future__ import annotations

import json
import math
import multiprocessing
import os
import queue
import re
import time
import warnings
from collections import deque
from collections.abc import Callable, Sequence
from functools import partial
from pathlib import Path
from typing import TYPE_CHECKING

from .aggregate import SweepResult
from .cache import (
    SWEEP_SCHEMA_VERSION,
    result_from_dict,
    result_to_dict,
    spec_to_dict,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a module cycle
    from .engine import CellResult
    from .grid import CellSpec

__all__ = [
    "SweepBackend",
    "SerialBackend",
    "MultiprocessingBackend",
    "AsyncBackend",
    "ShardedBackend",
    "DISPATCH_MODES",
    "estimate_cell_cost",
    "grid_fingerprint",
    "merge_shards",
]

#: Valid ``dispatch_mode`` values: ``auto`` consults
#: :meth:`MultiprocessingBackend._pool_decision`; ``serial`` forces
#: in-process execution; ``pool`` forces worker processes even where a
#: pool cannot win (1 usable CPU), with a warning -- the knob that
#: makes pool code paths testable on single-CPU CI boxes.
DISPATCH_MODES = ("auto", "serial", "pool")

CellRunner = Callable[["CellSpec"], "CellResult"]
BatchRunner = Callable[[list["CellSpec"]], list["CellResult"]]
#: Cross-run group runner: a batch-compatible cell group in, results
#: (in group order) out -- :func:`~repro.sweep.engine.run_cell_many`.
ManyRunner = Callable[[list["CellSpec"]], list["CellResult"]]

_SHARD_FILE = re.compile(r"^shard-(\d{4})-of-(\d{4})\.json$")


def _batch_groups(cells: Sequence["CellSpec"]) -> list[list["CellSpec"]]:
    """Partition cells into cross-run groups by ``batch_key``.

    Order-preserving on both levels: groups appear in first-cell order
    and cells keep their relative order within a group, so execution
    order (and therefore progress reporting) stays deterministic.
    """
    groups: dict[tuple, list["CellSpec"]] = {}
    for cell in cells:
        groups.setdefault(cell.batch_key, []).append(cell)
    return list(groups.values())


def _cross_run_label(groups: Sequence[Sequence["CellSpec"]], suffix: str = "") -> str:
    """Dispatch label recording the cross-run batch structure."""
    max_r = max((len(group) for group in groups), default=0)
    return f"cross-run({len(groups)} batches, max R={max_r}{suffix})"


def grid_fingerprint(cells: Sequence["CellSpec"]) -> str:
    """A stable content hash of a whole grid (order-independent).

    Recorded in every shard spill file so a merge can prove all shards
    were cut from the same grid -- stale spill files from an earlier
    sweep of a *different* grid must never merge silently.  Callers
    driving multi-host sweeps can also use it to derive a per-grid
    spill directory (the CLI's default when only ``--cache-dir`` is
    given).
    """
    import hashlib
    import json as _json

    canonical = _json.dumps(
        sorted(
            _json.dumps(spec_to_dict(cell), sort_keys=True, separators=(",", ":"))
            for cell in cells
        ),
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _sorted_result(
    results: Sequence["CellResult"],
    trace_detail: str,
    workers: int,
    dispatch: str = "serial",
) -> SweepResult:
    return SweepResult(
        cells=tuple(sorted(results, key=lambda result: result.key)),
        trace_detail=trace_detail,
        workers=workers,
        dispatch=dispatch,
    )


def _usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    getter = getattr(os, "sched_getaffinity", None)
    if getter is not None:
        try:
            return len(getter(0)) or 1
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return os.cpu_count() or 1


class SweepBackend:
    """Base execution strategy; subclasses override :meth:`execute`.

    ``workers`` is the parallelism the backend reports into
    ``SweepResult.workers`` (1 for serial execution).  ``batch_size``
    switches the engine to :meth:`execute_batch`: cells are grouped
    into batches of that size and each batch runs as *one* dispatch
    through a shared round kernel (see
    :func:`~repro.sweep.engine.run_cell_batch`), which amortizes
    process dispatch and buffer setup over many cheap cells.
    """

    workers: int = 1
    batch_size: int | None = None
    #: How the last :meth:`execute`/:meth:`execute_batch` actually
    #: dispatched its cells; copied into ``SweepResult.dispatch``.
    dispatch: str = "serial"
    #: Execution-strategy override consulted by pooled backends; one of
    #: :data:`DISPATCH_MODES`.
    dispatch_mode: str = "auto"
    #: Optional ``callable(CellResult)`` invoked in the parent process
    #: as results become available.  Granularity is a backend property:
    #: per cell for serial execution, per chunk for the async
    #: dispatcher, on completion for ``pool.map``-style backends (the
    #: engine reports any unreported results after ``execute`` either
    #: way, so callers always observe every result exactly once).
    on_result: Callable[["CellResult"], None] | None = None

    @property
    def wants_batches(self) -> bool:
        """Whether the engine should hand this backend a batch runner."""
        return self.batch_size is not None

    def _emit(self, results: Sequence["CellResult"]) -> None:
        """Report freshly finished results to :attr:`on_result`."""
        if self.on_result is not None:
            for result in results:
                self.on_result(result)

    def select(self, cells: list["CellSpec"]) -> list["CellSpec"]:
        """The subset of the grid this invocation executes."""
        return cells

    def execute(
        self, cells: Sequence["CellSpec"], runner: CellRunner
    ) -> list["CellResult"]:
        raise NotImplementedError

    def execute_batch(
        self, cells: Sequence["CellSpec"], batch_runner: BatchRunner
    ) -> list["CellResult"]:
        """Run the cells in batches of :attr:`batch_size` in-process.

        The default executes each batch serially; pooled backends
        override this to dispatch whole batches to workers.  Results
        are bit-identical to per-cell :meth:`execute` -- batching only
        changes how work is packaged.
        """
        size = self.batch_size or len(cells) or 1
        self.dispatch = "batched-serial"
        results: list["CellResult"] = []
        for start in range(0, len(cells), size):
            batch_results = batch_runner(list(cells[start : start + size]))
            results.extend(batch_results)
            self._emit(batch_results)
        return results

    def execute_many(
        self, cells: Sequence["CellSpec"], many_runner: ManyRunner
    ) -> list["CellResult"]:
        """Run the cells as cross-run groups, one group per dispatch.

        The default executes each ``batch_key`` group in-process
        through the stacked ``(R, n)`` engine; pooled backends
        override this to ship whole groups to workers.  Results are
        bit-identical to :meth:`execute` -- only the packaging (and
        the per-round vectorization within a group) changes.
        """
        groups = _batch_groups(cells)
        self.dispatch = _cross_run_label(groups)
        results: list["CellResult"] = []
        for group in groups:
            group_results = many_runner(group)
            results.extend(group_results)
            self._emit(group_results)
        return results

    def finalize(
        self,
        results: Sequence["CellResult"],
        trace_detail: str,
        probe: str | None = None,
    ) -> SweepResult:
        """Assemble the sweep result from this invocation's results."""
        return _sorted_result(results, trace_detail, self.workers, self.dispatch)


class SerialBackend(SweepBackend):
    """In-process execution, one cell after another."""

    def execute(
        self, cells: Sequence["CellSpec"], runner: CellRunner
    ) -> list["CellResult"]:
        self.dispatch = "serial"
        results: list["CellResult"] = []
        for cell in cells:
            result = runner(cell)
            results.append(result)
            self._emit((result,))
        return results


class MultiprocessingBackend(SweepBackend):
    """Chunked execution across a local ``multiprocessing`` pool.

    ``chunk_size`` defaults to ~4 chunks per worker, balancing
    scheduling overhead against stragglers.  Grids of one cell (or a
    single worker) run inline -- a pool cannot help there.
    ``batch_size`` dispatches whole in-worker batches instead of
    single cells: each batch is one pool task running ``batch_size``
    cells on a shared round kernel, the fix for grids whose cells are
    too cheap to amortize per-cell dispatch.
    """

    def __init__(
        self,
        workers: int,
        chunk_size: int | None = None,
        batch_size: int | None = None,
        dispatch_mode: str = "auto",
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be at least 1, got {workers}")
        if chunk_size is not None and chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        if batch_size is not None and batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if dispatch_mode not in DISPATCH_MODES:
            raise ValueError(
                f"dispatch_mode must be one of {DISPATCH_MODES}, "
                f"got {dispatch_mode!r}"
            )
        self.workers = workers
        self.chunk_size = chunk_size
        self.batch_size = batch_size
        self.dispatch_mode = dispatch_mode

    def _pool_decision(self, tasks: int, batched: bool) -> tuple[bool, str]:
        """Whether a pool can win for ``tasks`` dispatch units, and why.

        A single usable CPU is the canonical lost cause: worker
        processes merely time-slice the same core, so every fork,
        pickle and IPC round-trip is pure overhead (observed as the
        ``batched_speedup = 0.9`` regression on 1-CPU CI runners).
        Those invocations auto-fall back to in-process dispatch; the
        label records the decision in ``SweepResult.dispatch``.

        :attr:`dispatch_mode` overrides the heuristic: ``serial``
        always runs in-process, ``pool`` always dispatches to workers
        -- warning (instead of silently falling back) when only one
        usable CPU exists, so pool code paths stay testable on 1-CPU
        CI boxes at an explicitly acknowledged cost.
        """
        label = "batched-" if batched else ""
        if self.dispatch_mode == "serial":
            return False, f"{label}serial (forced)"
        if tasks < 1:
            return False, f"{label}serial"
        if self.dispatch_mode == "pool":
            cpus = _usable_cpus()
            if cpus < 2:
                warnings.warn(
                    f"dispatch mode 'pool' forced with {self.workers} "
                    f"workers on {cpus} usable cpu: the pool cannot win "
                    "here (fork/pickle/IPC overhead with nothing to "
                    "overlap); results are identical but slower",
                    RuntimeWarning,
                    stacklevel=3,
                )
                return True, f"{label}parallel (forced on {cpus} usable cpu)"
            return True, f"{label}parallel (forced)"
        if self.workers <= 1 or tasks <= 1:
            return False, f"{label}serial"
        cpus = _usable_cpus()
        if cpus < 2:
            return False, (
                f"{label}serial (auto-fallback: {self.workers} workers "
                f"on {cpus} usable cpu)"
            )
        return True, f"{label}parallel"

    def execute(
        self, cells: Sequence["CellSpec"], runner: CellRunner
    ) -> list["CellResult"]:
        use_pool, self.dispatch = self._pool_decision(len(cells), batched=False)
        if not use_pool:
            return [runner(cell) for cell in cells]
        chunk_size = self.chunk_size
        if chunk_size is None:
            chunk_size = max(1, math.ceil(len(cells) / (self.workers * 4)))
        with multiprocessing.Pool(processes=self.workers) as pool:
            return pool.map(runner, cells, chunksize=chunk_size)

    def execute_batch(
        self, cells: Sequence["CellSpec"], batch_runner: BatchRunner
    ) -> list["CellResult"]:
        size = self.batch_size or len(cells) or 1
        batches = [
            list(cells[start : start + size])
            for start in range(0, len(cells), size)
        ]
        use_pool, self.dispatch = self._pool_decision(len(batches), batched=True)
        if not use_pool:
            return [
                result for batch in batches for result in batch_runner(batch)
            ]
        with multiprocessing.Pool(processes=self.workers) as pool:
            return [
                result
                for batch_results in pool.map(batch_runner, batches, chunksize=1)
                for result in batch_results
            ]

    def execute_many(
        self, cells: Sequence["CellSpec"], many_runner: ManyRunner
    ) -> list["CellResult"]:
        """Dispatch whole cross-run groups to pool workers.

        Each ``batch_key`` group is one pool task advancing its stack
        in a worker; the pool decision treats groups as the dispatch
        unit (a single group has nothing to overlap, so it runs
        inline).  Falls back to the in-process default wherever a pool
        cannot win.
        """
        groups = _batch_groups(cells)
        use_pool, _ = self._pool_decision(len(groups), batched=True)
        if not use_pool:
            self.dispatch = _cross_run_label(groups)
            results: list["CellResult"] = []
            for group in groups:
                group_results = many_runner(group)
                results.extend(group_results)
                self._emit(group_results)
            return results
        self.dispatch = _cross_run_label(groups, ", parallel")
        with multiprocessing.Pool(processes=self.workers) as pool:
            return [
                result
                for group_results in pool.map(many_runner, groups, chunksize=1)
                for result in group_results
            ]


#: Cost-model round count for oracle-terminated cells (``rounds=None``):
#: convergence typically lands within a few tens of rounds, so a fixed
#: nominal keeps the *relative* ordering of cells meaningful without
#: simulating anything.
_NOMINAL_ROUNDS = 40

#: Per-family multipliers over the baseline ``n^2 * rounds`` proxy.
#: The bonomi family rides the vectorized fast path; tseng's stateful
#: two-phase protocol runs every round through the scalar engine; the
#: witness family adds relay collection and per-pid witness folds on
#: top of that.  Ratios are calibrated from the committed ledger's
#: per-family sweep timings -- only the ordering matters, the async
#: dispatcher fits the absolute scale at runtime.
_FAMILY_COST_FACTORS: dict[str, float] = {
    "bonomi": 1.0,
    "tseng": 2.5,
    "witness": 6.0,
}

#: Partial-topology multiplier: non-complete graphs leave the
#: vectorized broadcast path, routing every round through per-edge
#: scalar delivery (and witness relays where applicable).
_PARTIAL_TOPOLOGY_FACTOR = 1.5


def estimate_cell_cost(cell: "CellSpec") -> float:
    """Relative execution-cost proxy of one cell.

    Messaging and MSR fold work scale roughly with ``n^2 * rounds``,
    weighted by per-family and per-topology factors (a witness-family
    cell on a ring costs several of its bonomi full-mesh neighbours);
    the absolute scale is irrelevant (the dispatcher calibrates
    seconds-per-cost-unit from observed chunk timings), only the
    ordering between cheap and expensive cells matters.  ``n=None``
    resolves to the model's Table 2 minimum; unknown models fall back
    to a small constant so malformed cells (which error out instantly)
    are treated as cheap, and unknown families take no multiplier.
    """
    n = cell.n
    if n is None:
        try:
            from ..faults.models import get_semantics

            n = get_semantics(cell.model).required_n(cell.f)
        except (KeyError, ValueError):
            n = 16
    rounds = (
        cell.rounds
        if cell.rounds is not None
        else min(cell.max_rounds, _NOMINAL_ROUNDS)
    )
    cost = float(max(n, 1)) ** 2 * float(max(rounds, 1))
    cost *= _FAMILY_COST_FACTORS.get(cell.family, 1.0)
    if cell.topology != "complete":
        cost *= _PARTIAL_TOPOLOGY_FACTOR
    return cost


class _AdaptiveChunker:
    """Forms dispatch chunks from a work queue, heaviest cells first.

    Until the first timing observation lands, chunks are singletons
    (calibration doubles as LPT scheduling of the most expensive
    cells).  Afterwards each chunk is filled greedily until its
    estimated duration reaches ``target_seconds`` under the current
    seconds-per-cost-unit model (an EWMA over observed chunk timings),
    so a cell expensive enough to hit the target alone ships alone
    while runs of cheap cells coalesce into larger and larger chunks.
    """

    def __init__(
        self,
        cells: Sequence["CellSpec"],
        target_seconds: float,
        max_chunk: int,
    ) -> None:
        self._queue: deque["CellSpec"] = deque(
            sorted(cells, key=estimate_cell_cost, reverse=True)
        )
        self._target = target_seconds
        self._max_chunk = max_chunk
        self._sec_per_cost: float | None = None

    def __len__(self) -> int:
        return len(self._queue)

    @staticmethod
    def cost_of(chunk: Sequence["CellSpec"]) -> float:
        return math.fsum(estimate_cell_cost(cell) for cell in chunk)

    def next_chunk(self) -> list["CellSpec"] | None:
        """The next dispatch unit, or ``None`` when the queue is dry."""
        if not self._queue:
            return None
        chunk = [self._queue.popleft()]
        if self._sec_per_cost is None:
            return chunk
        budget = self._target - estimate_cell_cost(chunk[0]) * self._sec_per_cost
        while self._queue and len(chunk) < self._max_chunk:
            eta = estimate_cell_cost(self._queue[0]) * self._sec_per_cost
            if eta > budget:
                break
            chunk.append(self._queue.popleft())
            budget -= eta
        return chunk

    def observe(self, cost: float, seconds: float) -> None:
        """Fold one completed chunk's worker-side timing into the model."""
        rate = seconds / max(cost, 1.0)
        if self._sec_per_cost is None:
            self._sec_per_cost = rate
        else:
            self._sec_per_cost = 0.5 * self._sec_per_cost + 0.5 * rate


def _run_chunk(runner: CellRunner, cells: list["CellSpec"]) -> list["CellResult"]:
    """Apply a per-cell runner across one chunk (module level: pickles)."""
    return [runner(cell) for cell in cells]


def _timed_chunk(
    chunk_runner: BatchRunner, cells: list["CellSpec"]
) -> tuple[float, list["CellResult"]]:
    """Run a chunk in a worker, returning its compute time alongside.

    Timing inside the worker (rather than submit-to-callback in the
    parent) keeps queueing delay out of the cost model.
    """
    start = time.perf_counter()
    results = chunk_runner(cells)
    return time.perf_counter() - start, results


class AsyncBackend(MultiprocessingBackend):
    """Work-queue pool dispatcher with adaptive dynamic chunking.

    Replaces the static ``batch_size`` partition of
    :class:`MultiprocessingBackend`: the parent keeps the pool primed
    with one spare chunk beyond the worker count, forms each next chunk
    only when a slot frees (so chunk sizing reacts to the timings of
    everything already finished), and folds results chunk by chunk
    through :attr:`SweepBackend.on_result` -- the streaming spine for
    live aggregation, progress lines and resume journals.  Each chunk
    runs through one shared round kernel in its worker (see
    :func:`~repro.sweep.engine.run_cell_batch`), so the cheap-cell
    dispatch overhead the ``sweep_64`` ledger flagged is amortized
    twice: fewer pool tasks, and fewer kernel setups.

    Where a pool cannot win (``_pool_decision``: one usable CPU, one
    task, forced serial) execution falls back inline on static
    ``inline_batch``-sized chunks -- the batched-serial fast path --
    still emitting per chunk.  Results are bit-identical to every other
    backend for any worker count, chunk shape or timing jitter: cells
    are pure functions of their spec, and the engine sorts by cell key.
    """

    def __init__(
        self,
        workers: int,
        dispatch_mode: str = "auto",
        target_chunk_seconds: float = 0.15,
        max_chunk: int = 32,
        inline_batch: int = 16,
    ) -> None:
        super().__init__(workers, dispatch_mode=dispatch_mode)
        if target_chunk_seconds <= 0:
            raise ValueError(
                f"target_chunk_seconds must be positive, got "
                f"{target_chunk_seconds}"
            )
        if max_chunk < 1:
            raise ValueError(f"max_chunk must be at least 1, got {max_chunk}")
        if inline_batch < 1:
            raise ValueError(
                f"inline_batch must be at least 1, got {inline_batch}"
            )
        self.target_chunk_seconds = target_chunk_seconds
        self.max_chunk = max_chunk
        self.inline_batch = inline_batch

    @property
    def wants_batches(self) -> bool:
        """Chunks always run through a shared in-worker round kernel."""
        return True

    def execute(
        self, cells: Sequence["CellSpec"], runner: CellRunner
    ) -> list["CellResult"]:
        return self._dispatch(cells, partial(_run_chunk, runner))

    def execute_batch(
        self, cells: Sequence["CellSpec"], batch_runner: BatchRunner
    ) -> list["CellResult"]:
        return self._dispatch(cells, batch_runner)

    def _dispatch(
        self, cells: Sequence["CellSpec"], chunk_runner: BatchRunner
    ) -> list["CellResult"]:
        use_pool, label = self._pool_decision(len(cells), batched=False)
        self.dispatch = f"async-{label}"
        if not use_pool:
            results: list["CellResult"] = []
            for start in range(0, len(cells), self.inline_batch):
                chunk_results = chunk_runner(
                    list(cells[start : start + self.inline_batch])
                )
                results.extend(chunk_results)
                self._emit(chunk_results)
            return results

        chunker = _AdaptiveChunker(
            cells, self.target_chunk_seconds, self.max_chunk
        )
        completions: queue.SimpleQueue = queue.SimpleQueue()
        results = []
        in_flight = 0
        with multiprocessing.Pool(processes=self.workers) as pool:

            def submit() -> bool:
                nonlocal in_flight
                chunk = chunker.next_chunk()
                if chunk is None:
                    return False
                cost = chunker.cost_of(chunk)
                pool.apply_async(
                    _timed_chunk,
                    (chunk_runner, chunk),
                    callback=lambda timed, c=cost: completions.put(
                        (c, timed, None)
                    ),
                    error_callback=lambda exc, c=cost: completions.put(
                        (c, None, exc)
                    ),
                )
                in_flight += 1
                return True

            # One spare chunk beyond the workers keeps every slot busy
            # while the parent folds a finished chunk's results.
            while in_flight <= self.workers and submit():
                pass
            while in_flight:
                cost, timed, error = completions.get()
                in_flight -= 1
                if error is not None:
                    # Pool.__exit__ terminates the outstanding work.
                    raise error
                seconds, chunk_results = timed
                chunker.observe(cost, seconds)
                results.extend(chunk_results)
                self._emit(chunk_results)
                while in_flight <= self.workers and submit():
                    pass
        return results


class ShardedBackend(SweepBackend):
    """Deterministic grid partitioning for multi-invocation sweeps.

    Invocation ``shard_index`` of ``shard_count`` owns every cell whose
    rank in the grid's key order is congruent to ``shard_index`` modulo
    ``shard_count`` -- a pure function of the grid, independent of cell
    order or cache state, so concurrent invocations never overlap.  The
    owned cells run through ``inner`` (serial by default, a
    :class:`MultiprocessingBackend` when ``workers > 1``), the shard's
    results spill to ``spill_dir/shard-IIII-of-NNNN.json``, and
    :meth:`finalize` returns the merged full-grid result once all
    shards are present -- or a partial result (``complete=False``)
    holding only this shard's cells while siblings are outstanding.
    """

    def __init__(
        self,
        shard_index: int,
        shard_count: int,
        spill_dir: str | Path,
        workers: int = 1,
        chunk_size: int | None = None,
        batch_size: int | None = None,
    ) -> None:
        if shard_count < 1:
            raise ValueError(f"shard_count must be at least 1, got {shard_count}")
        if not 0 <= shard_index < shard_count:
            raise ValueError(
                f"shard_index must be in [0, {shard_count}), got {shard_index}"
            )
        if shard_count > 9999:
            raise ValueError(
                f"shard_count must be at most 9999, got {shard_count}"
            )
        if batch_size is not None and batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.shard_index = shard_index
        self.shard_count = shard_count
        self.spill_dir = Path(spill_dir)
        self.workers = workers
        self.batch_size = batch_size
        self._grid_fingerprint: str | None = None
        self._grid_size: int | None = None
        self._inner: SweepBackend = (
            MultiprocessingBackend(workers, chunk_size, batch_size)
            if workers > 1
            else SerialBackend()
        )
        self._inner.batch_size = batch_size

    def select(self, cells: list["CellSpec"]) -> list["CellSpec"]:
        # The full grid's identity is stamped into the spill file so a
        # merge can refuse shards cut from a different grid.
        self._grid_fingerprint = grid_fingerprint(cells)
        self._grid_size = len(cells)
        ordered = sorted(cells, key=lambda cell: cell.key)
        return [
            cell
            for rank, cell in enumerate(ordered)
            if rank % self.shard_count == self.shard_index
        ]

    def execute(
        self, cells: Sequence["CellSpec"], runner: CellRunner
    ) -> list["CellResult"]:
        results = self._inner.execute(cells, runner)
        self.dispatch = f"sharded({self._inner.dispatch})"
        return results

    def execute_batch(
        self, cells: Sequence["CellSpec"], batch_runner: BatchRunner
    ) -> list["CellResult"]:
        results = self._inner.execute_batch(cells, batch_runner)
        self.dispatch = f"sharded({self._inner.dispatch})"
        return results

    def execute_many(
        self, cells: Sequence["CellSpec"], many_runner: ManyRunner
    ) -> list["CellResult"]:
        results = self._inner.execute_many(cells, many_runner)
        self.dispatch = f"sharded({self._inner.dispatch})"
        return results

    def shard_path(self, shard_index: int | None = None) -> Path:
        index = self.shard_index if shard_index is None else shard_index
        return self.spill_dir / (
            f"shard-{index:04d}-of-{self.shard_count:04d}.json"
        )

    def finalize(
        self,
        results: Sequence["CellResult"],
        trace_detail: str,
        probe: str | None = None,
    ) -> SweepResult:
        self.spill_dir.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": SWEEP_SCHEMA_VERSION,
            "shard_index": self.shard_index,
            "shard_count": self.shard_count,
            "trace_detail": trace_detail,
            "probe": probe,
            "grid": self._grid_fingerprint,
            "grid_size": self._grid_size,
            "results": [result_to_dict(result) for result in results],
        }
        path = self.shard_path()
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
        os.replace(tmp, path)

        missing = [
            index
            for index in range(self.shard_count)
            if not self.shard_path(index).exists()
        ]
        if missing:
            partial = _sorted_result(results, trace_detail, self.workers)
            return SweepResult(
                cells=partial.cells,
                trace_detail=trace_detail,
                workers=self.workers,
                complete=False,
                dispatch=self.dispatch,
            )
        return merge_shards(self.spill_dir)


def _require_agreement(shards: dict[int, dict], field: str, label: str):
    """All shards must agree on ``field``; mixed values name examples."""
    values = {index: payload.get(field) for index, payload in shards.items()}
    distinct = sorted(set(values.values()), key=repr)
    if len(distinct) > 1:
        examples = {
            value: min(i for i, v in values.items() if v == value)
            for value in distinct
        }
        rendered = " vs ".join(
            f"{value!r} (shard {examples[value]})" for value in distinct
        )
        raise ValueError(f"cannot merge shards with mixed {label}: {rendered}")
    return distinct[0]


def merge_shards(spill_dir: str | Path) -> SweepResult:
    """Merge a directory of shard spill files into one sweep result.

    Validates the shard family before trusting it: every index of the
    announced ``shard_count`` must be present exactly once, and all
    shards must agree on ``shard_count``, schema version,
    ``trace_detail``, probe and the grid they were cut from (each
    mismatch is rejected naming both sides) -- so stale spill files
    left over from a sweep of a different grid, shard count or probe
    can never merge silently.  No cell may appear in two shards, and
    the merged cell count must cover the recorded grid.  The result is
    bit-identical to a serial :func:`~repro.sweep.engine.run_sweep`
    over the same grid.
    """
    spill_dir = Path(spill_dir)
    payloads: list[dict] = []
    for path in sorted(spill_dir.iterdir()) if spill_dir.is_dir() else []:
        match = _SHARD_FILE.match(path.name)
        if not match:
            continue
        payload = json.loads(path.read_text(encoding="utf-8"))
        if payload.get("schema") != SWEEP_SCHEMA_VERSION:
            raise ValueError(
                f"shard file {path.name} has schema "
                f"{payload.get('schema')!r}; this build reads "
                f"{SWEEP_SCHEMA_VERSION}"
            )
        payloads.append(payload)
    if not payloads:
        raise ValueError(f"no shard files found in {spill_dir}")

    shard_counts = {payload["shard_count"] for payload in payloads}
    if len(shard_counts) > 1:
        raise ValueError(
            f"shard files in {spill_dir} disagree on shard_count: "
            f"{sorted(shard_counts)} (stale spill files from an earlier "
            "sweep? use a fresh spill directory per grid)"
        )
    shard_count = shard_counts.pop()
    shards: dict[int, dict] = {}
    for payload in payloads:
        index = payload["shard_index"]
        if index in shards:
            raise ValueError(
                f"shard index {index} appears in multiple files in "
                f"{spill_dir} (stale spill files from an earlier sweep?)"
            )
        shards[index] = payload
    missing = sorted(set(range(shard_count)) - set(shards))
    if missing:
        raise ValueError(
            f"incomplete shard family in {spill_dir}: missing shard(s) "
            f"{missing} of {shard_count}"
        )

    trace_detail = _require_agreement(shards, "trace_detail", "trace details")
    _require_agreement(shards, "probe", "probes")
    _require_agreement(shards, "grid", "grids")
    grid_size = _require_agreement(shards, "grid_size", "grid sizes")

    results: list["CellResult"] = []
    seen: set[tuple] = set()
    for index in range(shard_count):
        for entry in shards[index]["results"]:
            result = result_from_dict(entry)
            if result.key in seen:
                raise ValueError(
                    f"cell {result.spec.describe()} appears in multiple shards"
                )
            seen.add(result.key)
            results.append(result)
    if grid_size is not None and len(results) != grid_size:
        raise ValueError(
            f"shard family in {spill_dir} covers {len(results)} cells but "
            f"records a grid of {grid_size}"
        )
    return _sorted_result(
        results, trace_detail, workers=1, dispatch="sharded-merge"
    )

"""Declarative scenario grids: the cartesian product of run families.

The paper's claims (Tables 1-2, per-model convergence rates) quantify
over *families* of executions -- every model, every admissible fault
count, every adversary, many seeds.  A :class:`GridSpec` captures such
a family declaratively as the cartesian product of its axes; each point
of the product is a :class:`CellSpec`, a fully-primitive (and therefore
picklable and hashable) description of one simulation run.

Cells deliberately hold only short names and numbers -- never strategy
or algorithm objects -- so a grid can be shipped to worker processes
and each cell rebuilt independently via
:func:`repro.api.mobile_config`.  The cell's ``seed`` feeds the
``derive_rng`` stream derivation, which makes every cell's execution a
pure function of the cell alone: results never depend on which worker
ran it, or in which order.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence
from dataclasses import dataclass, fields
from itertools import product

from ..runtime.families import DEFAULT_FAMILY, get_family
from ..topology import DEFAULT_TOPOLOGY

__all__ = ["CellSpec", "GridSpec"]


@dataclass(frozen=True)
class CellSpec:
    """One point of a sweep grid: a complete, primitive run description.

    ``n=None`` means "the model's Table 2 minimum for ``f``", resolved
    when the cell is materialized into a config.

    ``scenario`` selects the config builder (see
    :mod:`repro.sweep.scenarios`): the default ``"mobile"`` is the
    :func:`repro.api.mobile_config` family; ``"static-mixed"``,
    ``"stall"`` and ``"mixed-stall"`` describe the static-substrate and
    lower-bound configurations the experiments sweep over.  Scenario
    parameters beyond the shared fields (e.g. ``(a, s, b)`` counts)
    travel in ``params``, a sorted tuple of ``(name, value)`` pairs so
    the cell stays hashable and picklable; a mapping passed at
    construction is normalized automatically.

    ``family`` names the protocol-level algorithm family executing the
    cell (see :mod:`repro.runtime.families`) -- ``algorithm`` remains
    the MSR function *within* the family, so ``families x algorithms``
    sweeps compare protocol designs under identical folds.

    ``topology`` names the communication graph by spec string (see
    :mod:`repro.topology`); the default ``"complete"`` is the paper's
    full mesh and is omitted from descriptions and cache encodings so
    pre-topology cells keep their identity.
    """

    model: str
    f: int
    n: int | None
    algorithm: str
    movement: str
    attack: str
    epsilon: float
    seed: int
    rounds: int | None = None
    max_rounds: int = 1_000
    scenario: str = "mobile"
    params: tuple[tuple[str, object], ...] = ()
    family: str = DEFAULT_FAMILY
    topology: str = DEFAULT_TOPOLOGY

    def __post_init__(self) -> None:
        pairs = (
            self.params.items()
            if isinstance(self.params, Mapping)
            else self.params
        )
        # Sorted in both forms: semantically identical cells must share
        # one key (and one cache hash) however their params were spelt.
        normalized = tuple(sorted((str(name), value) for name, value in pairs))
        object.__setattr__(self, "params", normalized)

    @property
    def key(self) -> tuple:
        """Stable, sortable identity of the cell within any grid.

        Covers every field (``None`` sentinels mapped to sortable
        ints): hand-built cell lists may legitimately differ only in
        round budget, and such cells must not collide.
        """
        return (
            self.model,
            self.f,
            self.n if self.n is not None else 0,
            self.algorithm,
            self.movement,
            self.attack,
            self.epsilon,
            self.seed,
            self.rounds if self.rounds is not None else -1,
            self.max_rounds,
            self.scenario,
            self.params,
            self.family,
            self.topology,
        )

    @property
    def batch_key(self) -> tuple:
        """Cross-run batch compatibility class of the cell.

        ``key`` minus the ``seed``: two cells sharing a ``batch_key``
        describe the *same* simulation shape (model, sizes, round
        budget, scenario, family, topology) differing only in their
        RNG stream, which is exactly the precondition for stacking
        their runs into one ``(R, n)`` state array and advancing them
        in lockstep (see :func:`repro.sweep.engine.run_cell_many`).
        Partitioning any cell list by ``batch_key`` is a true
        partition: every cell lands in exactly one group, and groups
        never mix families, topologies or scenarios.
        """
        return (
            self.model,
            self.f,
            self.n if self.n is not None else 0,
            self.algorithm,
            self.movement,
            self.attack,
            self.epsilon,
            self.rounds if self.rounds is not None else -1,
            self.max_rounds,
            self.scenario,
            self.params,
            self.family,
            self.topology,
        )

    def params_dict(self) -> dict[str, object]:
        """The scenario parameters as a plain dictionary."""
        return dict(self.params)

    def to_config(self):
        """Materialize the validated :class:`SimulationConfig`.

        Raises :class:`ValueError` when the cell lies below the model's
        resilience bound (an explicit ``n`` can undercut Table 2), or
        when the cell's scenario rejects its parameters.
        """
        from .scenarios import build_cell_config

        return build_cell_config(self)

    def describe(self) -> str:
        """Compact one-line cell label for tables and error messages."""
        n = "min" if self.n is None else str(self.n)
        prefix = "" if self.scenario == "mobile" else f"[{self.scenario}] "
        suffix = "".join(
            f" {name}={value}" for name, value in self.params
        )
        # Family/topology tags only off their defaults keep pre-family
        # (and pre-topology) cell tables -- and the goldens embedding
        # them -- byte-identical.
        family = (
            "" if self.family == DEFAULT_FAMILY else f" fam={self.family}"
        )
        topology = (
            ""
            if self.topology == DEFAULT_TOPOLOGY
            else f" topo={self.topology}"
        )
        return (
            f"{prefix}{self.model} f={self.f} n={n} {self.algorithm} "
            f"{self.movement}/{self.attack} eps={self.epsilon:g} "
            f"seed={self.seed}{family}{topology}{suffix}"
        )


def _as_tuple(values, name: str) -> tuple:
    """Normalize an axis: scalars become 1-tuples, sequences tuples."""
    if values is None:
        return (None,)
    if isinstance(values, (str, int, float)):
        return (values,)
    if isinstance(values, Sequence):
        normalized = tuple(values)
        if not normalized:
            raise ValueError(f"grid axis {name!r} must not be empty")
        return normalized
    raise TypeError(f"grid axis {name!r}: expected scalar or sequence, got {values!r}")


@dataclass(frozen=True)
class GridSpec:
    """A declarative scenario family: the product of its axes.

    Every axis accepts either a scalar or a sequence; scalars are
    normalized to singleton axes at construction.  The one exception is
    ``seeds``, which rejects a bare integer: ``seeds=16`` would be
    ambiguous between "the single seed 16" and the seed *count* that
    :func:`repro.api.sweep_grid` expands to ``range(16)`` -- pass the
    sequence you mean.  ``cells()`` yields the cartesian product in a
    deterministic order (axes vary rightmost-fastest, like
    :func:`itertools.product`).

    The ``families x topologies`` corner of the product is pruned by
    *structural* compatibility: a registered family that requires the
    complete graph is never crossed with a non-``"complete"`` spec
    (running it would only produce a guaranteed per-cell error), so a
    single grid expresses head-to-head comparisons like "witness on a
    ring vs bonomi on the full mesh".  A grid whose every combination
    is incompatible is rejected at construction.  Unknown family names
    are *not* pruned -- their cells run and report the unknown-family
    error, exactly as before.
    """

    models: tuple[str, ...] = ("M1", "M2", "M3")
    fs: tuple[int, ...] = (1,)
    ns: tuple[int | None, ...] = (None,)
    algorithms: tuple[str, ...] = ("ftm",)
    movements: tuple[str, ...] = ("round-robin",)
    attacks: tuple[str, ...] = ("split",)
    epsilons: tuple[float, ...] = (1e-3,)
    seeds: tuple[int, ...] = (0,)
    rounds: int | None = None
    max_rounds: int = 1_000
    families: tuple[str, ...] = (DEFAULT_FAMILY,)
    topologies: tuple[str, ...] = (DEFAULT_TOPOLOGY,)

    def __post_init__(self) -> None:
        if isinstance(self.seeds, int):
            raise TypeError(
                f"GridSpec(seeds={self.seeds}) is ambiguous: pass the "
                f"sequence you mean, e.g. range({self.seeds}) for that "
                f"many seeds or ({self.seeds},) for that single seed "
                "(repro.sweep_grid(seeds=K) expands K to range(K))"
            )
        for axis in (
            "models",
            "fs",
            "ns",
            "algorithms",
            "movements",
            "attacks",
            "epsilons",
            "seeds",
            "families",
            "topologies",
        ):
            object.__setattr__(self, axis, _as_tuple(getattr(self, axis), axis))
        if not self.family_topology_pairs():
            raise ValueError(
                f"grid crosses families {self.families} only with "
                f"topologies {self.topologies}, and every combination is "
                "structurally incompatible (complete-graph families on "
                "partial graphs); add 'complete' to the topologies or a "
                "relay-based family such as 'witness'"
            )

    def family_topology_pairs(self) -> list[tuple[str, str]]:
        """The compatible ``(family, topology)`` combinations, in order.

        Family-major (preserving the pre-topology cell order for
        single-topology grids), with structurally impossible pairs --
        a complete-graph family on a non-complete spec -- removed.
        Compatibility is decided on the *spec string* alone (``n`` is
        unknown here), so a spec that happens to resolve to a complete
        graph at some ``n`` (e.g. a wide ring on a tiny system) is
        still pruned for complete-only families.
        """
        pairs = []
        for family in self.families:
            for topology in self.topologies:
                if topology != DEFAULT_TOPOLOGY:
                    try:
                        requires_complete = get_family(family).requires_complete
                    except KeyError:
                        # Unknown family: keep the cell so the sweep
                        # reports its error instead of hiding the typo.
                        requires_complete = False
                    if requires_complete:
                        continue
                pairs.append((family, topology))
        return pairs

    def __len__(self) -> int:
        return len(self.family_topology_pairs()) * (
            len(self.models)
            * len(self.fs)
            * len(self.ns)
            * len(self.algorithms)
            * len(self.movements)
            * len(self.attacks)
            * len(self.epsilons)
            * len(self.seeds)
        )

    def cells(self) -> Iterator[CellSpec]:
        """Yield every cell of the product, deterministically ordered.

        ``families`` varies outermost (then ``topologies``) so each
        family's cells stay contiguous; single-family single-topology
        grids keep their pre-family order exactly.
        """
        for family, topology in self.family_topology_pairs():
            for model, f, n, algorithm, movement, attack, epsilon, seed in product(
                self.models,
                self.fs,
                self.ns,
                self.algorithms,
                self.movements,
                self.attacks,
                self.epsilons,
                self.seeds,
            ):
                yield CellSpec(
                    model=model,
                    f=f,
                    n=n,
                    algorithm=algorithm,
                    movement=movement,
                    attack=attack,
                    epsilon=epsilon,
                    seed=seed,
                    rounds=self.rounds,
                    max_rounds=self.max_rounds,
                    family=family,
                    topology=topology,
                )

    def describe(self) -> str:
        """Axis-by-axis summary, e.g. for CLI banners."""
        parts = []
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if isinstance(value, tuple):
                rendered = ",".join("min" if v is None else str(v) for v in value)
                parts.append(f"{spec_field.name}=[{rendered}]")
        return f"{len(self)} cells: " + " ".join(parts)

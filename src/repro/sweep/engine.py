"""Sweep orchestration: cells in, cached/backed execution, result out.

Each grid cell is executed by the module-level :func:`run_cell` (module
level so it pickles), which materializes the cell's config through its
scenario, runs the simulator -- by default on the trace-lite fast path
-- and condenses the outcome into a :class:`CellResult` of plain
primitives, optionally augmented by a named probe.

:func:`run_sweep` itself no longer knows how cells run: execution is
delegated to a pluggable :class:`~repro.sweep.backends.SweepBackend`
(serial, multiprocessing pool, or deterministic shards for fanning a
grid across hosts), and every backend consults an optional
content-addressed :class:`~repro.sweep.cache.CellStore` before
executing a cell and writes through after.

Determinism contract: a cell's result is a pure function of the cell.
Every stochastic component draws from ``derive_rng(seed, ...)`` streams
seeded by stable strings, so worker processes reproduce bit-identical
results regardless of start method, worker count, chunking, scheduling
order, shard assignment or cache state.  :func:`run_sweep` additionally
sorts results by cell key, making the aggregate independent of the
execution strategy.  The determinism, backend and cache test suites
assert these properties.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field, replace
from functools import partial
from pathlib import Path
from typing import TYPE_CHECKING

from ..core.specification import check_trace
from ..runtime.kernel import RoundKernel
from ..runtime.simulator import (
    RunBatchOut,
    TraceDetail,
    run_simulation,
    simulate_many,
)
from .aggregate import SweepResult
from .backends import (
    DISPATCH_MODES,
    AsyncBackend,
    MultiprocessingBackend,
    SerialBackend,
    ShardedBackend,
    ShmCrossRunBackend,
    SweepBackend,
)
from .cache import CellStore
from .grid import CellSpec, GridSpec
from .probes import get_probe

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a module cycle
    from .service import SweepJournal

__all__ = [
    "CellResult",
    "run_cell",
    "run_cell_batch",
    "run_cell_many",
    "run_sweep",
]

#: ``progress`` callback signature: ``(result, done, total)`` with
#: ``done`` counting every result observed so far (journal replays and
#: cache hits included) out of ``total`` cells this invocation owns.
ProgressCallback = Callable[["CellResult", int, int], None]


@dataclass(frozen=True)
class CellResult:
    """The condensed, picklable outcome of one grid cell.

    ``error`` is set (and every other payload field zeroed) when the
    cell could not run -- e.g. an explicit ``n`` below the model's
    resilience bound, or a run aborted by a family's own runtime
    requirement (the witness family refuses mid-run when an adversary
    starves its phase-boundary fold on a minimum-degree graph).
    """

    spec: CellSpec
    decisions: tuple[tuple[int, float], ...]
    rounds: int
    terminated: bool
    decision_diameter: float
    #: Non-faulty diameter trajectory: initial, then after each round.
    diameters: tuple[float, ...]
    termination_ok: bool
    agreement_ok: bool
    validity_ok: bool
    #: Per-round invariant verdicts; ``None`` when not evaluated
    #: (lite traces carry no message records to check them against).
    p1_ok: bool | None = None
    p2_ok: bool | None = None
    #: Probe output: ``(name, value)`` pairs of primitives (see
    #: :mod:`repro.sweep.probes`); empty when no probe ran.
    extras: tuple[tuple[str, object], ...] = ()
    error: str | None = None
    #: Observed compute seconds of this cell (a per-run share of its
    #: group for cross-run execution); ``None`` for cache/journal
    #: replays.  A machine property: excluded from equality and from
    #: the cache serialization, consumed by
    #: :meth:`~repro.sweep.backends.CostModel.fit` via the journal.
    elapsed: float | None = field(default=None, compare=False, repr=False)

    @property
    def key(self) -> tuple:
        return self.spec.key

    @property
    def satisfied(self) -> bool:
        """The headline specification verdict of the cell's run."""
        return (
            self.error is None
            and self.termination_ok
            and self.agreement_ok
            and self.validity_ok
        )

    def extras_dict(self) -> dict[str, object]:
        """The probe output as a plain dictionary."""
        return dict(self.extras)


def _error_cell(cell: CellSpec, exc: Exception) -> CellResult:
    """The canonical error verdict of a cell that could not run."""
    return CellResult(
        spec=cell,
        decisions=(),
        rounds=0,
        terminated=False,
        decision_diameter=0.0,
        diameters=(),
        termination_ok=False,
        agreement_ok=False,
        validity_ok=False,
        error=str(exc),
    )


def _condense_trace(cell: CellSpec, trace, probe_spec) -> CellResult:
    """Condense one finished trace into its :class:`CellResult`.

    Shared by the per-cell and cross-run runners so both condense
    identically (checker verdicts, probe extras, sorted decisions).
    """
    verdict = check_trace(trace)
    extras = tuple(probe_spec.extract(trace)) if probe_spec is not None else ()
    return CellResult(
        spec=cell,
        decisions=tuple(sorted(trace.decisions.items())),
        rounds=trace.rounds_executed(),
        terminated=trace.terminated,
        decision_diameter=trace.decision_diameter(),
        diameters=tuple(trace.diameters()),
        termination_ok=verdict.termination.holds,
        agreement_ok=verdict.epsilon_agreement.holds,
        validity_ok=verdict.validity.holds,
        p1_ok=None if verdict.p1.skipped else verdict.p1.holds,
        p2_ok=None if verdict.p2.skipped else verdict.p2.holds,
        extras=extras,
    )


def run_cell(
    cell: CellSpec,
    trace_detail: TraceDetail = "lite",
    probe: str | None = None,
    kernel: RoundKernel | None = None,
) -> CellResult:
    """Execute one cell and condense its outcome.

    Runs in worker processes during parallel sweeps; everything it
    touches must be importable and picklable.  ``probe`` names a
    registered :class:`~repro.sweep.probes.Probe` whose output lands in
    ``CellResult.extras``.  ``kernel`` optionally shares one
    :class:`~repro.runtime.kernel.RoundKernel` across the cells of a
    batch (results are identical with or without it).
    """
    probe_spec = get_probe(probe) if probe is not None else None
    started = time.perf_counter()
    try:
        config = cell.to_config()
    except (ValueError, KeyError) as exc:
        return _error_cell(cell, exc)
    try:
        trace = run_simulation(config, trace_detail=trace_detail, kernel=kernel)
    except ValueError as exc:
        # A family's runtime requirement rejecting the run mid-flight
        # is a per-cell verdict, not grounds to kill a whole sweep.
        return _error_cell(cell, exc)
    result = _condense_trace(cell, trace, probe_spec)
    return replace(result, elapsed=time.perf_counter() - started)


def _run_cell_cached(
    cell: CellSpec,
    trace_detail: TraceDetail = "lite",
    probe: str | None = None,
    store: CellStore | None = None,
    kernel: RoundKernel | None = None,
) -> CellResult:
    """Cache-through cell runner (module level so it pickles).

    The double-check against the store matters: workers of concurrent
    shard invocations may have produced the cell since the parent
    filtered its misses, and writing through here (not in the parent)
    is what makes interrupted sweeps resumable.
    """
    cached = store.load(cell, trace_detail, probe)
    if cached is not None:
        return cached
    result = run_cell(cell, trace_detail=trace_detail, probe=probe, kernel=kernel)
    store.save(result, trace_detail, probe)
    return result


def run_cell_batch(
    cells: list[CellSpec],
    trace_detail: TraceDetail = "lite",
    probe: str | None = None,
    store: CellStore | None = None,
) -> list[CellResult]:
    """Execute a batch of cells in-process through one shared kernel.

    The unit of work of batched backends (module level so it pickles):
    one dispatch runs many cells back to back, reusing the round
    kernel's scratch buffers and amortizing process dispatch overhead
    over the whole batch.  Results are bit-identical to per-cell
    execution -- the kernel carries no simulation state between cells.
    """
    kernel = RoundKernel()
    if store is None:
        return [
            run_cell(cell, trace_detail=trace_detail, probe=probe, kernel=kernel)
            for cell in cells
        ]
    return [
        _run_cell_cached(
            cell,
            trace_detail=trace_detail,
            probe=probe,
            store=store,
            kernel=kernel,
        )
        for cell in cells
    ]


def run_cell_many(
    cells: list[CellSpec],
    trace_detail: TraceDetail = "lite",
    probe: str | None = None,
    store: CellStore | None = None,
    out: RunBatchOut | None = None,
) -> list[CellResult]:
    """Execute a group of cells through the cross-run vectorized engine.

    The unit of work of cross-run sweeps (module level so it pickles):
    the cells are partitioned by :attr:`CellSpec.batch_key` and each
    compatible group is handed to
    :func:`repro.runtime.simulator.simulate_many`, which stacks the
    group's runs into one ``(R, n)`` state array and advances them in
    lockstep -- one sort/fold pass per round for the whole group.
    Results are bit-identical to :func:`run_cell` execution and come
    back in input order; groups the stacked engine cannot take (full
    traces, stateful families, partial topologies) fall back to the
    per-run paths inside ``simulate_many`` itself.

    ``out`` -- a :class:`~repro.runtime.simulator.RunBatchOut`, slot
    ``i`` for ``cells[i]`` -- additionally lands each successful run's
    payload in the caller's stacked buffer (the shared-memory path of
    :class:`~repro.sweep.backends.ShmCrossRunBackend`); cells that
    never produce a trace here (config errors, store hits, per-cell
    fallback reruns) leave their slot unwritten, which ``out.written``
    records.
    """
    kernel = RoundKernel()
    probe_spec = get_probe(probe) if probe is not None else None
    results: list[CellResult | None] = [None] * len(cells)
    pending: list[int] = []
    for idx, cell in enumerate(cells):
        if store is not None:
            # Same double-check as _run_cell_cached: concurrent shard
            # invocations may have produced the cell since the parent
            # filtered its misses.
            cached = store.load(cell, trace_detail, probe)
            if cached is not None:
                results[idx] = cached
                continue
        pending.append(idx)
    rescued: set[int] = set()
    groups: dict[tuple, list[int]] = {}
    for idx in pending:
        groups.setdefault(cells[idx].batch_key, []).append(idx)
    for indices in groups.values():
        configs = []
        runnable: list[int] = []
        for idx in indices:
            try:
                configs.append(cells[idx].to_config())
            except (ValueError, KeyError) as exc:
                results[idx] = _error_cell(cells[idx], exc)
            else:
                runnable.append(idx)
        if not runnable:
            continue
        started = time.perf_counter()
        try:
            traces = simulate_many(
                configs,
                trace_detail=trace_detail,
                kernel=kernel,
                out=out,
                out_slots=runnable,
            )
        except ValueError:
            # A family's runtime requirement rejected some run of the
            # group mid-flight.  Rerun the group per-cell so the error
            # lands on exactly the cell that earned it -- but serve any
            # member a concurrent invocation has cached since the
            # stacked attempt started instead of recomputing it.
            for idx in runnable:
                if store is not None:
                    cached = store.load(cells[idx], trace_detail, probe)
                    store.record(cached is not None)
                    if cached is not None:
                        results[idx] = cached
                        rescued.add(idx)
                        continue
                results[idx] = run_cell(
                    cells[idx],
                    trace_detail=trace_detail,
                    probe=probe,
                    kernel=kernel,
                )
            continue
        # Each run's share of the group's one stacked pass: the
        # per-cell number CostModel.fit consumes from the journal.
        share = (time.perf_counter() - started) / len(runnable)
        for idx, trace in zip(runnable, traces):
            condensed = _condense_trace(cells[idx], trace, probe_spec)
            results[idx] = replace(condensed, elapsed=share)
    if store is not None:
        for idx in pending:
            if idx not in rescued:
                store.save(results[idx], trace_detail, probe)
    return results


def _resolve_backend(
    backend: SweepBackend | str | None,
    workers: int,
    chunk_size: int | None,
    batch_size: int | None = None,
    dispatch: str = "auto",
    cross_run: bool = False,
) -> SweepBackend:
    if backend is None:
        if dispatch == "shm":
            # Forcing the shared-memory rung needs the stealing
            # backend at any worker count; _pool_decision owns the
            # one-CPU warning.
            return ShmCrossRunBackend(max(workers, 1), dispatch_mode=dispatch)
        if cross_run and workers > 1 and dispatch != "serial":
            # Parallel cross-run sweeps default to the zero-copy
            # stealing backend; it degrades rung by rung (pickle pool,
            # in-process serial) wherever shm or the pool cannot win.
            return ShmCrossRunBackend(workers, dispatch_mode=dispatch)
        if dispatch == "pool" and workers <= 1:
            # Forcing a pool needs a pool-capable backend even at the
            # default worker count; _pool_decision owns the warning.
            return MultiprocessingBackend(
                max(workers, 1), chunk_size, batch_size, dispatch_mode=dispatch
            )
        if workers <= 1 and batch_size is None:
            return SerialBackend()
        if workers <= 1:
            serial = SerialBackend()
            serial.batch_size = batch_size
            return serial
        return MultiprocessingBackend(
            workers, chunk_size, batch_size, dispatch_mode=dispatch
        )
    if isinstance(backend, str):
        if backend == "serial":
            serial = SerialBackend()
            serial.batch_size = batch_size
            return serial
        if backend == "multiprocessing":
            return MultiprocessingBackend(
                max(workers, 1), chunk_size, batch_size, dispatch_mode=dispatch
            )
        if backend == "async":
            return AsyncBackend(max(workers, 1), dispatch_mode=dispatch)
        if backend == "sharded":
            raise ValueError(
                "the sharded backend needs shard parameters; pass a "
                "repro.sweep.ShardedBackend(shard_index, shard_count, "
                "spill_dir) instance (CLI: --backend sharded --shard I/N)"
            )
        raise ValueError(
            f"unknown backend {backend!r}; known: serial, multiprocessing, "
            "async, sharded"
        )
    if dispatch != "auto":
        backend.dispatch_mode = dispatch
    return backend


def run_sweep(
    grid: GridSpec | Iterable[CellSpec],
    workers: int = 1,
    trace_detail: TraceDetail = "lite",
    chunk_size: int | None = None,
    backend: SweepBackend | str | None = None,
    cache: CellStore | str | Path | None = None,
    probe: str | None = None,
    batch_size: int | None = None,
    dispatch: str = "auto",
    progress: ProgressCallback | None = None,
    journal: "SweepJournal | None" = None,
    cross_run: bool = False,
) -> SweepResult:
    """Run every cell of ``grid`` through a backend, via the cell cache.

    ``workers <= 1`` runs in-process; more workers distribute cells
    over a ``multiprocessing`` pool in chunks (``chunk_size`` defaults
    to ~4 chunks per worker).  ``backend`` overrides that default
    resolution with any :class:`~repro.sweep.backends.SweepBackend`
    (including :class:`~repro.sweep.backends.ShardedBackend` for
    multi-invocation sweeps) or one of the names ``"serial"`` /
    ``"multiprocessing"`` / ``"async"`` (the work-queue dispatcher
    with adaptive chunking).  ``cache`` -- a
    :class:`~repro.sweep.cache.CellStore` or a directory path -- is
    consulted before executing each cell and written through after.
    ``batch_size`` switches execution to in-worker batches: one
    dispatch runs that many cells through a shared round kernel, which
    amortizes process dispatch on grids of cheap cells (see
    :func:`run_cell_batch`); when an explicit backend *instance* is
    passed, the instance's own ``batch_size`` attribute governs
    batching instead.

    ``dispatch`` (one of :data:`~repro.sweep.backends.DISPATCH_MODES`)
    overrides the pool heuristic of pooled backends: ``serial`` forces
    in-process execution, ``pool`` forces worker processes even on one
    usable CPU (with a warning), and ``shm`` forces the zero-copy
    shared-memory cross-run pool (implying ``cross_run=True``; see
    :class:`~repro.sweep.backends.ShmCrossRunBackend`).  ``progress``
    is called as
    ``progress(result, done, total)`` for every result exactly once,
    as early as the backend's reporting granularity allows.
    ``journal`` -- a :class:`~repro.sweep.service.SweepJournal` --
    replays cells completed by an interrupted earlier invocation and
    records each fresh result as it lands, making the sweep resumable.
    ``cross_run`` routes execution through the cross-run vectorized
    engine instead: cells are partitioned by
    :attr:`~repro.sweep.grid.CellSpec.batch_key` and each compatible
    group advances as one stacked ``(R, n)`` state array (see
    :func:`run_cell_many`); it takes precedence over ``batch_size``
    batching and is reflected in the result's ``dispatch`` label.
    With ``workers > 1`` cross-run sweeps auto-select the
    work-stealing shared-memory backend, which degrades rung by rung
    (shm, pickle pool, in-process serial) without changing results.

    Results are identical for every backend, worker count, batch
    size, dispatch mode, journal and cache state, and sorted by cell
    key, so the returned :class:`SweepResult` depends only on the
    grid (``dispatch`` and ``cache_stats`` are equality-excluded
    machine properties).
    """
    if trace_detail not in ("full", "lite"):
        raise ValueError(
            f"trace_detail must be 'full' or 'lite', got {trace_detail!r}"
        )
    if workers < 0:
        raise ValueError(f"workers must be non-negative, got {workers}")
    if chunk_size is not None and chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    if batch_size is not None and batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    if dispatch not in DISPATCH_MODES:
        raise ValueError(
            f"dispatch must be one of {DISPATCH_MODES}, got {dispatch!r}"
        )
    if probe is not None:
        probe_spec = get_probe(probe)
        if probe_spec.requires_full and trace_detail != "full":
            raise ValueError(
                f"probe {probe!r} reads per-round message records and "
                f"needs trace_detail='full', got {trace_detail!r}"
            )
    cells = list(grid.cells()) if isinstance(grid, GridSpec) else list(grid)
    seen: set[tuple] = set()
    for cell in cells:
        if cell.key in seen:
            raise ValueError(f"duplicate grid cell: {cell.describe()}")
        seen.add(cell.key)

    if dispatch == "shm":
        cross_run = True
    resolved = _resolve_backend(
        backend, workers, chunk_size, batch_size, dispatch, cross_run
    )
    if journal is not None and isinstance(resolved, ShardedBackend):
        raise ValueError(
            "resume journals cover whole grids; sharded sweeps already "
            "resume through their spill directory"
        )
    store = CellStore(cache) if isinstance(cache, (str, Path)) else cache
    selected = resolved.select(cells)

    # Every result flows through the reporter exactly once: journal
    # replays and cache hits immediately, executed cells as early as
    # the backend's granularity allows (per cell serially, per chunk
    # from the async dispatcher), anything a backend could not emit
    # early (pool.map) after execution returns.
    total = len(selected)
    done = 0
    reported: set[tuple] = set()

    def report(result: CellResult) -> None:
        nonlocal done
        if result.key in reported:
            return
        reported.add(result.key)
        done += 1
        if journal is not None:
            journal.record(result)
        if progress is not None:
            progress(result, done, total)

    journaled: list[CellResult] = []
    if journal is not None:
        journaled = list(journal.open(selected, trace_detail, probe).values())
        for result in journaled:
            report(result)
    remaining = (
        selected
        if journal is None
        else [cell for cell in selected if cell.key not in reported]
    )

    batched = resolved.wants_batches
    resolved.on_result = report
    try:
        if store is None:
            runner = partial(run_cell, trace_detail=trace_detail, probe=probe)
            batch_runner = partial(
                run_cell_batch, trace_detail=trace_detail, probe=probe
            )
            many_runner = partial(
                run_cell_many, trace_detail=trace_detail, probe=probe
            )
            executed = (
                resolved.execute_many(remaining, many_runner)
                if cross_run
                else resolved.execute_batch(remaining, batch_runner)
                if batched
                else resolved.execute(remaining, runner)
            )
        else:
            runner = partial(
                _run_cell_cached,
                trace_detail=trace_detail,
                probe=probe,
                store=store,
            )
            batch_runner = partial(
                run_cell_batch,
                trace_detail=trace_detail,
                probe=probe,
                store=store,
            )
            many_runner = partial(
                run_cell_many,
                trace_detail=trace_detail,
                probe=probe,
                store=store,
            )
            hits: list[CellResult] = []
            missing: list[CellSpec] = []
            for cell in remaining:
                cached = store.load(cell, trace_detail, probe)
                store.record(cached is not None)
                if cached is not None:
                    hits.append(cached)
                else:
                    missing.append(cell)
            for result in hits:
                report(result)
            executed = hits + (
                resolved.execute_many(missing, many_runner)
                if cross_run
                else resolved.execute_batch(missing, batch_runner)
                if batched
                else resolved.execute(missing, runner)
            )
        for result in executed:
            report(result)
    finally:
        resolved.on_result = None
    final = resolved.finalize(journaled + executed, trace_detail, probe)
    if store is not None:
        final = replace(final, cache_stats=store.snapshot())
    return final

"""Chunked sweep execution: serial or across ``multiprocessing`` workers.

Each grid cell is executed by the module-level :func:`run_cell` (module
level so it pickles), which materializes the cell's config, runs the
simulator -- by default on the trace-lite fast path -- and condenses
the outcome into a :class:`CellResult` of plain primitives.

Determinism contract: a cell's result is a pure function of the cell.
Every stochastic component draws from ``derive_rng(seed, ...)`` streams
seeded by stable strings, so worker processes reproduce bit-identical
results regardless of start method, worker count, chunking or
scheduling order.  :func:`run_sweep` additionally sorts results by cell
key, making the aggregate independent of completion order.  The
determinism and equivalence test suites assert both properties.
"""

from __future__ import annotations

import math
import multiprocessing
from collections.abc import Iterable
from dataclasses import dataclass
from functools import partial

from ..core.specification import check_trace
from ..runtime.simulator import TraceDetail, run_simulation
from .aggregate import SweepResult
from .grid import CellSpec, GridSpec

__all__ = ["CellResult", "run_cell", "run_sweep"]


@dataclass(frozen=True)
class CellResult:
    """The condensed, picklable outcome of one grid cell.

    ``error`` is set (and every other payload field zeroed) when the
    cell could not run at all -- e.g. an explicit ``n`` below the
    model's resilience bound.
    """

    spec: CellSpec
    decisions: tuple[tuple[int, float], ...]
    rounds: int
    terminated: bool
    decision_diameter: float
    #: Non-faulty diameter trajectory: initial, then after each round.
    diameters: tuple[float, ...]
    termination_ok: bool
    agreement_ok: bool
    validity_ok: bool
    #: Per-round invariant verdicts; ``None`` when not evaluated
    #: (lite traces carry no message records to check them against).
    p1_ok: bool | None = None
    p2_ok: bool | None = None
    error: str | None = None

    @property
    def key(self) -> tuple:
        return self.spec.key

    @property
    def satisfied(self) -> bool:
        """The headline specification verdict of the cell's run."""
        return (
            self.error is None
            and self.termination_ok
            and self.agreement_ok
            and self.validity_ok
        )


def run_cell(cell: CellSpec, trace_detail: TraceDetail = "lite") -> CellResult:
    """Execute one cell and condense its outcome.

    Runs in worker processes during parallel sweeps; everything it
    touches must be importable and picklable.
    """
    try:
        config = cell.to_config()
    except (ValueError, KeyError) as exc:
        return CellResult(
            spec=cell,
            decisions=(),
            rounds=0,
            terminated=False,
            decision_diameter=0.0,
            diameters=(),
            termination_ok=False,
            agreement_ok=False,
            validity_ok=False,
            error=str(exc),
        )
    trace = run_simulation(config, trace_detail=trace_detail)
    verdict = check_trace(trace)
    return CellResult(
        spec=cell,
        decisions=tuple(sorted(trace.decisions.items())),
        rounds=trace.rounds_executed(),
        terminated=trace.terminated,
        decision_diameter=trace.decision_diameter(),
        diameters=tuple(trace.diameters()),
        termination_ok=verdict.termination.holds,
        agreement_ok=verdict.epsilon_agreement.holds,
        validity_ok=verdict.validity.holds,
        p1_ok=None if verdict.p1.skipped else verdict.p1.holds,
        p2_ok=None if verdict.p2.skipped else verdict.p2.holds,
    )


def run_sweep(
    grid: GridSpec | Iterable[CellSpec],
    workers: int = 1,
    trace_detail: TraceDetail = "lite",
    chunk_size: int | None = None,
) -> SweepResult:
    """Run every cell of ``grid``, serially or across worker processes.

    ``workers <= 1`` runs in-process.  With more workers the cells are
    distributed over a ``multiprocessing`` pool in chunks
    (``chunk_size`` defaults to ~4 chunks per worker, balancing
    scheduling overhead against stragglers).  Results are identical in
    both modes and sorted by cell key, so the returned
    :class:`SweepResult` is independent of the execution strategy.
    """
    if trace_detail not in ("full", "lite"):
        raise ValueError(
            f"trace_detail must be 'full' or 'lite', got {trace_detail!r}"
        )
    if workers < 0:
        raise ValueError(f"workers must be non-negative, got {workers}")
    cells = list(grid.cells()) if isinstance(grid, GridSpec) else list(grid)
    seen: set[tuple] = set()
    for cell in cells:
        if cell.key in seen:
            raise ValueError(f"duplicate grid cell: {cell.describe()}")
        seen.add(cell.key)
    runner = partial(run_cell, trace_detail=trace_detail)
    if workers <= 1 or len(cells) <= 1:
        results = [runner(cell) for cell in cells]
    else:
        if chunk_size is None:
            chunk_size = max(1, math.ceil(len(cells) / (workers * 4)))
        with multiprocessing.Pool(processes=workers) as pool:
            results = pool.map(runner, cells, chunksize=chunk_size)
    return SweepResult(
        cells=tuple(sorted(results, key=lambda result: result.key)),
        trace_detail=trace_detail,
        workers=max(1, workers),
    )

"""Sweep orchestration: cells in, cached/backed execution, result out.

Each grid cell is executed by the module-level :func:`run_cell` (module
level so it pickles), which materializes the cell's config through its
scenario, runs the simulator -- by default on the trace-lite fast path
-- and condenses the outcome into a :class:`CellResult` of plain
primitives, optionally augmented by a named probe.

:func:`run_sweep` itself no longer knows how cells run: execution is
delegated to a pluggable :class:`~repro.sweep.backends.SweepBackend`
(serial, multiprocessing pool, or deterministic shards for fanning a
grid across hosts), and every backend consults an optional
content-addressed :class:`~repro.sweep.cache.CellStore` before
executing a cell and writes through after.

Determinism contract: a cell's result is a pure function of the cell.
Every stochastic component draws from ``derive_rng(seed, ...)`` streams
seeded by stable strings, so worker processes reproduce bit-identical
results regardless of start method, worker count, chunking, scheduling
order, shard assignment or cache state.  :func:`run_sweep` additionally
sorts results by cell key, making the aggregate independent of the
execution strategy.  The determinism, backend and cache test suites
assert these properties.
"""

from __future__ import annotations

import json
import time
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field, replace
from functools import partial
from pathlib import Path
from typing import TYPE_CHECKING

from ..core.specification import check_trace
from ..runtime.kernel import RoundKernel
from ..telemetry import (
    DEFAULT_SIZE_EDGES,
    KernelSampler,
    TelemetryConfig,
    activate,
    count,
    current_config,
    deactivate,
    dump_flight,
    get_registry,
    metrics_enabled,
    observe,
    parse_dispatch_label,
    record_event,
    snapshot_delta,
    trace_span,
    tracing_active,
)
from ..runtime.simulator import (
    RunBatchOut,
    TraceDetail,
    run_simulation,
    simulate_many,
)
from .aggregate import SweepResult
from .backends import (
    DISPATCH_MODES,
    AsyncBackend,
    MultiprocessingBackend,
    SerialBackend,
    ShardedBackend,
    ShmCrossRunBackend,
    SweepBackend,
)
from .cache import CellStore
from .grid import CellSpec, GridSpec
from .probes import get_probe

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a module cycle
    from .service import SweepJournal

__all__ = [
    "CellResult",
    "run_cell",
    "run_cell_batch",
    "run_cell_many",
    "run_sweep",
]

#: ``progress`` callback signature: ``(result, done, total)`` with
#: ``done`` counting every result observed so far (journal replays and
#: cache hits included) out of ``total`` cells this invocation owns.
ProgressCallback = Callable[["CellResult", int, int], None]


@dataclass(frozen=True)
class CellResult:
    """The condensed, picklable outcome of one grid cell.

    ``error`` is set (and every other payload field zeroed) when the
    cell could not run -- e.g. an explicit ``n`` below the model's
    resilience bound, or a run aborted by a family's own runtime
    requirement (the witness family refuses mid-run when an adversary
    starves its phase-boundary fold on a minimum-degree graph).
    """

    spec: CellSpec
    decisions: tuple[tuple[int, float], ...]
    rounds: int
    terminated: bool
    decision_diameter: float
    #: Non-faulty diameter trajectory: initial, then after each round.
    diameters: tuple[float, ...]
    termination_ok: bool
    agreement_ok: bool
    validity_ok: bool
    #: Per-round invariant verdicts; ``None`` when not evaluated
    #: (lite traces carry no message records to check them against).
    p1_ok: bool | None = None
    p2_ok: bool | None = None
    #: Probe output: ``(name, value)`` pairs of primitives (see
    #: :mod:`repro.sweep.probes`); empty when no probe ran.
    extras: tuple[tuple[str, object], ...] = ()
    error: str | None = None
    #: Observed compute seconds of this cell (a per-run share of its
    #: group for cross-run execution); ``None`` for cache/journal
    #: replays.  A machine property: excluded from equality and from
    #: the cache serialization, consumed by
    #: :meth:`~repro.sweep.backends.CostModel.fit` via the journal.
    elapsed: float | None = field(default=None, compare=False, repr=False)
    #: Cell-scoped telemetry counters (``(name, value)`` pairs, e.g.
    #: sampled kernel phase timings) recorded where the cell actually
    #: ran and merged into the parent's metrics registry by
    #: :func:`run_sweep`.  A machine property like ``elapsed``:
    #: compare-excluded, absent from the cache serialization, empty
    #: unless a telemetry session is active.
    metrics: tuple[tuple[str, float], ...] = field(
        default=(), compare=False, repr=False
    )

    @property
    def key(self) -> tuple:
        return self.spec.key

    @property
    def satisfied(self) -> bool:
        """The headline specification verdict of the cell's run."""
        return (
            self.error is None
            and self.termination_ok
            and self.agreement_ok
            and self.validity_ok
        )

    def extras_dict(self) -> dict[str, object]:
        """The probe output as a plain dictionary."""
        return dict(self.extras)


def _error_cell(cell: CellSpec, exc: Exception) -> CellResult:
    """The canonical error verdict of a cell that could not run.

    Under an active tracing session the conversion also lands in the
    trace and triggers a flight-recorder dump, so the events leading up
    to the failure survive next to the error string.
    """
    if tracing_active():
        record_event("cell.error", cell=cell.describe(), error=str(exc))
        dump_flight("error-cell")
    return CellResult(
        spec=cell,
        decisions=(),
        rounds=0,
        terminated=False,
        decision_diameter=0.0,
        diameters=(),
        termination_ok=False,
        agreement_ok=False,
        validity_ok=False,
        error=str(exc),
    )


def _condense_trace(cell: CellSpec, trace, probe_spec) -> CellResult:
    """Condense one finished trace into its :class:`CellResult`.

    Shared by the per-cell and cross-run runners so both condense
    identically (checker verdicts, probe extras, sorted decisions).
    """
    verdict = check_trace(trace)
    extras = tuple(probe_spec.extract(trace)) if probe_spec is not None else ()
    return CellResult(
        spec=cell,
        decisions=tuple(sorted(trace.decisions.items())),
        rounds=trace.rounds_executed(),
        terminated=trace.terminated,
        decision_diameter=trace.decision_diameter(),
        diameters=tuple(trace.diameters()),
        termination_ok=verdict.termination.holds,
        agreement_ok=verdict.epsilon_agreement.holds,
        validity_ok=verdict.validity.holds,
        p1_ok=None if verdict.p1.skipped else verdict.p1.holds,
        p2_ok=None if verdict.p2.skipped else verdict.p2.holds,
        extras=extras,
    )


def _ensure_sampler(kernel: RoundKernel) -> KernelSampler:
    """Attach (or reuse) a kernel phase sampler for the active session."""
    sampler = kernel.telemetry
    if sampler is None:
        config = current_config()
        every = config.sample_every if config is not None else 32
        sampler = kernel.telemetry = KernelSampler(every)
    return sampler


def run_cell(
    cell: CellSpec,
    trace_detail: TraceDetail = "lite",
    probe: str | None = None,
    kernel: RoundKernel | None = None,
    telemetry: TelemetryConfig | None = None,
) -> CellResult:
    """Execute one cell and condense its outcome.

    Runs in worker processes during parallel sweeps; everything it
    touches must be importable and picklable.  ``probe`` names a
    registered :class:`~repro.sweep.probes.Probe` whose output lands in
    ``CellResult.extras``.  ``kernel`` optionally shares one
    :class:`~repro.runtime.kernel.RoundKernel` across the cells of a
    batch (results are identical with or without it).  ``telemetry``
    activates the run's tracing session in whichever process this
    lands; the drained kernel sample counters travel back on
    ``CellResult.metrics``.
    """
    if telemetry is not None:
        activate(telemetry)
    probe_spec = get_probe(probe) if probe is not None else None
    sampler = None
    if tracing_active():
        if kernel is None:
            kernel = RoundKernel()
        sampler = _ensure_sampler(kernel)
    started = time.perf_counter()
    with trace_span("sweep.cell", cell=cell.describe()) as span:
        result: CellResult | None = None
        try:
            config = cell.to_config()
        except (ValueError, KeyError) as exc:
            result = _error_cell(cell, exc)
        if result is None:
            try:
                trace = run_simulation(
                    config, trace_detail=trace_detail, kernel=kernel
                )
            except ValueError as exc:
                # A family's runtime requirement rejecting the run
                # mid-flight is a per-cell verdict, not grounds to kill
                # a whole sweep.
                result = _error_cell(cell, exc)
            else:
                result = replace(
                    _condense_trace(cell, trace, probe_spec),
                    elapsed=time.perf_counter() - started,
                )
                span.set("rounds", result.rounds)
    if sampler is not None:
        drained = sampler.drain()
        if drained:
            result = replace(result, metrics=drained)
    return result


def _run_cell_cached(
    cell: CellSpec,
    trace_detail: TraceDetail = "lite",
    probe: str | None = None,
    store: CellStore | None = None,
    kernel: RoundKernel | None = None,
    telemetry: TelemetryConfig | None = None,
) -> CellResult:
    """Cache-through cell runner (module level so it pickles).

    The double-check against the store matters: workers of concurrent
    shard invocations may have produced the cell since the parent
    filtered its misses, and writing through here (not in the parent)
    is what makes interrupted sweeps resumable.
    """
    cached = store.load(cell, trace_detail, probe)
    if cached is not None:
        return cached
    result = run_cell(
        cell,
        trace_detail=trace_detail,
        probe=probe,
        kernel=kernel,
        telemetry=telemetry,
    )
    store.save(result, trace_detail, probe)
    return result


def run_cell_batch(
    cells: list[CellSpec],
    trace_detail: TraceDetail = "lite",
    probe: str | None = None,
    store: CellStore | None = None,
    telemetry: TelemetryConfig | None = None,
) -> list[CellResult]:
    """Execute a batch of cells in-process through one shared kernel.

    The unit of work of batched backends (module level so it pickles):
    one dispatch runs many cells back to back, reusing the round
    kernel's scratch buffers and amortizing process dispatch overhead
    over the whole batch.  Results are bit-identical to per-cell
    execution -- the kernel carries no simulation state between cells.
    """
    if telemetry is not None:
        activate(telemetry)
    kernel = RoundKernel()
    if store is None:
        return [
            run_cell(cell, trace_detail=trace_detail, probe=probe, kernel=kernel)
            for cell in cells
        ]
    return [
        _run_cell_cached(
            cell,
            trace_detail=trace_detail,
            probe=probe,
            store=store,
            kernel=kernel,
        )
        for cell in cells
    ]


def run_cell_many(
    cells: list[CellSpec],
    trace_detail: TraceDetail = "lite",
    probe: str | None = None,
    store: CellStore | None = None,
    out: RunBatchOut | None = None,
    telemetry: TelemetryConfig | None = None,
) -> list[CellResult]:
    """Execute a group of cells through the cross-run vectorized engine.

    The unit of work of cross-run sweeps (module level so it pickles):
    the cells are partitioned by :attr:`CellSpec.batch_key` and each
    compatible group is handed to
    :func:`repro.runtime.simulator.simulate_many`, which stacks the
    group's runs into one ``(R, n)`` state array and advances them in
    lockstep -- one sort/fold pass per round for the whole group.
    Results are bit-identical to :func:`run_cell` execution and come
    back in input order; groups the stacked engine cannot take (full
    traces, stateful families, partial topologies) fall back to the
    per-run paths inside ``simulate_many`` itself.

    ``out`` -- a :class:`~repro.runtime.simulator.RunBatchOut`, slot
    ``i`` for ``cells[i]`` -- additionally lands each successful run's
    payload in the caller's stacked buffer (the shared-memory path of
    :class:`~repro.sweep.backends.ShmCrossRunBackend`); cells that
    never produce a trace here (config errors, store hits, per-cell
    fallback reruns) leave their slot unwritten, which ``out.written``
    records.
    """
    if telemetry is not None:
        activate(telemetry)
    kernel = RoundKernel()
    sampler = _ensure_sampler(kernel) if tracing_active() else None
    probe_spec = get_probe(probe) if probe is not None else None
    results: list[CellResult | None] = [None] * len(cells)
    pending: list[int] = []
    for idx, cell in enumerate(cells):
        if store is not None:
            # Same double-check as _run_cell_cached: concurrent shard
            # invocations may have produced the cell since the parent
            # filtered its misses.
            cached = store.load(cell, trace_detail, probe)
            if cached is not None:
                results[idx] = cached
                continue
        pending.append(idx)
    rescued: set[int] = set()
    groups: dict[tuple, list[int]] = {}
    for idx in pending:
        groups.setdefault(cells[idx].batch_key, []).append(idx)
    for indices in groups.values():
        configs = []
        runnable: list[int] = []
        for idx in indices:
            try:
                configs.append(cells[idx].to_config())
            except (ValueError, KeyError) as exc:
                results[idx] = _error_cell(cells[idx], exc)
            else:
                runnable.append(idx)
        if not runnable:
            continue
        started = time.perf_counter()
        group_span = trace_span("sweep.cell.group", runs=len(runnable))
        with group_span:
            try:
                traces = simulate_many(
                    configs,
                    trace_detail=trace_detail,
                    kernel=kernel,
                    out=out,
                    out_slots=runnable,
                )
            except ValueError:
                traces = None
        if traces is None:
            # A family's runtime requirement rejected some run of the
            # group mid-flight.  Rerun the group per-cell so the error
            # lands on exactly the cell that earned it -- but serve any
            # member a concurrent invocation has cached since the
            # stacked attempt started instead of recomputing it.
            for idx in runnable:
                if store is not None:
                    cached = store.load(cells[idx], trace_detail, probe)
                    store.record(cached is not None)
                    if cached is not None:
                        results[idx] = cached
                        rescued.add(idx)
                        continue
                results[idx] = run_cell(
                    cells[idx],
                    trace_detail=trace_detail,
                    probe=probe,
                    kernel=kernel,
                )
            continue
        # Each run's share of the group's one stacked pass: the
        # per-cell number CostModel.fit consumes from the journal.
        share = (time.perf_counter() - started) / len(runnable)
        for idx, trace in zip(runnable, traces):
            condensed = _condense_trace(cells[idx], trace, probe_spec)
            results[idx] = replace(condensed, elapsed=share)
        if sampler is not None:
            # Kernel counters of one stacked pass are group-scoped;
            # ship them on the group's first result (the parent merge
            # is additive, so attribution within the group is moot).
            drained = sampler.drain()
            if drained:
                first = runnable[0]
                results[first] = replace(results[first], metrics=drained)
    if store is not None:
        for idx in pending:
            if idx not in rescued:
                store.save(results[idx], trace_detail, probe)
    return results


def _resolve_backend(
    backend: SweepBackend | str | None,
    workers: int,
    chunk_size: int | None,
    batch_size: int | None = None,
    dispatch: str = "auto",
    cross_run: bool = False,
) -> SweepBackend:
    if backend is None:
        if dispatch == "shm":
            # Forcing the shared-memory rung needs the stealing
            # backend at any worker count; _pool_decision owns the
            # one-CPU warning.
            return ShmCrossRunBackend(max(workers, 1), dispatch_mode=dispatch)
        if cross_run and workers > 1 and dispatch != "serial":
            # Parallel cross-run sweeps default to the zero-copy
            # stealing backend; it degrades rung by rung (pickle pool,
            # in-process serial) wherever shm or the pool cannot win.
            return ShmCrossRunBackend(workers, dispatch_mode=dispatch)
        if dispatch == "pool" and workers <= 1:
            # Forcing a pool needs a pool-capable backend even at the
            # default worker count; _pool_decision owns the warning.
            return MultiprocessingBackend(
                max(workers, 1), chunk_size, batch_size, dispatch_mode=dispatch
            )
        if workers <= 1 and batch_size is None:
            return SerialBackend()
        if workers <= 1:
            serial = SerialBackend()
            serial.batch_size = batch_size
            return serial
        return MultiprocessingBackend(
            workers, chunk_size, batch_size, dispatch_mode=dispatch
        )
    if isinstance(backend, str):
        if backend == "serial":
            serial = SerialBackend()
            serial.batch_size = batch_size
            return serial
        if backend == "multiprocessing":
            return MultiprocessingBackend(
                max(workers, 1), chunk_size, batch_size, dispatch_mode=dispatch
            )
        if backend == "async":
            return AsyncBackend(max(workers, 1), dispatch_mode=dispatch)
        if backend == "sharded":
            raise ValueError(
                "the sharded backend needs shard parameters; pass a "
                "repro.sweep.ShardedBackend(shard_index, shard_count, "
                "spill_dir) instance (CLI: --backend sharded --shard I/N)"
            )
        raise ValueError(
            f"unknown backend {backend!r}; known: serial, multiprocessing, "
            "async, sharded"
        )
    if dispatch != "auto":
        backend.dispatch_mode = dispatch
    return backend


def run_sweep(
    grid: GridSpec | Iterable[CellSpec],
    workers: int = 1,
    trace_detail: TraceDetail = "lite",
    chunk_size: int | None = None,
    backend: SweepBackend | str | None = None,
    cache: CellStore | str | Path | None = None,
    probe: str | None = None,
    batch_size: int | None = None,
    dispatch: str = "auto",
    progress: ProgressCallback | None = None,
    journal: "SweepJournal | None" = None,
    cross_run: bool = False,
    telemetry: TelemetryConfig | str | Path | None = None,
) -> SweepResult:
    """Run every cell of ``grid`` through a backend, via the cell cache.

    ``workers <= 1`` runs in-process; more workers distribute cells
    over a ``multiprocessing`` pool in chunks (``chunk_size`` defaults
    to ~4 chunks per worker).  ``backend`` overrides that default
    resolution with any :class:`~repro.sweep.backends.SweepBackend`
    (including :class:`~repro.sweep.backends.ShardedBackend` for
    multi-invocation sweeps) or one of the names ``"serial"`` /
    ``"multiprocessing"`` / ``"async"`` (the work-queue dispatcher
    with adaptive chunking).  ``cache`` -- a
    :class:`~repro.sweep.cache.CellStore` or a directory path -- is
    consulted before executing each cell and written through after.
    ``batch_size`` switches execution to in-worker batches: one
    dispatch runs that many cells through a shared round kernel, which
    amortizes process dispatch on grids of cheap cells (see
    :func:`run_cell_batch`); when an explicit backend *instance* is
    passed, the instance's own ``batch_size`` attribute governs
    batching instead.

    ``dispatch`` (one of :data:`~repro.sweep.backends.DISPATCH_MODES`)
    overrides the pool heuristic of pooled backends: ``serial`` forces
    in-process execution, ``pool`` forces worker processes even on one
    usable CPU (with a warning), and ``shm`` forces the zero-copy
    shared-memory cross-run pool (implying ``cross_run=True``; see
    :class:`~repro.sweep.backends.ShmCrossRunBackend`).  ``progress``
    is called as
    ``progress(result, done, total)`` for every result exactly once,
    as early as the backend's reporting granularity allows.
    ``journal`` -- a :class:`~repro.sweep.service.SweepJournal` --
    replays cells completed by an interrupted earlier invocation and
    records each fresh result as it lands, making the sweep resumable.
    ``cross_run`` routes execution through the cross-run vectorized
    engine instead: cells are partitioned by
    :attr:`~repro.sweep.grid.CellSpec.batch_key` and each compatible
    group advances as one stacked ``(R, n)`` state array (see
    :func:`run_cell_many`); it takes precedence over ``batch_size``
    batching and is reflected in the result's ``dispatch`` label.
    With ``workers > 1`` cross-run sweeps auto-select the
    work-stealing shared-memory backend, which degrades rung by rung
    (shm, pickle pool, in-process serial) without changing results.

    Results are identical for every backend, worker count, batch
    size, dispatch mode, journal and cache state, and sorted by cell
    key, so the returned :class:`SweepResult` depends only on the
    grid (``dispatch`` and ``cache_stats`` are equality-excluded
    machine properties).

    ``telemetry`` -- a directory path or a
    :class:`~repro.telemetry.TelemetryConfig` -- activates a tracing
    session for the sweep: JSON-lines span traces (one
    ``trace-<pid>.jsonl`` per participating process), sampled kernel
    phase timings shipped back on ``CellResult.metrics``, a
    flight-recorder dump on every error cell or sweep crash, and a
    ``metrics.json`` snapshot of the sweep's counters on completion.
    Telemetry never changes results: every field it adds is
    compare-excluded like ``dispatch``/``elapsed``.
    """
    tconfig: TelemetryConfig | None
    own_session = False
    if telemetry is None:
        # Inherit an already-active session (a serve daemon configures
        # one for all the sweeps it hosts).
        tconfig = current_config()
    elif isinstance(telemetry, TelemetryConfig):
        tconfig = telemetry
        own_session = activate(tconfig)
    else:
        tconfig = TelemetryConfig(directory=str(telemetry))
        own_session = activate(tconfig)
    metrics_before = get_registry().snapshot() if own_session else None
    try:
        with trace_span("sweep.run", workers=workers) as span:
            final = _run_sweep(
                grid, workers, trace_detail, chunk_size, backend, cache,
                probe, batch_size, dispatch, progress, journal, cross_run,
                tconfig,
            )
            span.set("cells", len(final.cells))
            span.set("dispatch", final.dispatch)
        return final
    except BaseException:
        # A propagated exception (worker crash, pool failure) is what
        # the flight recorder exists for: dump the tail of the story
        # before unwinding.  Per-cell errors never reach here -- they
        # were converted (and dumped) by _error_cell.
        if tconfig is not None:
            dump_flight("sweep.crash")
        raise
    finally:
        if own_session:
            _write_session_metrics(tconfig.directory, metrics_before)
            deactivate()


def _write_session_metrics(directory: str, before: dict) -> None:
    """Write the sweep-scoped ``metrics.json`` delta of a session."""
    payload = snapshot_delta(before, get_registry().snapshot())
    path = Path(directory) / "metrics.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))


def _record_cell_metrics(result: CellResult) -> None:
    """Fold one observed result into the process metrics registry."""
    if not metrics_enabled():
        return
    count("sweep.cells.done")
    if result.error is not None:
        count("sweep.cells.error")
    if result.elapsed is not None:
        observe("sweep.cell.seconds", result.elapsed)
        observe(f"sweep.cell.seconds.{result.spec.family}", result.elapsed)
    observe("sweep.cell.rounds", float(result.rounds), DEFAULT_SIZE_EDGES)
    if result.metrics:
        registry = get_registry()
        for name, value in result.metrics:
            registry.inc(name, value)


def _record_sweep_metrics(
    resolved: SweepBackend, final: SweepResult, cache_before
) -> None:
    """Fold a finished sweep's dispatch decision into the registry."""
    if not metrics_enabled():
        return
    count("sweep.runs")
    try:
        record = parse_dispatch_label(final.dispatch)
    except ValueError:
        # Third-party backends may label dispatches however they like.
        count("sweep.dispatch.unparsed")
        return
    count(f"sweep.dispatch.mode.{record.mode}")
    if record.pooled:
        count("sweep.dispatch.pooled")
    if record.asynchronous:
        count("sweep.dispatch.async")
    if record.cross_run:
        count("sweep.dispatch.cross_run")
    if record.sharded:
        count("sweep.dispatch.sharded")
    if record.forced:
        count("sweep.dispatch.forced")
    if record.fallback:
        count("sweep.dispatch.auto_fallback")
    if record.rung is not None:
        count(f"sweep.shm.rung.{record.rung}")
    if record.steals is not None:
        count("sweep.shm.steals", record.steals)
    stats = getattr(resolved, "last_arena_stats", None)
    if stats is not None:
        count("sweep.shm.results", stats.shm_results)
        count("sweep.shm.pickle_results", stats.pickle_results)
        count("sweep.shm.bytes", stats.shm_bytes)
        count("sweep.shm.blocks", stats.blocks)
        count("sweep.shm.unlinked", stats.unlinked)
    if final.cache_stats is not None and cache_before is not None:
        # The store may be shared across sweeps (serve daemon): count
        # only this sweep's traffic.
        count("sweep.cache.hits", final.cache_stats.hits - cache_before.hits)
        count(
            "sweep.cache.misses",
            final.cache_stats.misses - cache_before.misses,
        )
        count(
            "sweep.cache.bytes_read",
            final.cache_stats.bytes_read - cache_before.bytes_read,
        )
        count(
            "sweep.cache.bytes_written",
            final.cache_stats.bytes_written - cache_before.bytes_written,
        )


def _run_sweep(
    grid: GridSpec | Iterable[CellSpec],
    workers: int,
    trace_detail: TraceDetail,
    chunk_size: int | None,
    backend: SweepBackend | str | None,
    cache: CellStore | str | Path | None,
    probe: str | None,
    batch_size: int | None,
    dispatch: str,
    progress: ProgressCallback | None,
    journal: "SweepJournal | None",
    cross_run: bool,
    tconfig: TelemetryConfig | None,
) -> SweepResult:
    """The body of :func:`run_sweep`, inside its telemetry envelope."""
    if trace_detail not in ("full", "lite"):
        raise ValueError(
            f"trace_detail must be 'full' or 'lite', got {trace_detail!r}"
        )
    if workers < 0:
        raise ValueError(f"workers must be non-negative, got {workers}")
    if chunk_size is not None and chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    if batch_size is not None and batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    if dispatch not in DISPATCH_MODES:
        raise ValueError(
            f"dispatch must be one of {DISPATCH_MODES}, got {dispatch!r}"
        )
    if probe is not None:
        probe_spec = get_probe(probe)
        if probe_spec.requires_full and trace_detail != "full":
            raise ValueError(
                f"probe {probe!r} reads per-round message records and "
                f"needs trace_detail='full', got {trace_detail!r}"
            )
    cells = list(grid.cells()) if isinstance(grid, GridSpec) else list(grid)
    seen: set[tuple] = set()
    for cell in cells:
        if cell.key in seen:
            raise ValueError(f"duplicate grid cell: {cell.describe()}")
        seen.add(cell.key)

    if dispatch == "shm":
        cross_run = True
    resolved = _resolve_backend(
        backend, workers, chunk_size, batch_size, dispatch, cross_run
    )
    if journal is not None and isinstance(resolved, ShardedBackend):
        raise ValueError(
            "resume journals cover whole grids; sharded sweeps already "
            "resume through their spill directory"
        )
    store = CellStore(cache) if isinstance(cache, (str, Path)) else cache
    # Stores outlive sweeps (the serve daemon shares one across
    # requests), so registry counting below works on the delta.
    cache_before = store.snapshot() if store is not None else None
    selected = resolved.select(cells)

    # Every result flows through the reporter exactly once: journal
    # replays and cache hits immediately, executed cells as early as
    # the backend's granularity allows (per cell serially, per chunk
    # from the async dispatcher), anything a backend could not emit
    # early (pool.map) after execution returns.
    total = len(selected)
    done = 0
    reported: set[tuple] = set()

    def report(result: CellResult) -> None:
        nonlocal done
        if result.key in reported:
            return
        reported.add(result.key)
        done += 1
        _record_cell_metrics(result)
        if journal is not None:
            journal.record(result)
        if progress is not None:
            progress(result, done, total)

    journaled: list[CellResult] = []
    if journal is not None:
        journaled = list(journal.open(selected, trace_detail, probe).values())
        for result in journaled:
            report(result)
    remaining = (
        selected
        if journal is None
        else [cell for cell in selected if cell.key not in reported]
    )

    batched = resolved.wants_batches
    resolved.on_result = report
    # Manual span management spares the whole dispatch block a
    # re-indent; the label lands as an attribute once execution is
    # done.  A propagated exception leaves through run_sweep's
    # flight-recorder dump.
    dispatch_span = trace_span(
        "sweep.dispatch", backend=type(resolved).__name__
    )
    dispatch_span.__enter__()
    try:
        if store is None:
            runner = partial(
                run_cell,
                trace_detail=trace_detail,
                probe=probe,
                telemetry=tconfig,
            )
            batch_runner = partial(
                run_cell_batch,
                trace_detail=trace_detail,
                probe=probe,
                telemetry=tconfig,
            )
            many_runner = partial(
                run_cell_many,
                trace_detail=trace_detail,
                probe=probe,
                telemetry=tconfig,
            )
            executed = (
                resolved.execute_many(remaining, many_runner)
                if cross_run
                else resolved.execute_batch(remaining, batch_runner)
                if batched
                else resolved.execute(remaining, runner)
            )
        else:
            runner = partial(
                _run_cell_cached,
                trace_detail=trace_detail,
                probe=probe,
                store=store,
                telemetry=tconfig,
            )
            batch_runner = partial(
                run_cell_batch,
                trace_detail=trace_detail,
                probe=probe,
                store=store,
                telemetry=tconfig,
            )
            many_runner = partial(
                run_cell_many,
                trace_detail=trace_detail,
                probe=probe,
                store=store,
                telemetry=tconfig,
            )
            hits: list[CellResult] = []
            missing: list[CellSpec] = []
            for cell in remaining:
                cached = store.load(cell, trace_detail, probe)
                store.record(cached is not None)
                if cached is not None:
                    hits.append(cached)
                else:
                    missing.append(cell)
            for result in hits:
                report(result)
            executed = hits + (
                resolved.execute_many(missing, many_runner)
                if cross_run
                else resolved.execute_batch(missing, batch_runner)
                if batched
                else resolved.execute(missing, runner)
            )
        for result in executed:
            report(result)
    finally:
        dispatch_span.set("label", resolved.dispatch)
        dispatch_span.__exit__(None, None, None)
        resolved.on_result = None
    final = resolved.finalize(journaled + executed, trace_detail, probe)
    if store is not None:
        final = replace(final, cache_stats=store.snapshot())
    _record_sweep_metrics(resolved, final, cache_before)
    return final

"""Deterministic, seeded topology generators and the spec grammar.

Sweep cells and configs carry the communication graph as a short *spec
string* so they stay primitive, hashable and picklable; this module is
the resolver from ``(spec, n)`` to a concrete :class:`Topology`.  Every
generator is a pure function of its arguments -- the random-regular
generator derives all randomness from its explicit seed -- so a cell's
graph is identical on every worker, shard and host.

Spec grammar (no commas or spaces, so specs survive CLI axis lists)::

    complete                   the paper's full mesh (the default)
    ring                       ring lattice, k=1 (a cycle)
    ring:K                     ring lattice: i joined to i±1..i±K (mod n)
    torus                      2d torus, auto-factored rows x cols
    torus:RxC                  2d torus with explicit side lengths
    random-regular:D           seeded D-regular graph (seed 0)
    random-regular:D:SEED      seeded D-regular graph

Explicit edge lists do not travel through specs (a file's content is
not a pure function of its name); load them programmatically with
:meth:`Topology.from_edges` / :meth:`Topology.load_edge_list`.
"""

from __future__ import annotations

import random
from functools import lru_cache

from .graph import Topology

__all__ = [
    "DEFAULT_TOPOLOGY",
    "complete",
    "ring_lattice",
    "torus",
    "random_regular",
    "topology_from_spec",
    "topology_names",
]

#: The spec every config and cell runs unless told otherwise: the
#: source paper's fully-connected network.  Cache keys and describe()
#: strings omit it, so pre-topology encodings stay byte-identical.
DEFAULT_TOPOLOGY = "complete"


def complete(n: int) -> Topology:
    """The paper's network: every process adjacent to every other."""
    everyone = frozenset(range(n))
    return Topology(
        n=n,
        spec="complete",
        neighbor_sets=tuple(everyone - {pid} for pid in range(n)),
    )


def ring_lattice(n: int, k: int = 1) -> Topology:
    """A ring lattice: process ``i`` joined to ``i±1 .. i±k`` (mod n).

    ``k=1`` is the plain cycle; growing ``k`` interpolates towards the
    complete graph (the 2k-regular circulant graph).
    """
    if k < 1:
        raise ValueError(f"ring lattice needs k >= 1, got k={k}")
    if n < 2:
        raise ValueError(f"ring lattice needs n >= 2, got n={n}")
    hoods = []
    for pid in range(n):
        hood = set()
        for step in range(1, k + 1):
            hood.add((pid + step) % n)
            hood.add((pid - step) % n)
        hood.discard(pid)
        hoods.append(frozenset(hood))
    return Topology(n=n, spec=f"ring:{k}", neighbor_sets=tuple(hoods))


def _torus_factor(n: int) -> tuple[int, int]:
    """The most-square ``rows x cols`` factorization of ``n``."""
    best = None
    rows = 2
    while rows * rows <= n:
        if n % rows == 0:
            best = rows
        rows += 1
    if best is None:
        raise ValueError(
            f"torus needs n = rows x cols with both sides >= 2; n={n} has "
            "no such factorization (pass an explicit 'torus:RxC' spec or a "
            "composite n)"
        )
    return best, n // best


def torus(n: int, rows: int | None = None, cols: int | None = None) -> Topology:
    """A 2d torus (grid with wraparound): 4-regular for sides >= 3.

    With no explicit sides the most-square factorization of ``n`` is
    used; prime ``n`` is rejected with guidance.
    """
    if rows is None and cols is None:
        rows, cols = _torus_factor(n)
    elif rows is None or cols is None:
        raise ValueError("torus: pass both rows and cols, or neither")
    if rows * cols != n:
        raise ValueError(f"torus: {rows}x{cols} does not cover n={n}")
    if rows < 2 or cols < 2:
        raise ValueError(
            f"torus sides must be >= 2, got {rows}x{cols} (a 1-wide torus "
            "is a ring; use 'ring')"
        )
    hoods: list[set[int]] = [set() for _ in range(n)]
    for pid in range(n):
        row, col = divmod(pid, cols)
        for dr, dc in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            neighbor = ((row + dr) % rows) * cols + (col + dc) % cols
            if neighbor != pid:
                hoods[pid].add(neighbor)
    return Topology(
        n=n,
        spec=f"torus:{rows}x{cols}",
        neighbor_sets=tuple(frozenset(h) for h in hoods),
    )


#: Full restarts before the stub-matching generator gives up; each
#: restart succeeds with high probability (failed pairings re-match
#: only the colliding stubs), so this is effectively unreachable for
#: feasible parameters.
_REGULAR_ATTEMPTS = 100


def _pair_stubs(n: int, d: int, rng: random.Random) -> set[tuple[int, int]] | None:
    """One attempt of the stub-matching model for a simple d-regular graph.

    The classic configuration model rejects the *whole* pairing on any
    self-loop or parallel edge, which almost never succeeds beyond tiny
    degrees; this variant (the standard practical algorithm) re-shuffles
    only the stubs whose pairs collided, restarting from scratch only
    when the leftover stubs provably cannot be matched.
    """
    edges: set[tuple[int, int]] = set()
    stubs = [pid for pid in range(n) for _ in range(d)]
    while stubs:
        rng.shuffle(stubs)
        leftover: dict[int, int] = {}
        stub_iter = iter(stubs)
        for u, v in zip(stub_iter, stub_iter):
            if u > v:
                u, v = v, u
            if u != v and (u, v) not in edges:
                edges.add((u, v))
            else:
                leftover[u] = leftover.get(u, 0) + 1
                leftover[v] = leftover.get(v, 0) + 1
        if not leftover:
            return edges
        # Feasibility: some unjoined pair of leftover stub owners must
        # exist, else no amount of re-shuffling can finish.
        owners = sorted(leftover)
        if not any(
            u != v and (min(u, v), max(u, v)) not in edges
            for i, u in enumerate(owners)
            for v in owners[i:]
        ):
            return None
        stubs = [node for node, count in leftover.items() for _ in range(count)]
    return edges


def random_regular(n: int, d: int, seed: int = 0) -> Topology:
    """A seeded random d-regular simple graph (stub matching).

    Deterministic for fixed ``(n, d, seed)`` on every host: the only
    randomness is a :class:`random.Random` stream derived from the
    arguments.  Degree sequences that cannot exist (odd ``n * d``,
    ``d >= n``) are rejected eagerly.
    """
    if d < 1:
        raise ValueError(f"random-regular needs degree >= 1, got d={d}")
    if d >= n:
        raise ValueError(f"random-regular needs d < n, got d={d}, n={n}")
    if (n * d) % 2 != 0:
        raise ValueError(
            f"no {d}-regular graph on {n} vertices exists (n*d must be even)"
        )
    rng = random.Random(f"repro-topology:random-regular:{n}:{d}:{seed}")
    spec = f"random-regular:{d}" if seed == 0 else f"random-regular:{d}:{seed}"
    for _ in range(_REGULAR_ATTEMPTS):
        edges = _pair_stubs(n, d, rng)
        if edges is not None:
            return Topology.from_edges(n, sorted(edges), spec=spec)
    raise ValueError(
        f"could not sample a simple {d}-regular graph on n={n} vertices "
        f"after {_REGULAR_ATTEMPTS} attempts (degree too close to n?)"
    )


def topology_names() -> tuple[str, ...]:
    """The known spec heads, for error messages and docs."""
    return ("complete", "ring[:K]", "torus[:RxC]", "random-regular:D[:SEED]")


def _bad_spec(spec: str, reason: str) -> ValueError:
    known = ", ".join(topology_names())
    return ValueError(f"invalid topology spec {spec!r}: {reason}; known: {known}")


@lru_cache(maxsize=256)
def _resolve(spec: str, n: int) -> Topology:
    head, _, rest = spec.partition(":")
    if head == "complete":
        if rest:
            raise _bad_spec(spec, "'complete' takes no parameters")
        return complete(n)
    if head == "ring":
        if not rest:
            return ring_lattice(n, 1)
        try:
            k = int(rest)
        except ValueError:
            raise _bad_spec(spec, "'ring:K' needs an integer K") from None
        return ring_lattice(n, k)
    if head == "torus":
        if not rest:
            return torus(n)
        try:
            rows_text, cols_text = rest.split("x", 1)
            rows, cols = int(rows_text), int(cols_text)
        except ValueError:
            raise _bad_spec(spec, "'torus:RxC' needs integers R and C") from None
        return torus(n, rows, cols)
    if head == "random-regular":
        parts = rest.split(":") if rest else []
        if len(parts) not in (1, 2):
            raise _bad_spec(
                spec, "'random-regular:D[:SEED]' needs a degree (and "
                "optionally a seed)"
            )
        try:
            d = int(parts[0])
            seed = int(parts[1]) if len(parts) == 2 else 0
        except ValueError:
            raise _bad_spec(
                spec, "'random-regular:D[:SEED]' needs integer parameters"
            ) from None
        return random_regular(n, d, seed)
    raise _bad_spec(spec, f"unknown generator {head!r}")


def topology_from_spec(spec: str, n: int) -> Topology:
    """Resolve a spec string to a concrete :class:`Topology` at size ``n``.

    Pure and memoized: the same ``(spec, n)`` always yields the same
    graph object, on every process.  Raises :class:`ValueError` with
    the known grammar on any malformed or unknown spec.
    """
    if not isinstance(spec, str) or not spec:
        raise _bad_spec(str(spec), "spec must be a non-empty string")
    return _resolve(spec, n)

"""Communication topologies: the graph the network delivers along.

The source paper's model is a complete graph -- every broadcast reaches
every process.  This subsystem makes the communication graph a
first-class, sweepable dimension: :class:`Topology` models adjacency
and connectivity, :mod:`~repro.topology.generators` provides
deterministic seeded generators addressed by short *spec strings*
(``complete``, ``ring:2``, ``torus:4x5``, ``random-regular:4:7``), and
the runtime/sweep layers thread the spec through configs, cells, cache
keys and the CLI.  The ``witness`` algorithm family
(:mod:`repro.runtime.witness`, after arXiv:1206.0089) is the first
protocol built for partially-connected graphs.
"""

from .generators import (
    DEFAULT_TOPOLOGY,
    complete,
    random_regular,
    ring_lattice,
    topology_from_spec,
    topology_names,
    torus,
)
from .graph import Topology

__all__ = [
    "Topology",
    "DEFAULT_TOPOLOGY",
    "complete",
    "ring_lattice",
    "torus",
    "random_regular",
    "topology_from_spec",
    "topology_names",
]

"""The communication graph as a first-class value.

The source paper fixes the network to the complete graph: every process
hears every other process each round.  Li, Hurfin & Wang
(arXiv:1206.0089) show approximate Byzantine consensus survives on
*partially-connected* networks when values are relayed through witness
sets, which makes the communication graph itself an experimental axis
-- ring lattices, tori, random-regular graphs, disconnection-threshold
studies.

:class:`Topology` is the immutable value the whole stack shares: the
network restricts delivery to its edges, the round kernel keys its
distinct-inbox memoization by neighborhood, configs validate their
family against it, and sweep cells carry its *spec string* (see
:mod:`repro.topology.generators`) so grids stay primitive and
picklable.

Graphs are undirected and simple (no self-loops, no parallel edges);
a process always "hears" itself regardless of the graph -- self-links
are implicit and never stored.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from pathlib import Path

__all__ = ["Topology"]


@dataclass(frozen=True)
class Topology:
    """An undirected communication graph over processes ``0..n-1``.

    Attributes
    ----------
    n:
        Number of processes (vertices).
    spec:
        The canonical spec string this graph was built from (see
        :func:`~repro.topology.generators.topology_from_spec`); carried
        into config descriptions and sweep-cell identities.
    neighbor_sets:
        ``neighbor_sets[pid]`` is the frozenset of processes adjacent
        to ``pid``.  Self-links are implicit: delivery, relays and
        inbox assembly always include the process itself.

    Derived quantities (completeness, connectivity, diameter) are
    computed lazily and cached on the instance -- the value is
    immutable, so they can never go stale.
    """

    n: int
    spec: str
    neighbor_sets: tuple[frozenset[int], ...]

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"topology needs at least one process, got n={self.n}")
        if len(self.neighbor_sets) != self.n:
            raise ValueError(
                f"topology {self.spec!r}: {len(self.neighbor_sets)} neighbor "
                f"sets for n={self.n} processes"
            )
        for pid, hood in enumerate(self.neighbor_sets):
            if pid in hood:
                raise ValueError(
                    f"topology {self.spec!r}: self-loop on p{pid} (self-links "
                    "are implicit; neighbor sets must not contain the process)"
                )
            for q in hood:
                if not 0 <= q < self.n:
                    raise ValueError(
                        f"topology {self.spec!r}: p{pid} lists invalid "
                        f"neighbor {q}"
                    )
                if pid not in self.neighbor_sets[q]:
                    raise ValueError(
                        f"topology {self.spec!r}: edge p{pid}-p{q} is not "
                        "symmetric (graphs are undirected)"
                    )

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_edges(
        cls, n: int, edges, spec: str = "edges"
    ) -> "Topology":
        """Build a topology from an explicit undirected edge list.

        ``edges`` is any iterable of ``(u, v)`` pairs; duplicates and
        orientation are normalized, self-loops rejected.
        """
        hoods: list[set[int]] = [set() for _ in range(n)]
        for u, v in edges:
            u, v = int(u), int(v)
            if u == v:
                raise ValueError(f"edge list contains self-loop on p{u}")
            if not (0 <= u < n and 0 <= v < n):
                raise ValueError(
                    f"edge ({u}, {v}) lies outside processes 0..{n - 1}"
                )
            hoods[u].add(v)
            hoods[v].add(u)
        return cls(
            n=n, spec=spec, neighbor_sets=tuple(frozenset(h) for h in hoods)
        )

    @classmethod
    def load_edge_list(
        cls, path: str | Path, n: int | None = None
    ) -> "Topology":
        """Load an explicit topology from an edge-list file.

        One ``u v`` pair per line; blank lines and ``#`` comments are
        ignored.  ``n`` defaults to ``max vertex id + 1``.
        """
        path = Path(path)
        edges: list[tuple[int, int]] = []
        for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 2:
                raise ValueError(
                    f"{path}:{lineno}: expected 'u v', got {raw!r}"
                )
            edges.append((int(parts[0]), int(parts[1])))
        if not edges and n is None:
            raise ValueError(f"{path} contains no edges and no n was given")
        if n is None:
            n = 1 + max(max(u, v) for u, v in edges)
        return cls.from_edges(n, edges, spec=f"edgelist:{path.name}")

    # -- adjacency -------------------------------------------------------------

    def neighbors(self, pid: int) -> frozenset[int]:
        """Processes adjacent to ``pid`` (never includes ``pid``)."""
        return self.neighbor_sets[pid]

    def degree(self, pid: int) -> int:
        return len(self.neighbor_sets[pid])

    def min_degree(self) -> int:
        return min(len(h) for h in self.neighbor_sets)

    def max_degree(self) -> int:
        return max(len(h) for h in self.neighbor_sets)

    def edge_count(self) -> int:
        return sum(len(h) for h in self.neighbor_sets) // 2

    @property
    def is_complete(self) -> bool:
        """Whether every process hears every other (the paper's network)."""
        cached = self.__dict__.get("_is_complete")
        if cached is None:
            cached = all(len(h) == self.n - 1 for h in self.neighbor_sets)
            object.__setattr__(self, "_is_complete", cached)
        return cached

    # -- connectivity ----------------------------------------------------------

    def _eccentricities(self) -> tuple[int, ...]:
        """Per-vertex BFS eccentricity; ``-1`` marks unreachable pairs."""
        cached = self.__dict__.get("_ecc")
        if cached is not None:
            return cached
        eccs = []
        for source in range(self.n):
            dist = [-1] * self.n
            dist[source] = 0
            queue = deque([source])
            reached = 1
            far = 0
            while queue:
                node = queue.popleft()
                for neighbor in self.neighbor_sets[node]:
                    if dist[neighbor] < 0:
                        dist[neighbor] = dist[node] + 1
                        far = max(far, dist[neighbor])
                        reached += 1
                        queue.append(neighbor)
            eccs.append(far if reached == self.n else -1)
        cached = tuple(eccs)
        object.__setattr__(self, "_ecc", cached)
        return cached

    def is_connected(self) -> bool:
        """Whether every process can reach every other along edges."""
        return self._eccentricities()[0] >= 0 if self.n > 1 else True

    def diameter(self) -> float:
        """Longest shortest path; ``math.inf`` when disconnected."""
        eccs = self._eccentricities()
        if any(e < 0 for e in eccs):
            return math.inf
        return float(max(eccs)) if self.n > 1 else 0.0

    # -- reporting -------------------------------------------------------------

    def stats(self) -> dict[str, object]:
        """Connectivity statistics for tables and banners."""
        return {
            "n": self.n,
            "edges": self.edge_count(),
            "min_degree": self.min_degree(),
            "max_degree": self.max_degree(),
            "complete": self.is_complete,
            "connected": self.is_connected(),
            "diameter": self.diameter(),
        }

    def describe(self) -> str:
        """One-line summary, e.g. for CLI banners."""
        diameter = self.diameter()
        rendered = "inf" if math.isinf(diameter) else f"{int(diameter)}"
        return (
            f"{self.spec}: n={self.n} edges={self.edge_count()} "
            f"degree=[{self.min_degree()},{self.max_degree()}] "
            f"diameter={rendered}"
        )

    def __repr__(self) -> str:
        return f"Topology({self.spec!r}, n={self.n})"

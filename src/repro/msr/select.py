"""Selection functions ``Sel`` for MSR algorithms.

After reduction, an MSR algorithm selects a subsequence of the surviving
sorted values and averages it (paper Section 4).  Different selections
give different convergence rates:

* selecting *everything* gives the Fault-Tolerant Averaging family,
* selecting only the two *extremes* gives the Fault-Tolerant Midpoint,
* selecting *every c-th value* gives the classic Dolev et al. [10]
  algorithm, whose contraction factor is ``1/ceil((m - 2*tau) / tau)``
  for multiset size ``m``,
* selecting the *median* gives a median-validity style baseline.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

from .multiset import ValueMultiset

__all__ = [
    "Selection",
    "SelectAll",
    "SelectExtremes",
    "SelectEvery",
    "SelectMedian",
]


class Selection(ABC):
    """Base class for the ``Sel`` stage of an MSR function."""

    @abstractmethod
    def __call__(self, multiset: ValueMultiset) -> ValueMultiset:
        """Return the selected sub-multiset (never empty for valid input)."""

    @abstractmethod
    def describe(self) -> str:
        """A short human-readable description used in tables and repr."""

    def flat_select(
        self, values: Sequence[float], lo: int, hi: int
    ) -> Sequence[float]:
        """Selected values from the reduced slice ``values[lo:hi]``.

        The flat counterpart of :meth:`__call__` for the round kernel's
        hot path: the reduction stage describes its output as an index
        range into the sorted array, and the selection picks straight
        from that range.  The returned sequence is sorted ascending
        (selections pick by increasing index) and is never retained by
        the caller, so a view into ``values`` is fine.  ``hi > lo`` is
        the caller's responsibility -- empty reductions go down the
        object path to raise the canonical error.  Selections without a
        flat form simply do not override this; the kernel detects the
        absence and falls back wholesale.
        """
        raise NotImplementedError

    def flat_select_batch(self, rows, lo: int, hi: int):
        """Selected columns from a batch of reduced rows.

        The batched counterpart of :meth:`flat_select`: ``rows`` is a
        2D array of sorted equal-width inboxes (one row per distinct
        inbox) and ``lo:hi`` the shared reduction bounds, so the picked
        indices are the same for every row and the whole selection is
        one column slice.  Returns a 2D array of shape ``(len(rows),
        k)`` whose rows are sorted ascending, exactly the values
        :meth:`flat_select` would pick per row.  Implementations use
        only indexing syntax so this module needs no array dependency.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.describe()})"

    @staticmethod
    def _require_nonempty(multiset: ValueMultiset) -> None:
        if len(multiset) == 0:
            raise ValueError(
                "selection applied to an empty multiset; the reduction "
                "removed every value (process count below the bound?)"
            )


class SelectAll(Selection):
    """Keep every reduced value (Fault-Tolerant Averaging)."""

    def __call__(self, multiset: ValueMultiset) -> ValueMultiset:
        self._require_nonempty(multiset)
        return multiset

    def flat_select(
        self, values: Sequence[float], lo: int, hi: int
    ) -> Sequence[float]:
        return values[lo:hi]

    def flat_select_batch(self, rows, lo: int, hi: int):
        return rows[:, lo:hi]

    def describe(self) -> str:
        return "all"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SelectAll)

    def __hash__(self) -> int:
        return hash("SelectAll")


class SelectExtremes(Selection):
    """Keep only the smallest and largest reduced values.

    Averaging the result gives the Fault-Tolerant Midpoint (FTM), whose
    per-round contraction factor is 1/2 -- the best possible for an MSR
    algorithm (Kieckhafer-Azadmanesh [11]).
    """

    def __call__(self, multiset: ValueMultiset) -> ValueMultiset:
        self._require_nonempty(multiset)
        if len(multiset) == 1:
            return multiset
        return ValueMultiset.from_trusted_floats((multiset.min(), multiset.max()))

    def flat_select(
        self, values: Sequence[float], lo: int, hi: int
    ) -> Sequence[float]:
        if hi - lo == 1:
            return (values[lo],)
        return (values[lo], values[hi - 1])

    def flat_select_batch(self, rows, lo: int, hi: int):
        if hi - lo == 1:
            return rows[:, [lo]]
        return rows[:, [lo, hi - 1]]

    def describe(self) -> str:
        return "extremes (min, max)"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SelectExtremes)

    def __hash__(self) -> int:
        return hash("SelectExtremes")


class SelectEvery(Selection):
    """Keep every ``step``-th value starting from the smallest.

    With ``step = tau`` after a ``TrimExtremes(tau)`` reduction, this is
    exactly the selection of the synchronous algorithm of Dolev et
    al. [10]: indices ``0, step, 2*step, ...`` of the reduced sorted
    multiset.  The final (largest) value is always included so the
    selected range spans the reduced range, which the convergence proof
    relies on.
    """

    def __init__(self, step: int, include_last: bool = True) -> None:
        if step < 1:
            raise ValueError(f"step must be >= 1, got {step}")
        self.step = step
        self.include_last = include_last

    def __call__(self, multiset: ValueMultiset) -> ValueMultiset:
        self._require_nonempty(multiset)
        indices = list(range(0, len(multiset), self.step))
        last = len(multiset) - 1
        if self.include_last and indices[-1] != last:
            indices.append(last)
        return multiset.select_indices(indices)

    def flat_select(
        self, values: Sequence[float], lo: int, hi: int
    ) -> Sequence[float]:
        picked = [values[index] for index in range(lo, hi, self.step)]
        if self.include_last and (hi - lo - 1) % self.step != 0:
            picked.append(values[hi - 1])
        return picked

    def flat_select_batch(self, rows, lo: int, hi: int):
        indices = list(range(lo, hi, self.step))
        if self.include_last and (hi - lo - 1) % self.step != 0:
            indices.append(hi - 1)
        return rows[:, indices]

    def describe(self) -> str:
        suffix = " (+last)" if self.include_last else ""
        return f"every {self.step}-th{suffix}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SelectEvery)
            and other.step == self.step
            and other.include_last == self.include_last
        )

    def __hash__(self) -> int:
        return hash(("SelectEvery", self.step, self.include_last))


class SelectMedian(Selection):
    """Keep the central value(s) of the reduced multiset.

    Averaging the result is the trimmed-median combiner used by the
    median-validity baseline (Stolz-Wattenhofer-inspired; see
    DESIGN.md Section 7).
    """

    def __call__(self, multiset: ValueMultiset) -> ValueMultiset:
        self._require_nonempty(multiset)
        mid = len(multiset) // 2
        if len(multiset) % 2 == 1:
            return multiset.select_indices([mid])
        return multiset.select_indices([mid - 1, mid])

    def flat_select(
        self, values: Sequence[float], lo: int, hi: int
    ) -> Sequence[float]:
        mid = lo + (hi - lo) // 2
        if (hi - lo) % 2 == 1:
            return (values[mid],)
        return (values[mid - 1], values[mid])

    def flat_select_batch(self, rows, lo: int, hi: int):
        mid = lo + (hi - lo) // 2
        if (hi - lo) % 2 == 1:
            return rows[:, [mid]]
        return rows[:, [mid - 1, mid]]

    def describe(self) -> str:
        return "median"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SelectMedian)

    def __hash__(self) -> int:
        return hash("SelectMedian")

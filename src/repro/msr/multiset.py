"""Sorted value multisets, the data structure MSR functions operate on.

The paper (Section 5.1) works with multisets of real values gathered in
the receive phase of a round.  This module provides :class:`ValueMultiset`,
an immutable sorted multiset with the operators the paper defines:

* ``min(V)`` / ``max(V)`` -- extreme values,
* ``rho(V) = [min(V), max(V)]`` -- the *range* of ``V``,
* ``delta(V) = max(V) - min(V)`` -- the *diameter* of ``V``.

(The paper's Section 5.1 writes ``delta(V) = min(V) - max(V)``; that is a
typo in the source text -- the diameter is the non-negative width of the
range, as in Dolev et al. [10] and Kieckhafer-Azadmanesh [11].)

Instances are immutable so they can be shared between process views,
trace records and checkers without defensive copying.
"""

from __future__ import annotations

import bisect
import math
from collections.abc import Iterable, Iterator, Sequence

__all__ = ["ValueMultiset", "Interval"]


class Interval:
    """A closed real interval ``[low, high]``; the paper's ``rho(V)``.

    Supports containment tests used by the Validity checker and range
    algebra used by the convergence analysis.
    """

    __slots__ = ("low", "high", "_midpoint")

    def __init__(self, low: float, high: float) -> None:
        if math.isnan(low) or math.isnan(high):
            raise ValueError("interval endpoints must not be NaN")
        if low > high:
            raise ValueError(f"empty interval: low={low!r} > high={high!r}")
        self.low = float(low)
        self.high = float(high)
        self._midpoint: float | None = None

    @classmethod
    def degenerate(cls, value: float) -> "Interval":
        """The single-point interval ``[value, value]``."""
        return cls(value, value)

    @property
    def width(self) -> float:
        """The length ``high - low`` of the interval."""
        return self.high - self.low

    def contains(self, value: float, tolerance: float = 0.0) -> bool:
        """Return whether ``value`` lies in the interval.

        ``tolerance`` widens the interval on both sides; checkers use a
        tiny tolerance to absorb floating-point rounding in long runs.
        """
        return self.low - tolerance <= value <= self.high + tolerance

    def contains_interval(self, other: "Interval", tolerance: float = 0.0) -> bool:
        """Return whether ``other`` is a sub-interval of this one."""
        return (
            self.low - tolerance <= other.low
            and other.high <= self.high + tolerance
        )

    def intersect(self, other: "Interval") -> "Interval | None":
        """Return the intersection interval, or ``None`` if disjoint."""
        low = max(self.low, other.low)
        high = min(self.high, other.high)
        if low > high:
            return None
        return Interval(low, high)

    def hull(self, other: "Interval") -> "Interval":
        """Return the smallest interval containing both intervals."""
        return Interval(min(self.low, other.low), max(self.high, other.high))

    def midpoint(self) -> float:
        """Return the centre of the interval (computed once, cached).

        Strategies query the midpoint per attack message, making this
        one of the hottest calls of a simulation.
        """
        if self._midpoint is None:
            self._midpoint = (self.low + self.high) / 2.0
        return self._midpoint

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Interval):
            return NotImplemented
        return self.low == other.low and self.high == other.high

    def __hash__(self) -> int:
        return hash((self.low, self.high))

    def __repr__(self) -> str:
        return f"Interval({self.low!r}, {self.high!r})"


class ValueMultiset:
    """An immutable multiset of real values, stored sorted ascending.

    This is the ``N_rk`` of the paper: the collection of values a
    non-faulty process aggregates during the receive phase.  All MSR
    component functions (``Red``, ``Sel``, ``mean``) consume and produce
    these multisets.
    """

    __slots__ = ("_values",)

    def __init__(self, values: Iterable[float] = ()) -> None:
        cleaned = []
        for value in values:
            value = float(value)
            if math.isnan(value):
                raise ValueError("multiset values must not be NaN")
            cleaned.append(value)
        cleaned.sort()
        self._values = tuple(cleaned)

    # -- construction helpers -------------------------------------------------

    @classmethod
    def of(cls, *values: float) -> "ValueMultiset":
        """Build a multiset from positional values: ``ValueMultiset.of(0, 1)``."""
        return cls(values)

    @classmethod
    def from_sorted(cls, values: Sequence[float]) -> "ValueMultiset":
        """Build from an already-sorted sequence (skips the sort)."""
        instance = cls.__new__(cls)
        instance._values = tuple(float(v) for v in values)
        return instance

    @classmethod
    def from_trusted_floats(cls, values: Sequence[float]) -> "ValueMultiset":
        """Build from values known to be sorted, finite ``float`` objects.

        Skips conversion and NaN screening entirely; the simulator's
        trace-lite hot loop uses this for multisets assembled from
        already-validated process values (adversary outputs pass the
        controller's finiteness gate, honest values are MSR results).
        """
        instance = cls.__new__(cls)
        instance._values = tuple(values)
        return instance

    # -- basic protocol --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[float]:
        return iter(self._values)

    def __getitem__(self, index: int) -> float:
        return self._values[index]

    def __contains__(self, value: float) -> bool:
        index = bisect.bisect_left(self._values, value)
        return index < len(self._values) and self._values[index] == value

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ValueMultiset):
            return NotImplemented
        return self._values == other._values

    def __hash__(self) -> int:
        return hash(self._values)

    def __repr__(self) -> str:
        inner = ", ".join(f"{v:g}" for v in self._values)
        return f"ValueMultiset([{inner}])"

    # -- the paper's operators --------------------------------------------------

    @property
    def values(self) -> tuple[float, ...]:
        """The sorted tuple of values."""
        return self._values

    def min(self) -> float:
        """``min(V)``: the minimum value; raises on an empty multiset."""
        self._require_nonempty("min")
        return self._values[0]

    def max(self) -> float:
        """``max(V)``: the maximum value; raises on an empty multiset."""
        self._require_nonempty("max")
        return self._values[-1]

    def range(self) -> Interval:
        """``rho(V) = [min(V), max(V)]``: the real interval spanned by V."""
        self._require_nonempty("range")
        return Interval(self._values[0], self._values[-1])

    def diameter(self) -> float:
        """``delta(V) = max(V) - min(V)``: the width of the range.

        The empty multiset has diameter 0 by convention (it spans no
        disagreement), which keeps trace metrics total.
        """
        if not self._values:
            return 0.0
        return self._values[-1] - self._values[0]

    # -- multiset algebra ---------------------------------------------------------

    def count(self, value: float) -> int:
        """Return the multiplicity of ``value``."""
        value = float(value)
        left = bisect.bisect_left(self._values, value)
        right = bisect.bisect_right(self._values, value)
        return right - left

    def add(self, value: float) -> "ValueMultiset":
        """Return a new multiset with ``value`` inserted."""
        value = float(value)
        if math.isnan(value):
            raise ValueError("multiset values must not be NaN")
        index = bisect.bisect_left(self._values, value)
        return ValueMultiset.from_trusted_floats(
            self._values[:index] + (value,) + self._values[index:]
        )

    def remove(self, value: float) -> "ValueMultiset":
        """Return a new multiset with one occurrence of ``value`` removed."""
        value = float(value)
        index = bisect.bisect_left(self._values, value)
        if index >= len(self._values) or self._values[index] != value:
            raise KeyError(f"value {value!r} not in multiset")
        return ValueMultiset.from_trusted_floats(
            self._values[:index] + self._values[index + 1 :]
        )

    def union(self, other: "ValueMultiset") -> "ValueMultiset":
        """Return the multiset union (multiplicities add)."""
        return ValueMultiset(self._values + other._values)

    def trim(self, low_count: int, high_count: int) -> "ValueMultiset":
        """Drop ``low_count`` smallest and ``high_count`` largest values.

        This is the primitive underlying the ``Red`` reduction family.
        Raises :class:`ValueError` if more values would be dropped than
        the multiset holds -- a sign the caller's ``n`` is below the
        resilience bound, which must never pass silently.
        """
        if low_count < 0 or high_count < 0:
            raise ValueError("trim counts must be non-negative")
        if low_count + high_count > len(self._values):
            raise ValueError(
                f"cannot trim {low_count}+{high_count} values from a "
                f"multiset of size {len(self._values)}"
            )
        end = len(self._values) - high_count
        return ValueMultiset.from_trusted_floats(self._values[low_count:end])

    def select_indices(self, indices: Sequence[int]) -> "ValueMultiset":
        """Return the sub-multiset at the given sorted positions."""
        picked = [self._values[i] for i in indices]
        if any(picked[i] > picked[i + 1] for i in range(len(picked) - 1)):
            picked.sort()
        return ValueMultiset.from_trusted_floats(picked)

    def mean(self) -> float:
        """Arithmetic mean of the values; raises on an empty multiset."""
        self._require_nonempty("mean")
        return math.fsum(self._values) / len(self._values)

    def median(self) -> float:
        """Median (midpoint of the two central values when even-sized)."""
        self._require_nonempty("median")
        mid = len(self._values) // 2
        if len(self._values) % 2 == 1:
            return self._values[mid]
        return (self._values[mid - 1] + self._values[mid]) / 2.0

    def midpoint(self) -> float:
        """``(min + max) / 2``; the Fault-Tolerant Midpoint combiner."""
        self._require_nonempty("midpoint")
        return (self._values[0] + self._values[-1]) / 2.0

    def count_in(self, interval: Interval, tolerance: float = 0.0) -> int:
        """Return how many values fall inside ``interval``."""
        left = bisect.bisect_left(self._values, interval.low - tolerance)
        right = bisect.bisect_right(self._values, interval.high + tolerance)
        return right - left

    def count_outside(self, interval: Interval, tolerance: float = 0.0) -> int:
        """Return how many values fall strictly outside ``interval``."""
        return len(self._values) - self.count_in(interval, tolerance)

    # -- internals ------------------------------------------------------------------

    def _require_nonempty(self, operation: str) -> None:
        if not self._values:
            raise ValueError(f"{operation}() on an empty multiset")

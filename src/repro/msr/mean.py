"""Combiner (``mean``) stage of MSR algorithms.

The MSR template always *averages* the selected subsequence; this module
keeps the stage explicit and swappable so ablations can compare the
arithmetic mean against alternatives (e.g. the exact median), and so the
algorithm description strings stay faithful to the construction.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from .multiset import ValueMultiset

__all__ = ["Combiner", "ArithmeticMean", "MedianCombiner"]


class Combiner(ABC):
    """Base class for the final stage mapping a multiset to one value."""

    @abstractmethod
    def __call__(self, multiset: ValueMultiset) -> float:
        """Combine the selected values into the next voted value."""

    @abstractmethod
    def describe(self) -> str:
        """A short human-readable description used in tables and repr."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.describe()})"


class ArithmeticMean(Combiner):
    """The standard MSR combiner: the arithmetic mean."""

    def __call__(self, multiset: ValueMultiset) -> float:
        return multiset.mean()

    def describe(self) -> str:
        return "arithmetic mean"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ArithmeticMean)

    def __hash__(self) -> int:
        return hash("ArithmeticMean")


class MedianCombiner(Combiner):
    """Median combiner, used by ablation baselines outside the MSR class.

    Note the median of the selected subsequence equals the arithmetic
    mean when the selection returns one or two values, so MSR instances
    built on :class:`~repro.msr.select.SelectMedian` or
    :class:`~repro.msr.select.SelectExtremes` are unaffected by this
    choice; it only matters for larger selections.
    """

    def __call__(self, multiset: ValueMultiset) -> float:
        return multiset.median()

    def describe(self) -> str:
        return "median"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MedianCombiner)

    def __hash__(self) -> int:
        return hash("MedianCombiner")

"""Combiner (``mean``) stage of MSR algorithms.

The MSR template always *averages* the selected subsequence; this module
keeps the stage explicit and swappable so ablations can compare the
arithmetic mean against alternatives (e.g. the exact median), and so the
algorithm description strings stay faithful to the construction.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections.abc import Sequence

from .multiset import ValueMultiset

__all__ = ["Combiner", "ArithmeticMean", "MedianCombiner"]


class Combiner(ABC):
    """Base class for the final stage mapping a multiset to one value."""

    @abstractmethod
    def __call__(self, multiset: ValueMultiset) -> float:
        """Combine the selected values into the next voted value."""

    @abstractmethod
    def describe(self) -> str:
        """A short human-readable description used in tables and repr."""

    def flat_combine(self, selected: Sequence[float]) -> float:
        """Combine a sorted, non-empty flat sequence of selected values.

        The flat counterpart of :meth:`__call__` for the round kernel's
        hot path; must be bit-identical to wrapping ``selected`` in a
        :class:`ValueMultiset` and calling the combiner.  Combiners
        without a flat form do not override this; the kernel detects
        the absence and falls back wholesale.
        """
        raise NotImplementedError

    def flat_combine_batch(self, selected) -> list[float]:
        """Combine a batch of selected rows into one value per row.

        The batched counterpart of :meth:`flat_combine`: ``selected``
        is a 2D array of equal-width sorted selections (one row per
        distinct inbox), and the result is a list of Python floats,
        each bit-identical to :meth:`flat_combine` on that row.  One-
        and two-column batches combine with exactly-rounded array
        arithmetic; wider batches fall back to ``math.fsum`` per row,
        which is still one call per *distinct inbox*, not per process.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.describe()})"


class ArithmeticMean(Combiner):
    """The standard MSR combiner: the arithmetic mean."""

    def __call__(self, multiset: ValueMultiset) -> float:
        return multiset.mean()

    def flat_combine(self, selected: Sequence[float]) -> float:
        # math.fsum is exactly rounded, so this matches
        # ValueMultiset.mean() bit for bit regardless of container.
        return math.fsum(selected) / len(selected)

    def flat_combine_batch(self, selected) -> list[float]:
        width = selected.shape[1]
        if width == 1:
            return selected[:, 0].tolist()
        if width == 2:
            # (a + b) / 2 is correctly rounded, hence bit-identical to
            # fsum([a, b]) / 2 -- no fsum loop needed for pair means.
            return ((selected[:, 0] + selected[:, 1]) / 2.0).tolist()
        return [math.fsum(row) / width for row in selected.tolist()]

    def describe(self) -> str:
        return "arithmetic mean"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ArithmeticMean)

    def __hash__(self) -> int:
        return hash("ArithmeticMean")


class MedianCombiner(Combiner):
    """Median combiner, used by ablation baselines outside the MSR class.

    Note the median of the selected subsequence equals the arithmetic
    mean when the selection returns one or two values, so MSR instances
    built on :class:`~repro.msr.select.SelectMedian` or
    :class:`~repro.msr.select.SelectExtremes` are unaffected by this
    choice; it only matters for larger selections.
    """

    def __call__(self, multiset: ValueMultiset) -> float:
        return multiset.median()

    def flat_combine(self, selected: Sequence[float]) -> float:
        mid = len(selected) // 2
        if len(selected) % 2 == 1:
            return selected[mid]
        return (selected[mid - 1] + selected[mid]) / 2.0

    def flat_combine_batch(self, selected) -> list[float]:
        mid = selected.shape[1] // 2
        if selected.shape[1] % 2 == 1:
            return selected[:, mid].tolist()
        return ((selected[:, mid - 1] + selected[:, mid]) / 2.0).tolist()

    def describe(self) -> str:
        return "median"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MedianCombiner)

    def __hash__(self) -> int:
        return hash("MedianCombiner")

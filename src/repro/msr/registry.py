"""Name-based registry of MSR algorithm factories.

Experiments, benchmarks and the CLI refer to algorithms by short names
(``"ftm"``, ``"fta"``, ``"dolev"``, ``"median-trim"``).  The registry
maps each name to a factory ``tau -> MSRFunction`` so harness code never
hard-codes constructors, and user code can register custom instances.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

from .algorithms import (
    dolev_et_al,
    fault_tolerant_average,
    fault_tolerant_midpoint,
    median_trim,
)
from .base import MSRFunction

__all__ = [
    "AlgorithmFactory",
    "register_algorithm",
    "make_algorithm",
    "algorithm_names",
    "DEFAULT_ALGORITHMS",
]

AlgorithmFactory = Callable[[int], MSRFunction]

_REGISTRY: dict[str, AlgorithmFactory] = {}

#: Names of the algorithms every experiment sweep runs by default.
DEFAULT_ALGORITHMS: tuple[str, ...] = ("ftm", "fta", "dolev")


def register_algorithm(name: str, factory: AlgorithmFactory) -> None:
    """Register ``factory`` under ``name`` (case-insensitive).

    Raises :class:`ValueError` if the name is taken, to catch accidental
    shadowing of the built-ins.
    """
    key = name.strip().lower()
    if not key:
        raise ValueError("algorithm name must be non-empty")
    if key in _REGISTRY:
        raise ValueError(f"algorithm {name!r} is already registered")
    _REGISTRY[key] = factory


def make_algorithm(name: str, tau: int) -> MSRFunction:
    """Instantiate the algorithm registered under ``name`` with ``tau``."""
    key = name.strip().lower()
    try:
        factory = _REGISTRY[key]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown algorithm {name!r}; known: {known}") from None
    return factory(tau)


def algorithm_names() -> Iterator[str]:
    """Iterate over registered algorithm names, sorted."""
    return iter(sorted(_REGISTRY))


def _register_builtins() -> None:
    register_algorithm("ftm", fault_tolerant_midpoint)
    register_algorithm("fta", fault_tolerant_average)
    register_algorithm("dolev", dolev_et_al)
    register_algorithm("median-trim", median_trim)


_register_builtins()

"""Reduction functions ``Red`` for MSR algorithms.

An MSR algorithm computes ``F(N) = mean(Sel(Red(N)))`` (paper Section 4).
The reduction stage filters values that may have been contributed by
faulty processes.  The canonical reduction of Dolev et al. [10] and
Kieckhafer-Azadmanesh [11] removes the ``tau`` largest and ``tau``
smallest values, where ``tau`` bounds the number of *untrustworthy*
values that can appear at the extremes of a received multiset
(``tau = a + s`` in the mixed-mode model).

Reductions are small immutable callables so that MSR instances can be
described, compared and registered by name.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from bisect import bisect_left, bisect_right
from collections.abc import Sequence

from .multiset import Interval, ValueMultiset

__all__ = [
    "Reduction",
    "TrimExtremes",
    "IdentityReduction",
    "TrimOutsideInterval",
]


class Reduction(ABC):
    """Base class for the ``Red`` stage of an MSR function."""

    @abstractmethod
    def __call__(self, multiset: ValueMultiset) -> ValueMultiset:
        """Return the reduced multiset."""

    @abstractmethod
    def describe(self) -> str:
        """A short human-readable description used in tables and repr."""

    def flat_bounds(self, values: Sequence[float]) -> tuple[int, int] | None:
        """Index bounds ``(lo, hi)`` of the reduced slice of ``values``.

        The flat counterpart of :meth:`__call__` for the round kernel's
        hot path: every reduction in this module keeps a *contiguous*
        run of the sorted input, so the reduced multiset is fully
        described by a half-open index range into the sorted array --
        no :class:`ValueMultiset` needs to be materialized.  Returning
        ``None`` signals "no flat answer for this input" (e.g. the
        input is below the resilience bound) and sends the caller down
        the object path, which raises the canonical error.

        Reductions that do not keep a contiguous slice must not
        override this; the kernel detects the absence of an override
        and falls back to the object path wholesale.
        """
        raise NotImplementedError

    def flat_bounds_width(self, width: int) -> tuple[int, int] | None:
        """Index bounds ``(lo, hi)`` for *any* sorted input of ``width``.

        The batched counterpart of :meth:`flat_bounds` for reductions
        whose kept range depends only on the input *size*, never on the
        values themselves: one call answers for a whole batch of
        equal-width inboxes at once, so the vectorized kernel can slice
        a 2D array of sorted rows with a single ``rows[:, lo:hi]``.
        ``None`` signals the width is below the resilience bound (the
        caller falls back to the object path for its canonical error).
        Value-dependent reductions (e.g. interval trims) must not
        override this; the kernel detects the absence and evaluates
        those inboxes row by row.
        """
        raise NotImplementedError

    def minimum_input_size(self) -> int:
        """Smallest multiset size this reduction can be applied to."""
        return 0

    def reduced_by(self, masked: int) -> "Reduction | None":
        """A variant of this reduction whose fault budget shrank by ``masked``.

        Protocol families that *prove* some adversarial values absent
        from a multiset (e.g. the Tseng family's cross-round
        consistency filter) may trim correspondingly less: each masked
        value is one untrustworthy extreme the budget no longer has to
        cover.  Returning ``None`` (the default) says the reduction has
        no notion of a fault budget; callers must then keep the full
        reduction and compensate differently.
        """
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.describe()})"


class TrimExtremes(Reduction):
    """Remove the ``tau`` smallest and ``tau`` largest values.

    This is the reduction used by every algorithm the paper analyses.
    With at most ``tau`` values from non-correct processes in a round's
    multiset, trimming ``tau`` from each end guarantees the surviving
    values lie within the range of correct values (property P1).
    """

    def __init__(self, tau: int) -> None:
        if tau < 0:
            raise ValueError(f"tau must be non-negative, got {tau}")
        self.tau = tau

    def __call__(self, multiset: ValueMultiset) -> ValueMultiset:
        if len(multiset) < self.minimum_input_size():
            raise ValueError(
                f"TrimExtremes(tau={self.tau}) needs at least "
                f"{self.minimum_input_size()} values, got {len(multiset)}; "
                "the process count is below the resilience bound"
            )
        return multiset.trim(self.tau, self.tau)

    def flat_bounds(self, values: Sequence[float]) -> tuple[int, int] | None:
        return self.flat_bounds_width(len(values))

    def flat_bounds_width(self, width: int) -> tuple[int, int] | None:
        if width < 2 * self.tau + 1:
            return None
        return self.tau, width - self.tau

    def minimum_input_size(self) -> int:
        return 2 * self.tau + 1

    def reduced_by(self, masked: int) -> "TrimExtremes":
        if masked < 0:
            raise ValueError(f"masked count must be non-negative, got {masked}")
        return TrimExtremes(max(self.tau - masked, 0))

    def describe(self) -> str:
        return f"trim {self.tau} from each end"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TrimExtremes) and other.tau == self.tau

    def __hash__(self) -> int:
        return hash(("TrimExtremes", self.tau))


class IdentityReduction(Reduction):
    """No-op reduction; used by fault-free averaging baselines."""

    def __call__(self, multiset: ValueMultiset) -> ValueMultiset:
        return multiset

    def flat_bounds(self, values: Sequence[float]) -> tuple[int, int] | None:
        return 0, len(values)

    def flat_bounds_width(self, width: int) -> tuple[int, int] | None:
        return 0, width

    def describe(self) -> str:
        return "identity"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IdentityReduction)

    def __hash__(self) -> int:
        return hash("IdentityReduction")


class TrimOutsideInterval(Reduction):
    """Remove values falling outside a fixed validity interval.

    Useful for *bounded-input* variants (e.g. the Simple Approximate
    Agreement of Section 6 assumes inputs in ``[0, 1]``): values outside
    the a-priori valid interval are necessarily faulty and can be
    discarded before extreme-trimming.
    """

    def __init__(self, interval: Interval) -> None:
        self.interval = interval

    def __call__(self, multiset: ValueMultiset) -> ValueMultiset:
        kept = [v for v in multiset if self.interval.contains(v)]
        return ValueMultiset.from_sorted(kept)

    def flat_bounds(self, values: Sequence[float]) -> tuple[int, int] | None:
        # The values inside a closed interval form a contiguous run of
        # the sorted input.
        return (
            bisect_left(values, self.interval.low),
            bisect_right(values, self.interval.high),
        )

    def describe(self) -> str:
        return f"keep values in [{self.interval.low:g}, {self.interval.high:g}]"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TrimOutsideInterval)
            and other.interval == self.interval
        )

    def __hash__(self) -> int:
        return hash(("TrimOutsideInterval", self.interval))

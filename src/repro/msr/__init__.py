"""The MSR (Mean-Subsequence-Reduce) algorithm family.

This package implements the algorithm class whose correctness under
Mobile Byzantine Faults the paper establishes: sorted value multisets,
the composable Red / Sel / mean stages, the classic concrete instances
(FTM, FTA, Dolev et al., trimmed median) and a name-based registry used
by the experiment harness.
"""

from .algorithms import (
    dolev_et_al,
    fault_tolerant_average,
    fault_tolerant_midpoint,
    median_trim,
    simple_mean,
)
from .base import MSRApplication, MSRFunction
from .mean import ArithmeticMean, Combiner, MedianCombiner
from .multiset import Interval, ValueMultiset
from .reduce import (
    IdentityReduction,
    Reduction,
    TrimExtremes,
    TrimOutsideInterval,
)
from .registry import (
    DEFAULT_ALGORITHMS,
    AlgorithmFactory,
    algorithm_names,
    make_algorithm,
    register_algorithm,
)
from .select import (
    SelectAll,
    SelectEvery,
    SelectExtremes,
    Selection,
    SelectMedian,
)

__all__ = [
    "ValueMultiset",
    "Interval",
    "MSRFunction",
    "MSRApplication",
    "Reduction",
    "TrimExtremes",
    "IdentityReduction",
    "TrimOutsideInterval",
    "Selection",
    "SelectAll",
    "SelectExtremes",
    "SelectEvery",
    "SelectMedian",
    "Combiner",
    "ArithmeticMean",
    "MedianCombiner",
    "fault_tolerant_midpoint",
    "fault_tolerant_average",
    "dolev_et_al",
    "median_trim",
    "simple_mean",
    "AlgorithmFactory",
    "register_algorithm",
    "make_algorithm",
    "algorithm_names",
    "DEFAULT_ALGORITHMS",
]

"""Concrete MSR algorithm instances.

The paper proves correctness for the *whole* MSR class; experiments run
several representative members (all from the literature the paper builds
on) so that every claim is exercised by more than one algorithm:

* :func:`fault_tolerant_midpoint` (FTM) -- trim ``tau`` from each end,
  average the two surviving extremes.  Contraction factor 1/2 per round,
  the optimum for MSR algorithms [11].
* :func:`fault_tolerant_average` (FTA) -- trim ``tau``, average *all*
  survivors.  Slower contraction but better noise behaviour; the classic
  "trimmed mean" of the fault-tolerance literature.
* :func:`dolev_et_al` -- trim ``tau``, keep every ``tau``-th survivor,
  average.  The synchronous algorithm of Dolev, Lynch, Pinter, Stark,
  Weihl [10]; contraction ``1/ceil((m - 2*tau)/tau)``.
* :func:`median_trim` -- trim ``tau``, take the median.  A
  median-validity style **baseline** (Stolz-Wattenhofer-inspired, see
  DESIGN.md Section 7).  Although it fits the syntactic
  ``mean(Sel(Red(N)))`` shape, the exact-median selection is *not* one
  of the convergent MSR selections: with balanced value camps a single
  asymmetric fault holds two receivers' medians at opposite camps and
  the diameter freezes (see
  :mod:`repro.core.convergence` and the ablation benchmark) -- the
  empirical reason the paper's Section 2.1 notes that the
  Stolz-Wattenhofer median algorithm lies outside the MSR class.

Each factory takes the trim parameter ``tau``; callers derive ``tau``
from the fault model via :func:`repro.core.mapping.msr_trim_parameter`.
"""

from __future__ import annotations

from .base import MSRFunction
from .mean import ArithmeticMean
from .reduce import TrimExtremes
from .select import SelectAll, SelectEvery, SelectExtremes, SelectMedian

__all__ = [
    "fault_tolerant_midpoint",
    "fault_tolerant_average",
    "dolev_et_al",
    "median_trim",
    "simple_mean",
]


def fault_tolerant_midpoint(tau: int) -> MSRFunction:
    """FTM: midpoint of the multiset after trimming ``tau`` per side."""
    return MSRFunction(
        reduction=TrimExtremes(tau),
        selection=SelectExtremes(),
        combiner=ArithmeticMean(),
        name=f"FTM(tau={tau})",
    )


def fault_tolerant_average(tau: int) -> MSRFunction:
    """FTA: arithmetic mean of all values after trimming ``tau`` per side."""
    return MSRFunction(
        reduction=TrimExtremes(tau),
        selection=SelectAll(),
        combiner=ArithmeticMean(),
        name=f"FTA(tau={tau})",
    )


def dolev_et_al(tau: int) -> MSRFunction:
    """Dolev et al. [10]: mean of every ``tau``-th value after trimming.

    For ``tau = 0`` (fault-free) this degenerates to the plain mean.
    """
    if tau == 0:
        return simple_mean()
    return MSRFunction(
        reduction=TrimExtremes(tau),
        selection=SelectEvery(step=tau),
        combiner=ArithmeticMean(),
        name=f"Dolev(tau={tau})",
    )


def median_trim(tau: int) -> MSRFunction:
    """Trimmed median: median of the multiset after trimming ``tau``.

    Baseline only -- satisfies P1 (validity) but **not** the single-step
    convergence property P2 in the worst case; see the module docstring.
    """
    return MSRFunction(
        reduction=TrimExtremes(tau),
        selection=SelectMedian(),
        combiner=ArithmeticMean(),
        name=f"MedianTrim(tau={tau})",
    )


def simple_mean() -> MSRFunction:
    """Plain averaging with no fault filtering (fault-free baseline).

    Included so experiments can show *why* reduction is needed: a single
    Byzantine value drags the plain mean outside the correct range.
    """
    return MSRFunction(
        reduction=TrimExtremes(0),
        selection=SelectAll(),
        combiner=ArithmeticMean(),
        name="SimpleMean",
    )

"""The MSR (Mean-Subsequence-Reduce) function template.

Paper Section 4: every convergent voting algorithm in the MSR class
computes, each round,

    F_MSR(N) = mean( Sel( Red(N) ) )

where ``N`` is the multiset of values received in the round, ``Red`` is a
reduction filtering (potentially faulty) extreme values and ``Sel``
selects a subsequence of the survivors.  This module composes the three
stages into :class:`MSRFunction`, the object a voting process applies in
its computation phase.

The two correctness properties the paper relies on (Section 5.1) are
checkable on any application of the function:

* **P1**: the computed value lies in the range ``rho(U)`` of values sent
  by non-faulty processes;
* **P2**: any two computed values differ by strictly less than the
  diameter ``delta(U)`` of the non-faulty values.

:meth:`MSRFunction.apply_checked` evaluates the function and verifies P1
against a supplied non-faulty range, which the trace checker uses to
validate every round of every experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

from .mean import ArithmeticMean, Combiner
from .multiset import Interval, ValueMultiset
from .reduce import Reduction
from .select import Selection

__all__ = ["MSRFunction", "MSRApplication"]


@dataclass(frozen=True)
class MSRApplication:
    """The intermediate products of one application of an MSR function.

    Kept by the trace for inspection: experiments on the mapping and on
    single-step convergence read the reduced/selected stages directly.
    """

    received: ValueMultiset
    reduced: ValueMultiset
    selected: ValueMultiset
    result: float

    def in_range(self, interval: Interval, tolerance: float = 1e-12) -> bool:
        """Return whether the result satisfies P1 w.r.t. ``interval``."""
        return interval.contains(self.result, tolerance)


class MSRFunction:
    """A concrete member of the MSR class: ``mean(Sel(Red(N)))``.

    Parameters
    ----------
    reduction, selection, combiner:
        The three composable stages.
    name:
        Display name used by registries, tables and traces.
    """

    def __init__(
        self,
        reduction: Reduction,
        selection: Selection,
        combiner: Combiner | None = None,
        name: str = "MSR",
    ) -> None:
        self.reduction = reduction
        self.selection = selection
        self.combiner = combiner if combiner is not None else ArithmeticMean()
        self.name = name

    def __call__(self, received: ValueMultiset) -> float:
        """Apply the function to a received multiset; returns the new vote."""
        return self.apply(received).result

    def apply(self, received: ValueMultiset) -> MSRApplication:
        """Apply the function, returning all intermediate stages."""
        if len(received) == 0:
            raise ValueError(
                f"{self.name}: received multiset is empty; a voting process "
                "always hears at least itself, so this indicates a broken "
                "simulation setup"
            )
        reduced = self.reduction(received)
        selected = self.selection(reduced)
        result = self.combiner(selected)
        return MSRApplication(
            received=received, reduced=reduced, selected=selected, result=result
        )

    def apply_value(self, received: ValueMultiset) -> float:
        """Apply the function returning only the result.

        Numerically identical to ``apply(received).result``; skips the
        :class:`MSRApplication` snapshot for trace-lite hot loops.
        """
        if len(received) == 0:
            raise ValueError(
                f"{self.name}: received multiset is empty; a voting process "
                "always hears at least itself, so this indicates a broken "
                "simulation setup"
            )
        return self.combiner(self.selection(self.reduction(received)))

    def apply_checked(
        self, received: ValueMultiset, nonfaulty_range: Interval
    ) -> MSRApplication:
        """Apply the function and assert property P1 against a known range.

        Used by tests and the trace checker where the ground-truth range
        of non-faulty values is available.  Raises :class:`AssertionError`
        on violation so failures are loud during experiments.
        """
        application = self.apply(received)
        if not application.in_range(nonfaulty_range):
            raise AssertionError(
                f"{self.name}: P1 violated -- result {application.result!r} "
                f"outside non-faulty range [{nonfaulty_range.low!r}, "
                f"{nonfaulty_range.high!r}]"
            )
        return application

    def minimum_multiset_size(self) -> int:
        """Smallest received multiset the function can be applied to."""
        return max(1, self.reduction.minimum_input_size())

    def describe(self) -> str:
        """Full human-readable composition description."""
        return (
            f"{self.name}: {self.combiner.describe()} of "
            f"[{self.selection.describe()}] of "
            f"[{self.reduction.describe()}]"
        )

    def __repr__(self) -> str:
        return f"MSRFunction({self.describe()!r})"

"""The paper's contribution: mapping, bounds, correctness, lower bounds.

* :mod:`repro.core.mapping` -- Mobile Byzantine -> Mixed-Mode mapping
  (Table 1, Lemmas 1-4) and the behavioural classifier validating it;
* :mod:`repro.core.bounds` -- replica requirements (Table 2) derived
  from the mapping;
* :mod:`repro.core.specification` -- Approximate Agreement and P1/P2
  checkers over traces;
* :mod:`repro.core.configuration` / :mod:`repro.core.equivalence` --
  Definitions 5-10 and Theorem 1's static-equivalent construction;
* :mod:`repro.core.convergence` -- contraction factors and round
  predictions;
* :mod:`repro.core.lower_bounds` -- Theorems 3-6 as executable
  indistinguishability triples plus sustained stall adversaries.
"""

from .bounds import (
    Table2Row,
    is_sufficient,
    max_tolerable_faults,
    mixed_mode_min_processes,
    replica_coefficient,
    required_processes,
    static_byzantine_min_processes,
    table2_rows,
)
from .configuration import (
    MobileComputation,
    MobileConfiguration,
    StaticConfiguration,
    computation_from_trace,
    mobile_configuration_at,
)
from .convergence import (
    ContractionEstimate,
    mobile_contraction,
    predicted_rounds,
    worst_case_contraction,
)
from .equivalence import (
    EquivalenceCheck,
    Theorem1Report,
    build_equivalent_static_computation,
    configurations_equivalent,
    cured_fault_class,
    static_image_of,
)
from .lower_bounds import (
    AlgorithmDefeat,
    Execution,
    Group,
    LowerBoundScenario,
    ScenarioVerification,
    classical_static_scenario,
    lower_bound_scenario,
    run_algorithm_on_scenario,
    stall_configuration,
    stall_group_ids,
)
from .mapping import (
    MappingRow,
    classify_cured_processes,
    classify_send_behavior,
    mapping_table,
    mixed_mode_image,
    msr_trim_parameter,
)
from .specification import (
    PropertyCheck,
    SimpleAgreementVerdict,
    SpecVerdict,
    check_epsilon_agreement,
    check_p1,
    check_p2,
    check_simple_agreement,
    check_termination,
    check_trace,
    check_validity,
)

__all__ = [
    "MappingRow",
    "mixed_mode_image",
    "msr_trim_parameter",
    "mapping_table",
    "classify_send_behavior",
    "classify_cured_processes",
    "mixed_mode_min_processes",
    "required_processes",
    "replica_coefficient",
    "is_sufficient",
    "max_tolerable_faults",
    "static_byzantine_min_processes",
    "Table2Row",
    "table2_rows",
    "PropertyCheck",
    "SpecVerdict",
    "check_trace",
    "check_validity",
    "check_epsilon_agreement",
    "check_termination",
    "check_p1",
    "check_p2",
    "check_simple_agreement",
    "SimpleAgreementVerdict",
    "MobileConfiguration",
    "StaticConfiguration",
    "MobileComputation",
    "mobile_configuration_at",
    "computation_from_trace",
    "EquivalenceCheck",
    "Theorem1Report",
    "cured_fault_class",
    "static_image_of",
    "configurations_equivalent",
    "build_equivalent_static_computation",
    "ContractionEstimate",
    "worst_case_contraction",
    "mobile_contraction",
    "predicted_rounds",
    "Group",
    "Execution",
    "LowerBoundScenario",
    "ScenarioVerification",
    "lower_bound_scenario",
    "classical_static_scenario",
    "run_algorithm_on_scenario",
    "AlgorithmDefeat",
    "stall_configuration",
    "stall_group_ids",
]

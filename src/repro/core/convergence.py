"""Convergence-rate theory for MSR algorithms under mobile faults.

The paper's Lemmas 6-7 inherit geometric convergence from [10, 11].
This module provides the quantitative side: a *worst-case per-round
contraction factor* for each MSR instance given the round's mixed-mode
image, used to (i) predict round counts for termination rules and
(ii) validate measured trajectories in experiments (measured factors
must never exceed predictions).

Derivations (``m`` = received multiset size, ``tau = a + s`` trimmed
per side, ``M = m - 2*tau`` survivors, ``a`` = values that may *differ*
between two receivers -- symmetric and benign faults are perceived
identically, so only asymmetric values drive divergence):

* ``a = 0`` -- all receivers see identical multisets and compute the
  same value: factor 0 (one-round convergence).
* **FTM** (midpoint of survivors): factor 1/2, the MSR optimum [11].
* **FTA** (mean of survivors): factor ``a / M``.  Two receivers' sorted
  survivor vectors differ per-slot by at most the span of ``a``
  consecutive common-value gaps; summing the telescoping bound over the
  ``M`` slots gives ``a * delta(U) / M``.
* **Dolev et al.** (every ``step``-th survivor): factor
  ``1 / ceil(M / step)`` [10], valid for ``step >= a``: consecutive
  selected values then sandwich both receivers' choices.  When a single
  stride covers all survivors (``ceil(M/step) <= 1``) the selection
  degenerates to {min, max} and the FTM bound 1/2 applies instead.
* **MedianTrim** (exact median of survivors): **no worst-case
  contraction guarantee** -- with balanced value camps and one
  asymmetric fault, two receivers' medians can sit at opposite camp
  values, freezing the diameter (factor 1).  This reproduces, from the
  MSR side, why the paper's Section 2.1 notes that the
  Stolz-Wattenhofer median algorithm is *not* an MSR member: iterated
  exact medians need an extra mechanism (their King phase) to converge.
  See ``tests/test_core_convergence.py::TestMedianTrimStall``.

All factors assume the resilience precondition ``n > 3a + 2s + b``; the
functions return ``inf`` when it fails, which downstream code treats as
"does not converge".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..faults.mixed_mode import MixedModeCounts
from ..faults.models import MobileModel, get_semantics
from ..msr.base import MSRFunction
from ..msr.select import SelectAll, SelectEvery, SelectExtremes, SelectMedian

__all__ = [
    "ContractionEstimate",
    "worst_case_contraction",
    "mobile_contraction",
    "predicted_rounds",
]


@dataclass(frozen=True)
class ContractionEstimate:
    """A worst-case per-round contraction factor and its provenance."""

    factor: float
    formula: str
    multiset_size: int
    survivors: int
    trim: int
    asymmetric: int

    @property
    def converges(self) -> bool:
        """Whether the factor guarantees geometric convergence."""
        return self.factor < 1.0

    def __str__(self) -> str:
        return f"{self.factor:.4g} ({self.formula})"


def worst_case_contraction(
    algorithm: MSRFunction, n: int, image: MixedModeCounts
) -> ContractionEstimate:
    """Worst-case contraction of ``algorithm`` with ``n`` processes.

    ``image`` is the round's mixed-mode fault counts.  Benign processes
    omit, so the received multiset has ``m = n - b`` values, of which
    ``a + s`` are untrustworthy and ``a`` may differ between receivers.
    """
    tau = image.trim_parameter
    m = n - image.benign
    survivors = m - 2 * tau
    a = image.asymmetric

    def estimate(factor: float, formula: str) -> ContractionEstimate:
        return ContractionEstimate(
            factor=factor,
            formula=formula,
            multiset_size=m,
            survivors=survivors,
            trim=tau,
            asymmetric=a,
        )

    if survivors < 1 or not image.satisfied_by(n):
        return estimate(math.inf, "below resilience bound")
    if a == 0:
        return estimate(0.0, "identical views (a=0)")

    selection = algorithm.selection
    if isinstance(selection, SelectExtremes):
        return estimate(0.5, "FTM midpoint: 1/2")
    if isinstance(selection, SelectMedian):
        return estimate(1.0, "exact median: no worst-case contraction")
    if isinstance(selection, SelectAll):
        factor = min(1.0, a / survivors)
        return estimate(factor, f"FTA: a/M = {a}/{survivors}")
    if isinstance(selection, SelectEvery):
        step = selection.step
        if step < a:
            # The sandwich argument needs step >= a; fall back to the
            # FTA bound which holds for any averaging of survivors.
            factor = min(1.0, a / survivors)
            return estimate(factor, f"step<a fallback: a/M = {a}/{survivors}")
        blocks = math.ceil(survivors / step)
        if blocks <= 1:
            # One stride spans all survivors: the selection is exactly
            # {min, max} (first plus appended last) -- FTM's bound.
            return estimate(0.5, "Dolev degenerate: midpoint, 1/2")
        return estimate(1.0 / blocks, f"Dolev: 1/ceil(M/step) = 1/{blocks}")
    # Unknown selection: the universally valid (if loose) survivor-mean
    # bound.
    factor = min(1.0, a / survivors)
    return estimate(factor, f"generic survivor bound: a/M = {a}/{survivors}")


def mobile_contraction(
    algorithm: MSRFunction, model: MobileModel | str, n: int, f: int
) -> ContractionEstimate:
    """Worst-case per-round contraction under a mobile model.

    Uses the per-round worst case of Corollary 1 (``|cured| = f``).
    """
    image = get_semantics(model).mixed_mode_counts(f)
    return worst_case_contraction(algorithm, n, image)


def predicted_rounds(
    algorithm: MSRFunction,
    model: MobileModel | str,
    n: int,
    f: int,
    initial_diameter: float,
    epsilon: float,
) -> int:
    """Rounds guaranteeing epsilon-agreement from ``initial_diameter``."""
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    estimate = mobile_contraction(algorithm, model, n, f)
    if not estimate.converges:
        raise ValueError(
            f"{algorithm.name} does not converge for {model} with "
            f"n={n}, f={f} (factor {estimate})"
        )
    if initial_diameter <= epsilon:
        return 0
    if estimate.factor == 0.0:
        return 1
    ratio = initial_diameter / epsilon
    return max(1, math.ceil(math.log(ratio) / math.log(1.0 / estimate.factor)))

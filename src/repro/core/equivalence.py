"""Configuration equivalence and Theorem 1, made executable.

* **Definition 9** -- a mobile configuration is *equivalent* to a static
  one when they produce the same ``U`` (correct values) and the mobile
  one has at least as many ``<correct, correct value>`` tuples.
* **Definition 10** -- a mobile computation is *correct* when a static
  computation exists with round-wise equivalent configurations.
* **Theorem 1** -- if ``n > n_Mi`` at every round, every mobile
  computation of an MSR algorithm is correct.

:func:`build_equivalent_static_computation` performs exactly the
construction of Theorem 1's proof: each round's cured processes are
re-labelled with their Table 1 mixed-mode class and the faulty ones
become asymmetric, producing a static configuration; the function then
checks Definition 9 for every round and reports per-round verdicts.
Experiment EXP-TH1 runs this over real traces.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..faults.mixed_mode import FaultClass
from ..faults.models import CuredSendBehavior, MobileModel, get_semantics
from ..runtime.trace import Trace
from .configuration import (
    MobileComputation,
    MobileConfiguration,
    StaticConfiguration,
    computation_from_trace,
)

__all__ = [
    "EquivalenceCheck",
    "Theorem1Report",
    "cured_fault_class",
    "static_image_of",
    "configurations_equivalent",
    "build_equivalent_static_computation",
]


def cured_fault_class(model: MobileModel | str) -> FaultClass | None:
    """The mixed-mode class cured processes assume (Table 1 column)."""
    semantics = get_semantics(model)
    behavior = semantics.cured_send
    if behavior is CuredSendBehavior.SILENT:
        return FaultClass.BENIGN
    if behavior is CuredSendBehavior.BROADCAST_STATE:
        return FaultClass.SYMMETRIC
    if behavior is CuredSendBehavior.PLANTED_QUEUE:
        return FaultClass.ASYMMETRIC
    return None


def static_image_of(
    config: MobileConfiguration, model: MobileModel | str
) -> StaticConfiguration:
    """Theorem 1's construction: the static configuration equivalent
    to a mobile one under the model's Table 1 mapping."""
    cured_class = cured_fault_class(model)
    classes: dict[int, FaultClass] = {}
    for pid in config.faulty:
        classes[pid] = FaultClass.ASYMMETRIC
    for pid in config.cured:
        if cured_class is None:
            raise ValueError(
                f"model {model} admits no cured process at send time, "
                f"but configuration at round {config.round_index} has "
                f"cured={sorted(config.cured)}"
            )
        classes[pid] = cured_class
    return StaticConfiguration(
        round_index=config.round_index,
        classes=classes,
        values=dict(config.values),
    )


@dataclass(frozen=True)
class EquivalenceCheck:
    """Definition 9 evaluated for one round."""

    round_index: int
    same_u: bool
    correct_count_mobile: int
    correct_count_static: int
    meets_bound: bool

    @property
    def equivalent(self) -> bool:
        return (
            self.same_u
            and self.correct_count_mobile >= self.correct_count_static
        )

    def __str__(self) -> str:
        status = "equivalent" if self.equivalent else "NOT equivalent"
        bound = "bound ok" if self.meets_bound else "bound VIOLATED"
        return (
            f"round {self.round_index}: {status} "
            f"(|C|={self.correct_count_mobile} vs "
            f"|C'|={self.correct_count_static}, {bound})"
        )


@dataclass(frozen=True)
class Theorem1Report:
    """Outcome of running Theorem 1's construction over a computation."""

    model: MobileModel
    f: int
    checks: tuple[EquivalenceCheck, ...]
    static_computation: tuple[StaticConfiguration, ...]
    is_mobile_computation: bool

    @property
    def is_correct_computation(self) -> bool:
        """Definition 10: every round produced an equivalent static config."""
        return self.is_mobile_computation and all(
            check.equivalent for check in self.checks
        )

    def summary(self) -> str:
        verdict = "correct" if self.is_correct_computation else "NOT correct"
        return (
            f"{self.model.value} f={self.f}: {len(self.checks)} rounds, "
            f"computation is {verdict} (Definition 10)"
        )


def configurations_equivalent(
    mobile: MobileConfiguration, static: StaticConfiguration
) -> EquivalenceCheck:
    """Definition 9 check between a mobile and a static configuration."""
    same_u = (
        mobile.correct_value_multiset() == static.correct_value_multiset()
    )
    return EquivalenceCheck(
        round_index=mobile.round_index,
        same_u=same_u,
        correct_count_mobile=len(mobile.correct),
        correct_count_static=len(static.correct),
        meets_bound=static.meets_bound(),
    )


def build_equivalent_static_computation(
    source: Trace | MobileComputation,
) -> Theorem1Report:
    """Run Theorem 1's proof construction over a trace or computation.

    Returns per-round Definition 9 checks plus the Definition 8
    condition; ``report.is_correct_computation`` is the executable
    statement of Theorem 1's conclusion.
    """
    computation = (
        computation_from_trace(source) if isinstance(source, Trace) else source
    )
    checks: list[EquivalenceCheck] = []
    statics: list[StaticConfiguration] = []
    for config in computation.configurations:
        static = static_image_of(config, computation.model)
        statics.append(static)
        checks.append(configurations_equivalent(config, static))
    return Theorem1Report(
        model=computation.model,
        f=computation.f,
        checks=tuple(checks),
        static_computation=tuple(statics),
        is_mobile_computation=computation.is_mobile_computation(),
    )

"""Configurations and computations (paper Definitions 5-8).

* **Definition 5** -- a *configuration* ``C_rk`` is the set of
  ``<failure state, proposing value>`` tuples, one per process, at a
  round.
* **Definition 6** -- one protocol iteration maps ``C_rk-1`` to ``C_rk``.
* **Definition 7** -- a *static computation* keeps a fixed subset of at
  least ``n - (3a + 2s + b)`` processes correct throughout.
* **Definition 8** -- a *mobile computation* lets every process change
  failure state, provided ``n > 3a + 2s + b`` holds at each round.

These classes make the definitions executable: configurations are
extracted from trace rounds, and computations are checked against the
definitions' conditions.  :mod:`repro.core.equivalence` builds on them
to execute Theorem 1's static-equivalent construction.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from ..faults.mixed_mode import FaultClass, MixedModeCounts
from ..faults.models import MobileModel, get_semantics
from ..faults.states import FailureState
from ..msr.multiset import ValueMultiset
from ..runtime.trace import RoundRecord, Trace

__all__ = [
    "MobileConfiguration",
    "StaticConfiguration",
    "MobileComputation",
    "mobile_configuration_at",
    "computation_from_trace",
]


@dataclass(frozen=True)
class MobileConfiguration:
    """Definition 5 instantiated for the mobile failure states."""

    round_index: int
    states: Mapping[int, FailureState]
    values: Mapping[int, float]

    def __post_init__(self) -> None:
        if set(self.states) != set(self.values):
            raise ValueError("states and values must cover the same processes")

    @property
    def n(self) -> int:
        return len(self.states)

    def ids_in_state(self, state: FailureState) -> frozenset[int]:
        """Processes currently in the given failure state."""
        return frozenset(
            pid for pid, current in self.states.items() if current is state
        )

    @property
    def correct(self) -> frozenset[int]:
        return self.ids_in_state(FailureState.CORRECT)

    @property
    def cured(self) -> frozenset[int]:
        return self.ids_in_state(FailureState.CURED)

    @property
    def faulty(self) -> frozenset[int]:
        return self.ids_in_state(FailureState.FAULTY)

    def correct_value_multiset(self) -> ValueMultiset:
        """The ``U`` this configuration generates: correct values."""
        return ValueMultiset(self.values[pid] for pid in self.correct)


@dataclass(frozen=True)
class StaticConfiguration:
    """Definition 5 instantiated for mixed-mode (static) fault classes.

    ``classes`` assigns a :class:`FaultClass` to every non-correct
    process; processes absent from it are correct.
    """

    round_index: int
    classes: Mapping[int, FaultClass]
    values: Mapping[int, float]

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def correct(self) -> frozenset[int]:
        return frozenset(self.values) - frozenset(self.classes)

    def counts(self) -> MixedModeCounts:
        """The ``(a, s, b)`` counts of this configuration."""
        assigned = list(self.classes.values())
        return MixedModeCounts(
            asymmetric=assigned.count(FaultClass.ASYMMETRIC),
            symmetric=assigned.count(FaultClass.SYMMETRIC),
            benign=assigned.count(FaultClass.BENIGN),
        )

    def meets_bound(self) -> bool:
        """Kieckhafer-Azadmanesh: ``n > 3a + 2s + b``."""
        return self.counts().satisfied_by(self.n)

    def correct_value_multiset(self) -> ValueMultiset:
        """The ``U`` this configuration generates: correct values."""
        return ValueMultiset(self.values[pid] for pid in self.correct)


def mobile_configuration_at(record: RoundRecord) -> MobileConfiguration:
    """The configuration at the *beginning* of a recorded round.

    States follow the record's send-phase fault pattern; values are the
    pre-send memories (including any departure corruption).
    """
    states: dict[int, FailureState] = {}
    for pid in record.values_before:
        if pid in record.faulty_at_send:
            states[pid] = FailureState.FAULTY
        elif pid in record.cured_at_send:
            states[pid] = FailureState.CURED
        else:
            states[pid] = FailureState.CORRECT
    return MobileConfiguration(
        round_index=record.round_index,
        states=states,
        values=dict(record.values_before),
    )


@dataclass
class MobileComputation:
    """Definition 8: a sequence of mobile configurations.

    ``model``/``f`` provide the mixed-mode image needed to evaluate the
    per-round resilience condition.
    """

    model: MobileModel
    f: int
    configurations: list[MobileConfiguration]

    def per_round_images(self) -> list[MixedModeCounts]:
        """Mixed-mode image of every configuration (Table 1)."""
        semantics = get_semantics(self.model)
        return [
            semantics.mixed_mode_counts(self.f, cured=len(config.cured))
            for config in self.configurations
        ]

    def is_mobile_computation(self) -> bool:
        """Definition 8's condition: ``n > 3a + 2s + b`` at every round."""
        return all(
            image.satisfied_by(config.n)
            for config, image in zip(self.configurations, self.per_round_images())
        )

    def max_cured(self) -> int:
        """Largest per-round cured count (Corollary 1 says <= f)."""
        return max((len(config.cured) for config in self.configurations), default=0)


def computation_from_trace(trace: Trace) -> MobileComputation:
    """Extract the mobile computation a trace executed."""
    if trace.model is None:
        raise ValueError(
            "trace was produced by the static controller; mobile "
            "computations require a mobile model"
        )
    configurations = [mobile_configuration_at(record) for record in trace.rounds]
    return MobileComputation(
        model=trace.model, f=trace.f, configurations=configurations
    )

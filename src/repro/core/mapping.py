"""Mapping Mobile Byzantine Faults to Mixed-Mode faults (paper Section 4).

Lemmas 1-4 establish, per model, the static mixed-mode fault counts a
round's computation is equivalent to (paper Table 1):

========  ===========================  =========================
Model     Faulty processes map to      Cured processes map to
========  ===========================  =========================
M1        asymmetric (``a = f``)       benign (``b = |cured|``)
M2        asymmetric (``a = f``)       symmetric (``s = |cured|``)
M3        asymmetric                   asymmetric (``a = f + |cured|``)
M4        asymmetric (``a = f``)       (none exist at send time)
========  ===========================  =========================

Besides the static table, this module provides the *behavioural
classifier* used by experiment EXP-T1: given a trace round, it derives
each cured process's mixed-mode class purely from its observable send
behaviour (silent / identical-to-all / per-recipient-divergent), which
is how the mapping is validated empirically rather than read off the
model definition.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..faults.mixed_mode import FaultClass, MixedModeCounts
from ..faults.models import ALL_MODELS, MobileModel, get_semantics
from ..runtime.trace import RoundRecord

__all__ = [
    "MappingRow",
    "mixed_mode_image",
    "msr_trim_parameter",
    "mapping_table",
    "classify_send_behavior",
    "classify_cured_processes",
]


@dataclass(frozen=True)
class MappingRow:
    """One row of the paper's Table 1 for a single model."""

    model: MobileModel
    faulty_class: FaultClass
    cured_class: FaultClass | None

    def render_cells(self) -> dict[str, str]:
        """Cells of Table 1 for this model (fault class -> roles)."""
        cells = {cls.value: "" for cls in FaultClass}
        roles: dict[str, list[str]] = {cls.value: [] for cls in FaultClass}
        roles[self.faulty_class.value].append("faulty")
        if self.cured_class is not None:
            roles[self.cured_class.value].append("cured")
        for key, entries in roles.items():
            cells[key] = ", ".join(entries)
        return cells


def mixed_mode_image(
    model: MobileModel | str, f: int, cured: int | None = None
) -> MixedModeCounts:
    """Lemmas 1-4: the mixed-mode counts a round is equivalent to.

    ``cured`` defaults to ``f``, the worst case allowed by Corollary 1.
    """
    return get_semantics(model).mixed_mode_counts(f, cured)


def msr_trim_parameter(model: MobileModel | str, f: int) -> int:
    """The reduction parameter ``tau = a + s`` an MSR instance needs.

    This is what a deployment must configure: it depends only on the
    model and ``f``, both known a priori, not on the per-round cured
    count.
    """
    return get_semantics(model).trim_parameter(f)


def mapping_table() -> list[MappingRow]:
    """Structured content of the paper's Table 1, in M1..M4 order."""
    rows = []
    for model in ALL_MODELS:
        image_with_cured = mixed_mode_image(model, f=1, cured=1)
        image_without = mixed_mode_image(model, f=1, cured=0)
        # The faulty class is what remains with zero cured processes.
        faulty_class = FaultClass.ASYMMETRIC
        assert image_without == MixedModeCounts(asymmetric=1), (
            "faulty processes are asymmetric in every model"
        )
        cured_class: FaultClass | None
        if image_with_cured.benign > image_without.benign:
            cured_class = FaultClass.BENIGN
        elif image_with_cured.symmetric > image_without.symmetric:
            cured_class = FaultClass.SYMMETRIC
        elif image_with_cured.asymmetric > image_without.asymmetric:
            cured_class = FaultClass.ASYMMETRIC
        else:
            cured_class = None
        rows.append(
            MappingRow(model=model, faulty_class=faulty_class, cured_class=cured_class)
        )
    return rows


def classify_send_behavior(
    record: RoundRecord, pid: int, tolerance: float = 0.0
) -> FaultClass:
    """Classify a process's observable send behaviour in one round.

    Mirrors Definitions 1-3 operationally:

    * silent (detected omission) -> **benign**;
    * sent the same value to every recipient -> **symmetric** (the
      weakest class consistent with the observation; an honest
      broadcast also looks symmetric -- callers only apply this to
      cured/faulty processes);
    * sent diverging values -> **asymmetric**.
    """
    outbox = record.sent.get(pid)
    if outbox is None:
        return FaultClass.BENIGN
    values = list(outbox.values())
    if not values:
        return FaultClass.BENIGN
    spread = max(values) - min(values)
    if spread <= tolerance:
        return FaultClass.SYMMETRIC
    return FaultClass.ASYMMETRIC


def classify_cured_processes(record: RoundRecord) -> dict[int, FaultClass]:
    """Observed mixed-mode class of every cured process in a round."""
    return {
        pid: classify_send_behavior(record, pid)
        for pid in sorted(record.cured_at_send)
    }

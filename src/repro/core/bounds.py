"""Replica bounds (paper Table 2 and the mixed-mode bound it derives from).

Kieckhafer-Azadmanesh [11]: MSR algorithms solve approximate agreement
under mixed-mode faults iff ``n > 3a + 2s + b``.  Substituting each
model's worst-case mixed-mode image (Table 1 with ``|cured| = f``)
yields the paper's Table 2:

====== ==================== =========
Model  Substitution         Bound
====== ==================== =========
M1     ``3f + b = 3f + f``  ``n > 4f``
M2     ``3f + 2s = 3f+2f``  ``n > 5f``
M3     ``3(f + a') = 3*2f`` ``n > 6f``
M4     ``3f``               ``n > 3f``
====== ==================== =========

The static Byzantine bound ``n > 3f`` [10, 14] is included for the
"lower bounds differ from the static case" comparison experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..faults.mixed_mode import MixedModeCounts
from ..faults.models import ALL_MODELS, MobileModel, get_semantics
from .mapping import mixed_mode_image

__all__ = [
    "mixed_mode_min_processes",
    "required_processes",
    "replica_coefficient",
    "is_sufficient",
    "max_tolerable_faults",
    "static_byzantine_min_processes",
    "Table2Row",
    "table2_rows",
]


def mixed_mode_min_processes(counts: MixedModeCounts) -> int:
    """Minimum ``n`` with ``n > 3a + 2s + b`` (Kieckhafer-Azadmanesh)."""
    return counts.min_processes()


def required_processes(model: MobileModel | str, f: int) -> int:
    """Paper Table 2: minimum ``n`` tolerating ``f`` mobile agents."""
    return get_semantics(model).required_n(f)


def replica_coefficient(model: MobileModel | str) -> int:
    """The coefficient ``c`` of the ``n > c*f`` requirement."""
    return get_semantics(model).replica_coefficient


def is_sufficient(model: MobileModel | str, n: int, f: int) -> bool:
    """Whether ``n`` processes satisfy the model's Table 2 bound."""
    return get_semantics(model).tolerates(n, f)


def max_tolerable_faults(model: MobileModel | str, n: int) -> int:
    """Largest ``f`` a system of ``n`` processes tolerates."""
    return get_semantics(model).max_faults(n)


def static_byzantine_min_processes(f: int) -> int:
    """Classical static bound ``n > 3f`` (Dolev et al. [10], FLM [14])."""
    if f < 0:
        raise ValueError(f"f must be non-negative, got {f}")
    if f == 0:
        return 1
    return 3 * f + 1


@dataclass(frozen=True)
class Table2Row:
    """One row of the paper's Table 2, with its derivation."""

    model: MobileModel
    #: The worst-case mixed-mode image the bound is derived from.
    image: MixedModeCounts
    #: The symbolic requirement, e.g. "n > 3f + b = 4f".
    derivation: str
    #: The coefficient c of n > c*f.
    coefficient: int

    def bound_text(self) -> str:
        """Human-readable bound as printed in Table 2."""
        return f"n > {self.coefficient}f"


def table2_rows(f: int = 1) -> list[Table2Row]:
    """Regenerate the paper's Table 2 from the mapping, symbolically.

    The derivation recomputes each bound from ``n > 3a + 2s + b`` with
    the model's worst-case image, asserting it matches the model's
    declared coefficient -- i.e. Table 2 really *follows from* Table 1
    in this codebase, it is not hard-coded twice.
    """
    if f < 1:
        raise ValueError("table derivation needs f >= 1")
    rows = []
    for model in ALL_MODELS:
        semantics = get_semantics(model)
        image = mixed_mode_image(model, f)
        derived_min = image.min_processes()
        declared_min = semantics.required_n(f)
        if derived_min != declared_min:
            raise AssertionError(
                f"{model}: derived bound {derived_min} != declared "
                f"{declared_min}; the mapping and Table 2 disagree"
            )
        derivation = (
            f"n > 3*{image.asymmetric} + 2*{image.symmetric} + {image.benign}"
            f" = {semantics.replica_coefficient}f (f={f})"
        )
        rows.append(
            Table2Row(
                model=model,
                image=image,
                derivation=derivation,
                coefficient=semantics.replica_coefficient,
            )
        )
    return rows

"""Executable lower bounds (paper Section 6, Theorems 3-6).

Two complementary artefacts per model:

1. **Indistinguishability triples** (:func:`lower_bound_scenario`): the
   paper's executions E1/E2/E3, generalised from single processes to
   groups of ``f``.  In E1 all correct processes propose 0 and -- by
   Agreement+Validity of Simple Approximate Agreement -- must choose 0;
   in E2 they propose 1 and must choose 1.  E3 is crafted so one
   correct group's *view* (received multiset) equals its E1 view while
   another's equals its E2 view; any deterministic algorithm therefore
   chooses 0 and 1 in the same execution, violating Agreement.  The
   argument binds **every** algorithm, not just MSR members.

2. **Sustained stall adversaries** (:func:`stall_configuration`): a
   concrete multi-round adversary at exactly ``n = n_Mi`` under which
   every MSR instance stops converging -- the per-round views of the
   two value camps reduce to unanimous multisets at their own value, so
   the diameter freezes forever.  This demonstrates the bound's
   tightness against the paper's own algorithm class, round after
   round, with real agent movement (pools alternate so ``|cured| = f``
   every round, the Corollary 1 worst case).

Observation 2 (one-round computations starting without cured processes
obey the classical static bound ``n >= 3f + 1``) is covered by
:func:`classical_static_scenario`, which is exactly the M4 triple.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass

from ..faults.adversary import Adversary
from ..faults.models import MobileModel, get_semantics
from ..faults.movement import AlternatingPools, StaticAgents
from ..faults.value_strategies import SplitAttack
from ..msr.multiset import ValueMultiset
from ..runtime.config import MobileFaultSetup, SimulationConfig
from ..runtime.termination import FixedRounds
from .specification import SimpleAgreementVerdict, check_simple_agreement

__all__ = [
    "Group",
    "Execution",
    "LowerBoundScenario",
    "ScenarioVerification",
    "lower_bound_scenario",
    "classical_static_scenario",
    "run_algorithm_on_scenario",
    "AlgorithmDefeat",
    "stall_configuration",
    "stall_group_ids",
]

# --------------------------------------------------------------------------
# Indistinguishability triples
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Group:
    """A block of ``size`` identically-behaving processes."""

    name: str
    size: int
    #: "correct", "cured" or "byzantine" -- the role in the scenario.
    role: str

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"group {self.name} must have positive size")
        if self.role not in ("correct", "cured", "byzantine"):
            raise ValueError(f"unknown role {self.role!r}")


@dataclass(frozen=True)
class Execution:
    """One single-round execution of a lower-bound scenario.

    ``proposals`` gives each non-Byzantine group's proposing value.
    ``sends`` overrides a group's outgoing messages: a mapping from
    target group name to the value every member sends to that group's
    members, or ``None`` for silence.  Groups without an override
    broadcast their proposal (the correct behaviour).
    ``forced_decision`` is the output Agreement+Validity force on every
    correct process (set for E1/E2 where all correct inputs agree).
    """

    name: str
    proposals: Mapping[str, float]
    sends: Mapping[str, Mapping[str, float] | None]
    forced_decision: float | None = None


class LowerBoundScenario:
    """A complete E1/E2/E3 construction for one model and one ``f``."""

    def __init__(
        self,
        model: MobileModel,
        f: int,
        groups: tuple[Group, ...],
        executions: tuple[Execution, Execution, Execution],
        view_matches: tuple[tuple[str, str, str], ...],
        description: str,
    ) -> None:
        self.model = model
        self.f = f
        self.groups = groups
        self.executions = {execution.name: execution for execution in executions}
        #: Entries ``(execution_a, group, execution_b)``: the group's view
        #: in execution_a must equal its view in execution_b.
        self.view_matches = view_matches
        self.description = description

    @property
    def n(self) -> int:
        """Total process count -- exactly the bound value ``n_Mi - 1``
        expressed as ``coefficient * f``."""
        return sum(group.size for group in self.groups)

    def group(self, name: str) -> Group:
        for group in self.groups:
            if group.name == name:
                return group
        raise KeyError(f"unknown group {name!r}")

    def view(self, execution_name: str, observer_group: str) -> ValueMultiset:
        """The received multiset of a member of ``observer_group``.

        Every process receives from every non-silent sender, itself
        included; group members behave identically, so one view per
        group suffices.
        """
        execution = self.executions[execution_name]
        self.group(observer_group)  # validates the name
        values: list[float] = []
        for sender in self.groups:
            override = execution.sends.get(sender.name, _NOT_OVERRIDDEN)
            if override is _NOT_OVERRIDDEN:
                if sender.role == "byzantine":
                    raise ValueError(
                        f"execution {execution.name}: byzantine group "
                        f"{sender.name} needs an explicit send override"
                    )
                value = execution.proposals[sender.name]
                values.extend([value] * sender.size)
            elif override is None:
                continue  # silent: detected omission, absent from views
            else:
                values.extend([override[observer_group]] * sender.size)
        return ValueMultiset(values)

    def correct_inputs(self, execution_name: str) -> dict[str, float]:
        """Proposals of the correct groups in an execution."""
        execution = self.executions[execution_name]
        return {
            group.name: execution.proposals[group.name]
            for group in self.groups
            if group.role == "correct"
        }

    def verify(self) -> "ScenarioVerification":
        """Check the indistinguishability argument end to end."""
        match_results = []
        for execution_a, group_name, execution_b in self.view_matches:
            view_a = self.view(execution_a, group_name)
            view_b = self.view(execution_b, group_name)
            match_results.append(
                ViewMatch(
                    execution_a=execution_a,
                    execution_b=execution_b,
                    group=group_name,
                    matches=view_a == view_b,
                    view=view_a,
                )
            )
        forced: dict[str, float] = {}
        for execution_a, group_name, execution_b in self.view_matches:
            source = self.executions[execution_b]
            if source.forced_decision is None:
                raise ValueError(
                    f"execution {execution_b} needs a forced decision"
                )
            forced[group_name] = source.forced_decision
        inputs_e3 = self.correct_inputs("E3")
        verdict = check_simple_agreement(
            inputs={i: v for i, v in enumerate(inputs_e3.values())},
            outputs={i: v for i, v in enumerate(forced.values())},
        )
        return ScenarioVerification(
            scenario=self,
            matches=tuple(match_results),
            forced_decisions=forced,
            e3_verdict=verdict,
        )


_NOT_OVERRIDDEN = object()


@dataclass(frozen=True)
class ViewMatch:
    """One asserted view equality between two executions."""

    execution_a: str
    execution_b: str
    group: str
    matches: bool
    view: ValueMultiset

    def __str__(self) -> str:
        status = "==" if self.matches else "!="
        return (
            f"view({self.execution_a}, {self.group}) {status} "
            f"view({self.execution_b}, {self.group}): {self.view!r}"
        )


@dataclass(frozen=True)
class ScenarioVerification:
    """Outcome of :meth:`LowerBoundScenario.verify`."""

    scenario: LowerBoundScenario
    matches: tuple[ViewMatch, ...]
    #: Decision each matched correct group is forced to make in E3.
    forced_decisions: Mapping[str, float]
    #: Simple-Agreement verdict of those forced E3 decisions.
    e3_verdict: SimpleAgreementVerdict

    @property
    def proves_impossibility(self) -> bool:
        """True when the argument is airtight: all views match and the
        forced decisions violate Agreement in E3."""
        return all(match.matches for match in self.matches) and (
            not self.e3_verdict.agreement
        )

    def summary(self) -> str:
        model = self.scenario.model.value
        outcome = "impossible" if self.proves_impossibility else "INCONCLUSIVE"
        return (
            f"{model}: n={self.scenario.n} (= {self.scenario.n // self.scenario.f}f), "
            f"f={self.scenario.f}: {outcome} -- forced decisions "
            f"{dict(self.forced_decisions)} in E3"
        )


def lower_bound_scenario(
    model: MobileModel | str,
    f: int = 1,
    low: float = 0.0,
    high: float = 1.0,
) -> LowerBoundScenario:
    """Build the paper's Theorem 3-6 construction for a model.

    Every scenario has exactly ``n = coefficient * f`` processes (one
    process below the model's requirement) and shows no algorithm can
    solve Simple Approximate Agreement there.  The paper states the
    proofs with inputs 0 and 1; the construction is value-generic, so
    ``low``/``high`` may be any pair with ``low < high`` (property
    tests sweep them).
    """
    semantics = get_semantics(model)
    if f < 1:
        raise ValueError("lower-bound scenarios need f >= 1")
    if not low < high:
        raise ValueError(f"need low < high, got {low} >= {high}")
    model = semantics.model
    if model is MobileModel.GARAY:
        return _garay_scenario(f, low, high)
    if model is MobileModel.BONNET:
        return _bonnet_scenario(f, low, high)
    if model is MobileModel.SASAKI:
        return _sasaki_scenario(f, low, high)
    return _buhrman_scenario(f, low, high)


def classical_static_scenario(
    f: int = 1, low: float = 0.0, high: float = 1.0
) -> LowerBoundScenario:
    """Observation 2: the classical FLM [14] triple at ``n = 3f``.

    One-round computations starting with ``f`` Byzantine processes and
    no cured ones face exactly the static bound; the construction is
    the same as M4's.
    """
    return _buhrman_scenario(f, low, high)


def _garay_scenario(f: int, low: float, high: float) -> LowerBoundScenario:
    """Theorem 3: M1 at ``n = 4f``.  The cured group is silent."""
    groups = (
        Group("B", f, "byzantine"),
        Group("T", f, "cured"),
        Group("A", f, "correct"),
        Group("C", f, "correct"),
    )

    def to_all(value: float) -> dict[str, float]:
        return {name: value for name in ("A", "B", "C", "T")}

    silent: Mapping[str, Mapping[str, float] | None] = {"T": None}
    e1 = Execution(
        name="E1",
        proposals={"A": low, "C": low, "T": low},
        sends={**silent, "B": to_all(high)},
        forced_decision=low,
    )
    e2 = Execution(
        name="E2",
        proposals={"A": high, "C": high, "T": high},
        sends={**silent, "B": to_all(low)},
        forced_decision=high,
    )
    e3 = Execution(
        name="E3",
        proposals={"A": low, "C": high, "T": low},
        sends={
            **silent,
            "B": {"A": low, "C": high, "B": low, "T": low},
        },
    )
    return LowerBoundScenario(
        model=MobileModel.GARAY,
        f=f,
        groups=groups,
        executions=(e1, e2, e3),
        view_matches=(("E3", "A", "E1"), ("E3", "C", "E2")),
        description=(
            "n = 4f: byzantine group B splits while cured group T is "
            "silent; A's E3 view equals its E1 view, C's equals its E2 view"
        ),
    )


def _bonnet_scenario(f: int, low: float, high: float) -> LowerBoundScenario:
    """Theorem 4: M2 at ``n = 5f``.  The cured group broadcasts its
    (corrupted) proposal, identically to everybody."""
    groups = (
        Group("B", f, "byzantine"),
        Group("T", f, "cured"),
        Group("A", f, "correct"),
        Group("C", f, "correct"),
        Group("D", f, "correct"),
    )
    names = ("A", "B", "C", "D", "T")

    def to_all(value: float) -> dict[str, float]:
        return {name: value for name in names}

    e1 = Execution(
        name="E1",
        proposals={"A": low, "C": low, "D": low, "T": high},
        sends={"B": to_all(high)},
        forced_decision=low,
    )
    e2 = Execution(
        name="E2",
        proposals={"A": high, "C": high, "D": high, "T": low},
        sends={"B": to_all(low)},
        forced_decision=high,
    )
    e3 = Execution(
        name="E3",
        proposals={"A": low, "C": high, "D": low, "T": high},
        sends={"B": {"A": low, "C": high, "B": low, "D": low, "T": low}},
    )
    return LowerBoundScenario(
        model=MobileModel.BONNET,
        f=f,
        groups=groups,
        executions=(e1, e2, e3),
        view_matches=(("E3", "A", "E1"), ("E3", "C", "E2")),
        description=(
            "n = 5f: cured group T broadcasts its corrupted value; the "
            "byzantine split makes A's E3 view equal E1's and C's equal E2's"
        ),
    )


def _sasaki_scenario(f: int, low: float, high: float) -> LowerBoundScenario:
    """Theorem 5: M3 at ``n = 6f``.  Cured processes send the planted
    queue, i.e. behave asymmetrically -- effectively 2f byzantine."""
    groups = (
        Group("B", f, "byzantine"),
        Group("T", f, "cured"),
        Group("A", 2 * f, "correct"),
        Group("C", 2 * f, "correct"),
    )
    names = ("A", "B", "C", "T")

    def to_all(value: float) -> dict[str, float]:
        return {name: value for name in names}

    e1 = Execution(
        name="E1",
        proposals={"A": low, "C": low, "T": low},
        sends={"B": to_all(high), "T": to_all(high)},
        forced_decision=low,
    )
    e2 = Execution(
        name="E2",
        proposals={"A": high, "C": high, "T": high},
        sends={"B": to_all(low), "T": to_all(low)},
        forced_decision=high,
    )
    split = {"A": low, "C": high, "B": low, "T": low}
    e3 = Execution(
        name="E3",
        proposals={"A": low, "C": high, "T": low},
        sends={"B": dict(split), "T": dict(split)},
    )
    return LowerBoundScenario(
        model=MobileModel.SASAKI,
        f=f,
        groups=groups,
        executions=(e1, e2, e3),
        view_matches=(("E3", "A", "E1"), ("E3", "C", "E2")),
        description=(
            "n = 6f: byzantine and planted-queue cured groups (2f "
            "asymmetric senders) split the 4f correct processes"
        ),
    )


def _buhrman_scenario(f: int, low: float, high: float) -> LowerBoundScenario:
    """Theorem 6: M4 at ``n = 3f`` -- the classical FLM construction."""
    groups = (
        Group("B", f, "byzantine"),
        Group("A", f, "correct"),
        Group("C", f, "correct"),
    )
    names = ("A", "B", "C")

    def to_all(value: float) -> dict[str, float]:
        return {name: value for name in names}

    e1 = Execution(
        name="E1",
        proposals={"A": low, "C": low},
        sends={"B": to_all(high)},
        forced_decision=low,
    )
    e2 = Execution(
        name="E2",
        proposals={"A": high, "C": high},
        sends={"B": to_all(low)},
        forced_decision=high,
    )
    e3 = Execution(
        name="E3",
        proposals={"A": low, "C": high},
        sends={"B": {"A": low, "C": high, "B": low}},
    )
    return LowerBoundScenario(
        model=MobileModel.BUHRMAN,
        f=f,
        groups=groups,
        executions=(e1, e2, e3),
        view_matches=(("E3", "A", "E1"), ("E3", "C", "E2")),
        description=(
            "n = 3f: no cured processes exist at send time, so the "
            "classical FLM split applies directly"
        ),
    )


# --------------------------------------------------------------------------
# Running concrete algorithms against the triples
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class AlgorithmDefeat:
    """A concrete algorithm's decisions across the E-triple."""

    scenario: LowerBoundScenario
    decisions: Mapping[str, Mapping[str, float]]
    e3_verdict: SimpleAgreementVerdict

    @property
    def defeated(self) -> bool:
        """Whether E3 made the algorithm violate Simple Agreement."""
        return not self.e3_verdict.satisfied


def run_algorithm_on_scenario(
    scenario: LowerBoundScenario,
    choose: Callable[[ValueMultiset], float],
) -> AlgorithmDefeat:
    """Apply a deterministic choice function to every view of the triple.

    ``choose`` maps a received multiset to a decision (e.g. an
    :class:`~repro.msr.base.MSRFunction`).  Because E3's views coincide
    with E1's and E2's per the verified matches, the function
    necessarily repeats its E1/E2 choices inside E3.
    """
    decisions: dict[str, dict[str, float]] = {}
    correct_groups = [g.name for g in scenario.groups if g.role == "correct"]
    for execution_name in scenario.executions:
        decisions[execution_name] = {
            group: choose(scenario.view(execution_name, group))
            for group in correct_groups
        }
    inputs = scenario.correct_inputs("E3")
    verdict = check_simple_agreement(
        inputs={i: v for i, v in enumerate(inputs.values())},
        outputs={i: v for i, v in enumerate(decisions["E3"].values())},
    )
    return AlgorithmDefeat(
        scenario=scenario,
        decisions={k: dict(v) for k, v in decisions.items()},
        e3_verdict=verdict,
    )


# --------------------------------------------------------------------------
# Sustained stall adversaries at n = n_Mi
# --------------------------------------------------------------------------


def stall_group_ids(model: MobileModel | str, f: int) -> dict[str, list[int]]:
    """Process-id layout of the stall scenario for a model.

    ``low``/``high`` are the two correct value camps; ``pool_a``/
    ``pool_b`` host the alternating agents (``pool_b`` empty for M4,
    where agents never need to move).
    """
    semantics = get_semantics(model)
    model = semantics.model
    if f < 1:
        raise ValueError("stall scenarios need f >= 1")
    if model is MobileModel.GARAY:  # n = 4f
        return {
            "low": list(range(0, f)),
            "high": list(range(f, 2 * f)),
            "pool_a": list(range(2 * f, 3 * f)),
            "pool_b": list(range(3 * f, 4 * f)),
        }
    if model is MobileModel.BONNET:  # n = 5f
        return {
            "low": list(range(0, 2 * f)),
            "high": list(range(2 * f, 3 * f)),
            "pool_a": list(range(3 * f, 4 * f)),
            "pool_b": list(range(4 * f, 5 * f)),
        }
    if model is MobileModel.SASAKI:  # n = 6f
        return {
            "low": list(range(0, 2 * f)),
            "high": list(range(2 * f, 4 * f)),
            "pool_a": list(range(4 * f, 5 * f)),
            "pool_b": list(range(5 * f, 6 * f)),
        }
    return {  # Buhrman, n = 3f
        "low": list(range(0, f)),
        "high": list(range(f, 2 * f)),
        "pool_a": list(range(2 * f, 3 * f)),
        "pool_b": [],
    }


def stall_configuration(
    model: MobileModel | str,
    f: int,
    algorithm,
    rounds: int = 25,
    extra_processes: int = 0,
) -> SimulationConfig:
    """A run at ``n = n_Mi (+ extra)`` under the stall adversary.

    With ``extra_processes = 0`` the system sits exactly at the bound
    value the paper proves insufficient: the split attack plus
    pool-alternating movement freezes the diameter after at most one
    round.  With ``extra_processes = 1`` the same adversary faces
    ``n = n_Mi + 1`` and the paper's Theorem 2 applies: the run must
    converge -- experiments use both sides.

    ``algorithm`` is the MSR instance (trim parameter already set for
    the model, see :func:`repro.core.mapping.msr_trim_parameter`).
    """
    semantics = get_semantics(model)
    model = semantics.model
    layout = stall_group_ids(model, f)
    base_n = sum(len(ids) for ids in layout.values())
    n = base_n + extra_processes

    initial = [0.0] * n
    for pid in layout["high"]:
        initial[pid] = 1.0
    for pid in layout["pool_a"] + layout["pool_b"]:
        initial[pid] = 1.0
    for pid in range(base_n, n):
        initial[pid] = 0.0  # extra processes join the low camp

    if model is MobileModel.BUHRMAN:
        movement = StaticAgents(layout["pool_a"])
    else:
        movement = AlternatingPools(layout["pool_a"], layout["pool_b"])
    adversary = Adversary(movement=movement, values=SplitAttack())

    return SimulationConfig(
        n=n,
        f=f,
        initial_values=tuple(initial),
        algorithm=algorithm,
        setup=MobileFaultSetup(model=model, adversary=adversary),
        termination=FixedRounds(rounds),
        epsilon=1e-3,
        bound_check="ignore",
    )

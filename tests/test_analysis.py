"""Tests for trace metrics, table rendering and series rendering."""

from __future__ import annotations

import pytest

from repro.analysis import (
    Series,
    convergence_stats,
    render_series,
    render_table,
    rounds_until,
    sparkline,
)
from repro.analysis.metrics import ConvergenceStats
from repro.faults import MobileModel
from tests.helpers import run_mobile


@pytest.fixture(scope="module")
def trace():
    return run_mobile(MobileModel.GARAY, rounds=10, seed=6)


class TestConvergenceStats:
    def test_trajectory_matches_trace(self, trace):
        stats = convergence_stats(trace)
        assert stats.trajectory == tuple(trace.diameters())
        assert stats.rounds == 10

    def test_converged_flag(self, trace):
        assert convergence_stats(trace).converged

    def test_factors_bounded(self, trace):
        stats = convergence_stats(trace)
        assert 0.0 <= stats.mean_factor <= stats.worst_factor <= 1.0

    def test_stalled_from_detects_plateau(self):
        stats = ConvergenceStats(
            initial_diameter=1.0,
            final_diameter=0.5,
            rounds=4,
            worst_factor=1.0,
            mean_factor=0.8,
            trajectory=(1.0, 0.5, 0.5, 0.5, 0.5),
        )
        assert stats.stalled_from() == 1

    def test_stalled_from_ignores_converged_zero(self):
        stats = ConvergenceStats(
            initial_diameter=1.0,
            final_diameter=0.0,
            rounds=3,
            worst_factor=0.5,
            mean_factor=0.5,
            trajectory=(1.0, 0.5, 0.0, 0.0),
        )
        assert stats.stalled_from() is None

    def test_rounds_until(self, trace):
        assert rounds_until(trace, 1e12) == 0
        needed = rounds_until(trace, 1e-3)
        assert needed is not None and 1 <= needed <= 10

    def test_rounds_until_unreachable(self, trace):
        assert rounds_until(trace, -1.0) is None


class TestRenderTable:
    def test_alignment_and_content(self):
        text = render_table(["name", "value"], [["a", 1], ["bb", 2.5]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "---" in lines[1]
        assert "2.5" in lines[3]

    def test_title(self):
        text = render_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_booleans_render_yes_no(self):
        text = render_table(["ok"], [[True], [False]])
        assert "yes" in text and "no" in text

    def test_wrong_row_width_rejected(self):
        with pytest.raises(ValueError, match="columns"):
            render_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        text = render_table(["v"], [[0.123456789]])
        assert "0.1235" in text


class TestSeries:
    def test_sparkline_monotone_decay(self):
        line = sparkline([1.0, 0.5, 0.25, 0.125])
        assert len(line) == 4
        # Log-scale decay maps to non-increasing glyph density.
        glyphs = " .:-=+*#%@"
        levels = [glyphs.index(ch) for ch in line]
        assert levels == sorted(levels, reverse=True)

    def test_sparkline_constant(self):
        assert sparkline([2.0, 2.0, 2.0]) == "@@@"

    def test_sparkline_empty(self):
        assert sparkline([]) == ""

    def test_render_series_contains_labels(self):
        text = render_series(
            [Series.of("alpha", [1.0, 0.5]), Series.of("beta", [1.0, 0.9])],
            title="T",
        )
        assert "alpha" in text and "beta" in text and text.startswith("T")

    def test_render_series_truncates(self):
        text = render_series(
            [Series.of("long", list(range(1, 40)))], max_points=4
        )
        assert "..." in text

"""Tests for adversary views, value strategies and movement strategies."""

from __future__ import annotations

import random

import pytest

from repro.faults import (
    Adversary,
    AdversaryView,
    AlternatingPools,
    EchoCorrect,
    FixedValue,
    OutlierAttack,
    RandomJump,
    RandomNoise,
    RoundRobinWalk,
    ScriptedMovement,
    SplitAttack,
    StaticAgents,
    TargetExtremes,
)


def make_view(
    values=None,
    positions=frozenset({0}),
    cured=frozenset(),
    n=None,
    f=1,
    round_index=1,
    seed=0,
):
    if values is None:
        values = {0: 9.9, 1: 0.0, 2: 0.4, 3: 1.0}
    if n is None:
        n = len(values)
    correct = {
        pid: value
        for pid, value in values.items()
        if pid not in positions and pid not in cured
    }
    return AdversaryView(
        round_index=round_index,
        n=n,
        f=f,
        values=values,
        positions=positions,
        cured=cured,
        correct_values=correct,
        rng=random.Random(seed),
    )


class TestAdversaryView:
    def test_correct_range_excludes_faulty(self):
        view = make_view()
        interval = view.correct_range()
        assert (interval.low, interval.high) == (0.0, 1.0)

    def test_correct_ids(self):
        assert make_view().correct_ids == frozenset({1, 2, 3})

    def test_midpoint(self):
        assert make_view().correct_midpoint() == 0.5

    def test_range_falls_back_to_all_values(self):
        view = make_view(values={0: 2.0}, positions=frozenset({0}))
        assert view.correct_range().low == 2.0

    def test_empty_view_raises(self):
        view = make_view(values={}, positions=frozenset())
        with pytest.raises(ValueError):
            view.correct_range()


class TestValueStrategies:
    def test_fixed_value(self):
        strategy = FixedValue(42.0)
        assert strategy.attack_message(make_view(), 0, 1) == 42.0
        assert strategy.departure_value(make_view(), 0) == 42.0

    def test_split_sends_low_to_low_half(self):
        strategy = SplitAttack()
        view = make_view()
        assert strategy.attack_message(view, 0, 1) == 0.0  # value 0.0 <= mid
        assert strategy.attack_message(view, 0, 3) == 1.0  # value 1.0 > mid

    def test_split_symmetric_variant_is_high(self):
        assert SplitAttack().attack_message(make_view(), 0, None) == 1.0

    def test_split_explicit_anchors(self):
        strategy = SplitAttack(low=-5.0, high=5.0)
        view = make_view()
        assert strategy.attack_message(view, 0, 1) == -5.0
        assert strategy.attack_message(view, 0, 3) == 5.0

    def test_split_unknown_recipient_uses_parity(self):
        strategy = SplitAttack()
        view = make_view(values={0: 0.0, 1: 1.0}, positions=frozenset())
        assert strategy.attack_message(view, 0, 4) == 0.0
        assert strategy.attack_message(view, 0, 5) == 1.0

    def test_outlier_leaves_correct_range(self):
        strategy = OutlierAttack(magnitude=100.0)
        view = make_view()
        high = strategy.attack_message(view, 0, 0)
        low = strategy.attack_message(view, 0, 1)
        assert high == 101.0
        assert low == -100.0

    def test_outlier_requires_positive_magnitude(self):
        with pytest.raises(ValueError):
            OutlierAttack(magnitude=0.0)

    def test_noise_is_seed_deterministic(self):
        strategy = RandomNoise()
        a = strategy.attack_message(make_view(seed=5), 0, 1)
        b = strategy.attack_message(make_view(seed=5), 0, 1)
        assert a == b

    def test_noise_spread_validation(self):
        with pytest.raises(ValueError):
            RandomNoise(spread=0.0)

    def test_echo_sends_midpoint(self):
        assert EchoCorrect().attack_message(make_view(), 0, 1) == 0.5

    def test_planted_defaults_to_attack(self):
        strategy = SplitAttack()
        view = make_view()
        assert strategy.planted_message(view, 0, 1) == strategy.attack_message(
            view, 0, 1
        )

    def test_corrupted_compute_defaults_to_departure(self):
        strategy = FixedValue(7.0)
        assert strategy.corrupted_compute(make_view(), 2) == 7.0


class TestMovementStrategies:
    def test_static_agents_stay(self):
        strategy = StaticAgents()
        rng = random.Random(0)
        initial = strategy.initial_positions(5, 2, rng)
        assert initial == frozenset({0, 1})
        view = make_view(
            values={i: float(i) for i in range(5)}, positions=initial, f=2
        )
        assert strategy.next_positions(view) == initial

    def test_static_agents_custom_positions(self):
        strategy = StaticAgents([3, 4])
        assert strategy.initial_positions(5, 2, random.Random(0)) == frozenset({3, 4})

    def test_static_agents_validates_count(self):
        with pytest.raises(ValueError, match="agents"):
            StaticAgents([0, 1, 2]).initial_positions(5, 2, random.Random(0))

    def test_round_robin_shifts_by_f(self):
        strategy = RoundRobinWalk()
        view = make_view(
            values={i: float(i) for i in range(6)},
            positions=frozenset({0, 1}),
            f=2,
            n=6,
        )
        assert strategy.next_positions(view) == frozenset({2, 3})

    def test_round_robin_wraps(self):
        strategy = RoundRobinWalk(stride=2)
        view = make_view(
            values={i: float(i) for i in range(4)},
            positions=frozenset({3}),
            f=1,
            n=4,
        )
        assert strategy.next_positions(view) == frozenset({1})

    def test_round_robin_invalid_stride(self):
        with pytest.raises(ValueError):
            RoundRobinWalk(stride=0)

    def test_random_jump_bounded_count(self):
        strategy = RandomJump()
        positions = strategy.initial_positions(10, 3, random.Random(1))
        assert len(positions) == 3
        view = make_view(
            values={i: 0.0 for i in range(10)}, positions=positions, f=3, n=10
        )
        assert len(strategy.next_positions(view)) == 3

    def test_random_jump_can_linger(self):
        strategy = RandomJump(move_probability=0.0)
        positions = frozenset({2})
        view = make_view(
            values={i: 0.0 for i in range(4)}, positions=positions, f=1, n=4
        )
        assert strategy.next_positions(view) == positions

    def test_random_jump_probability_validated(self):
        with pytest.raises(ValueError):
            RandomJump(move_probability=1.5)

    def test_alternating_pools(self):
        strategy = AlternatingPools([0], [1])
        rng = random.Random(0)
        assert strategy.initial_positions(4, 1, rng) == frozenset({0})
        view_a = make_view(
            values={i: 0.0 for i in range(4)}, positions=frozenset({0}), n=4
        )
        assert strategy.next_positions(view_a) == frozenset({1})
        view_b = make_view(
            values={i: 0.0 for i in range(4)}, positions=frozenset({1}), n=4
        )
        assert strategy.next_positions(view_b) == frozenset({0})

    def test_alternating_pools_must_be_disjoint(self):
        with pytest.raises(ValueError, match="disjoint"):
            AlternatingPools([0, 1], [1, 2])

    def test_alternating_pools_nonempty(self):
        with pytest.raises(ValueError):
            AlternatingPools([], [1])

    def test_target_extremes_picks_extreme_holders(self):
        strategy = TargetExtremes()
        view = make_view(
            values={0: 0.0, 1: 0.5, 2: 0.4, 3: 1.0},
            positions=frozenset(),
            f=2,
            n=4,
        )
        assert strategy.next_positions(view) == frozenset({0, 3})

    def test_scripted_movement_follows_script(self):
        strategy = ScriptedMovement([[0], [1], [2]])
        rng = random.Random(0)
        assert strategy.initial_positions(4, 1, rng) == frozenset({0})
        view = make_view(values={i: 0.0 for i in range(4)}, n=4)
        assert strategy.next_positions(view) == frozenset({1})
        assert strategy.next_positions(view) == frozenset({2})
        # Past the end: repeats the last entry.
        assert strategy.next_positions(view) == frozenset({2})

    def test_scripted_movement_reset_on_initial(self):
        strategy = ScriptedMovement([[0], [1]])
        rng = random.Random(0)
        view = make_view(values={i: 0.0 for i in range(4)}, n=4)
        strategy.initial_positions(4, 1, rng)
        strategy.next_positions(view)
        # Re-initialising replays the script from the start.
        assert strategy.initial_positions(4, 1, rng) == frozenset({0})
        assert strategy.next_positions(view) == frozenset({1})

    def test_scripted_requires_entries(self):
        with pytest.raises(ValueError):
            ScriptedMovement([])


class TestAdversary:
    def test_defaults(self):
        adversary = Adversary()
        assert isinstance(adversary.movement, StaticAgents)
        assert isinstance(adversary.values, SplitAttack)

    def test_delegation(self):
        adversary = Adversary(StaticAgents([2]), FixedValue(3.0))
        rng = random.Random(0)
        assert adversary.initial_positions(4, 1, rng) == frozenset({2})
        assert adversary.attack_message(make_view(), 0, 1) == 3.0
        assert adversary.departure_value(make_view(), 0) == 3.0
        assert adversary.planted_message(make_view(), 0, 1) == 3.0
        assert adversary.corrupted_compute(make_view(), 0) == 3.0

    def test_describe_combines_parts(self):
        adversary = Adversary(RoundRobinWalk(), SplitAttack())
        text = adversary.describe()
        assert "round-robin" in text and "split" in text

"""Tests for approximate interactive consistency under MBF."""

from __future__ import annotations

import pytest

from repro.extensions import interactive_consistency
from repro.faults import get_semantics

INPUTS_M1 = (0.9, 0.1, 0.5, 0.7, 0.3)  # n = 5 = 4f + 1 for f = 1


class TestInteractiveConsistency:
    def test_vectors_agree_entrywise(self, model):
        semantics = get_semantics(model)
        n = semantics.required_n(1)
        inputs = tuple((i * 7 % n) / n for i in range(n))
        result = interactive_consistency(
            inputs, model=model, f=1, rounds=40, seed=3
        )
        assert result.agreement_spread() <= 1e-6

    def test_exact_validity_for_correct_sources(self, model):
        semantics = get_semantics(model)
        n = semantics.required_n(1)
        inputs = tuple((i * 7 % n) / n for i in range(n))
        result = interactive_consistency(
            inputs, model=model, f=1, rounds=40, seed=3
        )
        # Correct sources disseminated one exact value: unanimity is an
        # MSR fixpoint, so their coordinates never move at all.
        assert result.exact_validity_error() <= 1e-12

    def test_faulty_sources_detected(self):
        result = interactive_consistency(INPUTS_M1, model="M1", f=1, seed=0)
        assert len(result.faulty_sources) == 1
        assert all(0 <= pid < 5 for pid in result.faulty_sources)

    def test_faulty_source_coordinates_still_agree(self):
        result = interactive_consistency(
            INPUTS_M1, model="M1", f=1, rounds=40, seed=0
        )
        source = next(iter(result.faulty_sources))
        estimates = {vector[source] for vector in result.vectors.values()}
        assert max(estimates) - min(estimates) <= 1e-6

    def test_every_coordinate_satisfies_the_spec(self):
        result = interactive_consistency(
            INPUTS_M1, model="M1", f=1, rounds=40, seed=1
        )
        for verdict in result.coordinate_verdicts():
            assert verdict.satisfied

    def test_vector_shape(self):
        result = interactive_consistency(INPUTS_M1, model="M1", f=1, seed=2)
        assert result.n == 5
        for vector in result.vectors.values():
            assert len(vector) == 5

    def test_undersized_n_rejected(self):
        with pytest.raises(ValueError, match="n >="):
            interactive_consistency((0.0, 1.0, 0.5), model="M1", f=1)

    def test_value_dependent_movement_rejected(self):
        with pytest.raises(ValueError):
            interactive_consistency(INPUTS_M1, movement="target-extremes")

    def test_deterministic(self):
        inputs = INPUTS_M1 + (0.6,)  # n = 6 = 5f + 1 for M2
        a = interactive_consistency(inputs, model="M2", f=1, seed=9,
                                    movement="random")
        b = interactive_consistency(inputs, model="M2", f=1, seed=9,
                                    movement="random")
        assert a.vectors == b.vectors

    def test_f2_at_table2_minimum(self):
        n = get_semantics("M2").required_n(2)
        inputs = tuple(i / (n - 1) for i in range(n))
        result = interactive_consistency(
            inputs, model="M2", f=2, rounds=50, seed=4
        )
        assert result.agreement_spread() <= 1e-6
        assert result.exact_validity_error() <= 1e-12

"""Cell-cache tests: warm results bit-identical, bad entries distrusted.

The cache contract has three legs, all asserted here: (1) a warm-cache
sweep is bit-identical to the cold run that populated it; (2) the
content hash covers everything a result depends on -- spec fields,
trace detail, probe -- so any change misses instead of aliasing; (3) a
corrupted, truncated or foreign entry is never trusted: it reads as a
miss and the cell re-executes.
"""

from __future__ import annotations

import pytest

from tests.helpers import small_grid

from repro.sweep import CellStore, run_cell, run_sweep
from repro.sweep.cache import result_from_dict, result_to_dict


@pytest.fixture(scope="module")
def grid():
    return small_grid()


@pytest.fixture(scope="module")
def reference(grid):
    return run_sweep(grid, workers=1)


@pytest.fixture
def store(tmp_path):
    return CellStore(tmp_path / "cache")


def _a_cell(grid):
    return next(iter(grid.cells()))


class TestWarmEqualsCold:
    def test_warm_sweep_is_bit_identical(self, grid, reference, store):
        cold = run_sweep(grid, cache=store)
        assert store.hits == 0 and store.misses == len(grid)
        warm = run_sweep(grid, cache=store)
        assert store.hits == len(grid)
        assert warm == cold == reference
        assert warm.summary_table() == reference.summary_table()
        assert warm.cell_table() == reference.cell_table()
        assert warm.diameter_series() == reference.diameter_series()

    def test_cache_accepts_plain_directory_path(self, grid, reference, tmp_path):
        run_sweep(grid, cache=tmp_path / "c")
        assert run_sweep(grid, cache=str(tmp_path / "c")) == reference

    def test_parallel_sweep_through_cache_matches(self, grid, reference, store):
        cold = run_sweep(grid, workers=2, cache=store)
        warm = run_sweep(grid, workers=2, cache=store)
        assert cold.cells == warm.cells == reference.cells

    def test_overlapping_grid_reuses_the_overlap(self, grid, store):
        run_sweep(grid, cache=store)
        store.hits = store.misses = 0
        wider = list(grid.cells()) + [
            cell for cell in small_grid(seeds=3).cells() if cell.seed == 2
        ]
        result = run_sweep(wider, cache=store)
        assert store.hits == len(grid)
        assert store.misses == len(wider) - len(grid)
        assert len(result) == len(wider)

    def test_prepopulated_cells_are_not_reexecuted(self, grid, store):
        cells = list(grid.cells())
        for cell in cells[::2]:
            store.save(run_cell(cell), "lite")
        result = run_sweep(grid, cache=store)
        assert store.hits == len(cells[::2])
        assert store.misses == len(cells) - len(cells[::2])
        assert result == run_sweep(grid)


class TestKeyCoverage:
    def test_key_changes_with_spec(self, grid, store):
        from dataclasses import replace

        cell = _a_cell(grid)
        changed = [
            replace(cell, seed=cell.seed + 101),
            replace(cell, epsilon=5e-4),
            replace(cell, scenario="stall"),
            replace(cell, params=(("extra", 1),)),
        ]
        keys = {store.cell_key(cell, "lite")}
        keys.update(store.cell_key(other, "lite") for other in changed)
        assert len(keys) == len(changed) + 1

    def test_key_changes_with_trace_detail(self, grid, store):
        cell = _a_cell(grid)
        assert store.cell_key(cell, "lite") != store.cell_key(cell, "full")

    def test_key_changes_with_topology_but_default_is_omitted(self, grid, store):
        from dataclasses import replace

        from repro.sweep.cache import spec_to_dict

        cell = _a_cell(grid)
        ringed = replace(cell, family="witness", topology="ring:2")
        assert store.cell_key(cell, "lite") != store.cell_key(ringed, "lite")
        # The default spec is omitted from the canonical encoding, so
        # every pre-topology cache entry keeps its content hash.
        assert "topology" not in spec_to_dict(cell)
        assert spec_to_dict(ringed)["topology"] == "ring:2"

    def test_topology_cell_round_trips_through_the_store(self, store):
        from repro.sweep import CellSpec, run_cell

        cell = CellSpec(
            model="M1",
            f=1,
            n=9,
            algorithm="ftm",
            movement="round-robin",
            attack="split",
            epsilon=1e-3,
            seed=0,
            rounds=8,
            family="witness",
            topology="ring:2",
        )
        result = run_cell(cell)
        assert result.error is None
        store.save(result, "lite")
        assert store.load(cell, "lite") == result

    def test_key_changes_with_probe(self, grid, store):
        cell = _a_cell(grid)
        assert store.cell_key(cell, "full") != store.cell_key(
            cell, "full", "send-classification"
        )

    def test_detail_mismatch_is_a_miss(self, grid, store):
        cell = _a_cell(grid)
        store.save(run_cell(cell, trace_detail="lite"), "lite")
        assert store.load(cell, "full") is None
        assert store.load(cell, "lite") is not None


class TestUntrustedEntries:
    def test_corrupted_entry_is_reexecuted(self, grid, store):
        cell = _a_cell(grid)
        expected = run_cell(cell)
        path = store.save(expected, "lite")
        path.write_text("{ this is not json")
        assert store.load(cell, "lite") is None
        result = run_sweep([cell], cache=store)
        assert result.cells[0] == expected
        # The write-through repaired the entry.
        assert store.load(cell, "lite") == expected

    def test_truncated_entry_is_reexecuted(self, grid, store):
        cell = _a_cell(grid)
        path = store.save(run_cell(cell), "lite")
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert store.load(cell, "lite") is None

    def test_entry_for_another_spec_is_rejected(self, grid, store):
        cells = list(grid.cells())
        impostor = run_cell(cells[1])
        path = store.path_for(cells[0], "lite")
        path.parent.mkdir(parents=True, exist_ok=True)
        import json

        path.write_text(
            json.dumps(
                {
                    "schema": 1,
                    "trace_detail": "lite",
                    "probe": None,
                    "result": result_to_dict(impostor),
                }
            )
        )
        assert store.load(cells[0], "lite") is None

    def test_missing_entry_is_a_miss(self, grid, store):
        assert store.load(_a_cell(grid), "lite") is None


class TestResultRoundTrip:
    def test_round_trip_is_exact(self, grid):
        for cell in grid.cells():
            result = run_cell(cell)
            assert result_from_dict(result_to_dict(result)) == result

    def test_round_trip_preserves_extras_and_error(self, grid):
        from repro.sweep import CellSpec

        probed = run_cell(
            _a_cell(grid), trace_detail="full", probe="send-classification"
        )
        assert probed.extras
        assert result_from_dict(result_to_dict(probed)) == probed

        bad = CellSpec(
            model="M3",
            f=2,
            n=5,
            algorithm="ftm",
            movement="round-robin",
            attack="split",
            epsilon=1e-3,
            seed=0,
        )
        errored = run_cell(bad)
        assert errored.error is not None
        assert result_from_dict(result_to_dict(errored)) == errored


class TestProbeCaching:
    def test_probed_results_cache_under_their_own_key(self, grid, store):
        cell = _a_cell(grid)
        probed = run_sweep(
            [cell],
            trace_detail="full",
            probe="send-classification",
            cache=store,
        )
        assert store.misses == 1
        plain = run_sweep([cell], trace_detail="full", cache=store)
        assert store.misses == 2  # the probe-less run did not alias
        warm = run_sweep(
            [cell],
            trace_detail="full",
            probe="send-classification",
            cache=store,
        )
        assert store.hits == 1
        assert warm.cells == probed.cells
        assert plain.cells[0].extras == ()


class TestCacheGC:
    """Eviction/compaction of long-lived stores (sweep cache-gc)."""

    def _populate(self, store, grid):
        result = run_sweep(grid, cache=store)
        assert store.misses > 0
        return result

    def test_noop_on_missing_store(self, tmp_path):
        report = CellStore(tmp_path / "nothing").gc()
        assert (report.scanned, report.removed) == (0, 0)

    def test_keeps_current_schema_by_default(self, store, grid):
        self._populate(store, grid)
        report = store.gc()
        assert report.removed == 0
        assert report.kept == report.scanned > 0
        # Everything still serves as a hit afterwards.
        warm = CellStore(store.root)
        run_sweep(grid, cache=warm)
        assert warm.misses == 0

    def test_evicts_superseded_schema_versions(self, store, grid):
        from repro.sweep.cache import SWEEP_SCHEMA_VERSION

        self._populate(store, grid)
        old = store.root / "v0" / "ab"
        old.mkdir(parents=True)
        (old / "deadbeef.json").write_text("{}")
        report = store.gc()
        assert report.removed == 1
        assert not (store.root / "v0").exists()
        assert (store.root / f"v{SWEEP_SCHEMA_VERSION}").exists()

    def test_age_cutoff(self, store, grid):
        import os
        import time

        self._populate(store, grid)
        entries = sorted(store.root.glob("v*/*/*.json"))
        stale = entries[0]
        ancient = time.time() - 10 * 86_400
        os.utime(stale, (ancient, ancient))
        report = store.gc(older_than=5 * 86_400)
        assert report.removed == 1
        assert not stale.exists()
        assert report.kept == len(entries) - 1

    def test_dry_run_deletes_nothing(self, store, grid):
        self._populate(store, grid)
        entries = sorted(store.root.glob("v*/*/*.json"))
        report = store.gc(older_than=0, dry_run=True)
        assert report.dry_run
        assert report.removed == len(entries)
        assert "would remove" in report.describe()
        assert sorted(store.root.glob("v*/*/*.json")) == entries

    def test_orphaned_tmp_files_evicted_after_grace(self, store, grid):
        import os
        import time

        self._populate(store, grid)
        shard_dir = next(iter(sorted(store.root.glob("v*/*/"))))
        orphan = shard_dir / "abc.json.tmp.12345"
        orphan.write_text("partial")
        # Fresh tmp files may be an in-flight atomic write: spared.
        report = store.gc()
        assert orphan.exists()
        assert report.removed == 0
        # Past the grace period they are wreckage: evicted.
        ancient = time.time() - 3_600
        os.utime(orphan, (ancient, ancient))
        report = store.gc()
        assert not orphan.exists()
        assert report.removed == 1

    def test_max_bytes_evicts_oldest_first(self, store, grid):
        import os
        import time

        self._populate(store, grid)
        entries = sorted(store.root.glob("v*/*/*.json"))
        sizes = {path: path.stat().st_size for path in entries}
        total = sum(sizes.values())
        # Age the first three entries so they are the eviction victims.
        base = time.time() - 1_000
        oldest = entries[:3]
        for index, path in enumerate(oldest):
            os.utime(path, (base + index, base + index))
        budget = total - sum(sizes[path] for path in oldest[:2]) - 1
        report = store.gc(max_bytes=budget)
        # Two oldest dropped would still exceed by one byte: three go.
        assert report.removed == 3
        assert all(not path.exists() for path in oldest)
        remaining = sorted(store.root.glob("v*/*/*.json"))
        assert sum(p.stat().st_size for p in remaining) <= budget
        assert report.kept == len(remaining)

    def test_max_bytes_zero_clears_current_entries(self, store, grid):
        self._populate(store, grid)
        report = store.gc(max_bytes=0)
        assert report.kept == 0
        assert not list(store.root.glob("v*/*/*.json"))

    def test_max_bytes_noop_when_under_budget(self, store, grid):
        self._populate(store, grid)
        report = store.gc(max_bytes=10**9)
        assert report.removed == 0
        warm = CellStore(store.root)
        run_sweep(grid, cache=warm)
        assert warm.misses == 0

    def test_max_bytes_honors_dry_run(self, store, grid):
        self._populate(store, grid)
        entries = sorted(store.root.glob("v*/*/*.json"))
        report = store.gc(max_bytes=0, dry_run=True)
        assert report.dry_run and report.removed == len(entries)
        assert sorted(store.root.glob("v*/*/*.json")) == entries

    def test_max_bytes_rejects_negative(self, store):
        with pytest.raises(ValueError, match="max_bytes"):
            store.gc(max_bytes=-1)

    def test_cli_max_bytes(self, store, grid, capsys):
        from repro.experiments.cli import main

        self._populate(store, grid)
        entries = len(list(store.root.glob("v*/*/*.json")))
        code = main(
            ["sweep", "cache-gc", "--cache-dir", str(store.root),
             "--max-bytes", "0", "--dry-run"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert f"would remove {entries}" in out
        code = main(
            ["sweep", "cache-gc", "--cache-dir", str(store.root),
             "--max-bytes", "0"]
        )
        assert code == 0
        assert not list(store.root.glob("v*/*/*.json"))

    def test_foreign_directories_untouched(self, store, grid):
        self._populate(store, grid)
        foreign = store.root / "not-a-version"
        foreign.mkdir()
        (foreign / "keep.txt").write_text("mine")
        store.gc(older_than=0)
        assert (foreign / "keep.txt").exists()

    def test_cli_subcommand(self, store, grid, capsys):
        from repro.experiments.cli import main

        self._populate(store, grid)
        entries = len(list(store.root.glob("v*/*/*.json")))
        code = main(
            ["sweep", "cache-gc", "--cache-dir", str(store.root), "--dry-run",
             "--older-than", "0"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert f"would remove {entries}" in out
        code = main(
            ["sweep", "cache-gc", "--cache-dir", str(store.root),
             "--older-than", "0"]
        )
        assert code == 0
        assert not list(store.root.glob("v*/*/*.json"))


class TestCacheGCFlagComposition:
    """`--max-bytes` + `--older-than` compose age-first; dry runs
    report exactly the bytes a real run frees."""

    def _populate(self, store, grid):
        run_sweep(grid, cache=store)
        return sorted(store.root.glob("v*/*/*.json"))

    def test_age_cutoff_applies_before_size_eviction(self, store, grid):
        import os
        import time

        entries = self._populate(store, grid)
        sizes = {path: path.stat().st_size for path in entries}
        now = time.time()
        # One entry is beyond the age cutoff; make it the *newest* by
        # ... no: make it old for the cutoff but give the survivors a
        # known mtime order so the size victim is unambiguous.
        aged_out = entries[0]
        ancient = now - 10 * 86_400
        os.utime(aged_out, (ancient, ancient))
        survivors = entries[1:]
        base = now - 1_000
        for index, path in enumerate(survivors):
            os.utime(path, (base + index, base + index))
        # Budget: all age-survivors except the oldest one fit exactly.
        budget = sum(sizes[p] for p in survivors[1:])
        report = store.gc(older_than=5 * 86_400, max_bytes=budget)
        # The age cutoff removed one entry, then size eviction removed
        # only the oldest *survivor* -- never double-counting the aged
        # entry against the budget.
        assert report.removed == 2
        assert not aged_out.exists()
        assert not survivors[0].exists()
        assert all(path.exists() for path in survivors[1:])
        assert report.freed_bytes == sizes[aged_out] + sizes[survivors[0]]

    def test_size_budget_ignores_age_evicted_bytes(self, store, grid):
        import os
        import time

        entries = self._populate(store, grid)
        sizes = {path: path.stat().st_size for path in entries}
        now = time.time()
        # Age out ALL but two entries; the survivors fit any budget at
        # least their own size -- even though the store's total is far
        # larger.  If size eviction ran over the full store (bug), the
        # survivors would be evicted too.
        keep = entries[:2]
        ancient = now - 10 * 86_400
        for path in entries[2:]:
            os.utime(path, (ancient, ancient))
        budget = sum(sizes[p] for p in keep)
        report = store.gc(older_than=5 * 86_400, max_bytes=budget)
        assert report.removed == len(entries) - 2
        assert all(path.exists() for path in keep)

    def test_dry_run_reports_real_run_bytes(self, store, grid):
        import os
        import shutil
        import time

        entries = self._populate(store, grid)
        now = time.time()
        aged = entries[:2]
        ancient = now - 10 * 86_400
        for path in aged:
            os.utime(path, (ancient, ancient))
        base = now - 1_000
        for index, path in enumerate(entries[2:]):
            os.utime(path, (base + index, base + index))
        budget = max(path.stat().st_size for path in entries) * 2
        snapshot = store.root.parent / "snapshot"
        shutil.copytree(store.root, snapshot, copy_function=shutil.copy2)

        dry = store.gc(older_than=5 * 86_400, max_bytes=budget, dry_run=True)
        # Nothing was deleted by the dry run...
        assert sorted(store.root.glob("v*/*/*.json")) == entries
        real = store.gc(older_than=5 * 86_400, max_bytes=budget, dry_run=False)
        # ...and its report matches the real pass byte for byte.
        assert dry.freed_bytes == real.freed_bytes
        assert dry.removed == real.removed
        assert dry.kept == real.kept
        assert dry.scanned == real.scanned
        # Snapshot sanity: the real run freed exactly the reported bytes.
        before = sum(
            p.stat().st_size for p in snapshot.glob("v*/*/*.json")
        )
        after = sum(
            p.stat().st_size for p in store.root.glob("v*/*/*.json")
        )
        assert before - after == real.freed_bytes

    def test_dry_run_parity_with_tmp_orphans(self, store, grid):
        import os
        import time

        entries = self._populate(store, grid)
        shard_dir = entries[0].parent
        orphan = shard_dir / "dead.json.tmp.999"
        orphan.write_text("partial")
        ancient = time.time() - 3_600
        os.utime(orphan, (ancient, ancient))
        dry = store.gc(older_than=0, dry_run=True)
        real = store.gc(older_than=0, dry_run=False)
        assert dry.freed_bytes == real.freed_bytes
        assert dry.removed == real.removed == len(entries) + 1
        assert not orphan.exists()

    def test_negative_older_than_rejected(self, store):
        with pytest.raises(ValueError, match="older_than"):
            store.gc(older_than=-1)

    def test_cli_composes_all_three_flags(self, store, grid, capsys):
        import os
        import time

        from repro.experiments.cli import main

        entries = self._populate(store, grid)
        now = time.time()
        ancient = now - 10 * 86_400
        os.utime(entries[0], (ancient, ancient))
        base = now - 1_000
        for index, path in enumerate(entries[1:]):
            os.utime(path, (base + index, base + index))
        budget = sum(p.stat().st_size for p in entries[2:])
        argv = [
            "sweep", "cache-gc", "--cache-dir", str(store.root),
            "--older-than", "5", "--max-bytes", str(budget),
        ]
        code = main(argv + ["--dry-run"])
        dry_out = capsys.readouterr().out
        assert code == 0
        assert "would remove 2" in dry_out
        assert all(path.exists() for path in entries)
        code = main(argv)
        real_out = capsys.readouterr().out
        assert code == 0
        assert "removed 2" in real_out
        # Identical byte totals in both banners.
        dry_kib = dry_out.split(" KiB")[0].rsplit("(", 1)[1]
        real_kib = real_out.split(" KiB")[0].rsplit("(", 1)[1]
        assert dry_kib == real_kib
        assert not entries[0].exists()
        assert not entries[1].exists()

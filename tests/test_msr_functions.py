"""Tests for MSRFunction composition and the concrete instances."""

from __future__ import annotations

import pytest

from repro.msr import (
    Interval,
    MSRFunction,
    SelectAll,
    TrimExtremes,
    ValueMultiset,
    algorithm_names,
    dolev_et_al,
    fault_tolerant_average,
    fault_tolerant_midpoint,
    make_algorithm,
    median_trim,
    register_algorithm,
    simple_mean,
)


def ms(*values):
    return ValueMultiset(values)


class TestMSRFunction:
    def test_pipeline_stages_recorded(self):
        fn = fault_tolerant_average(1)
        app = fn.apply(ms(0, 1, 2, 3, 100))
        assert app.received == ms(0, 1, 2, 3, 100)
        assert app.reduced == ms(1, 2, 3)
        assert app.selected == ms(1, 2, 3)
        assert app.result == 2.0

    def test_call_returns_result(self):
        fn = fault_tolerant_midpoint(0)
        assert fn(ms(0, 1)) == 0.5

    def test_empty_multiset_raises(self):
        with pytest.raises(ValueError, match="empty"):
            fault_tolerant_average(0).apply(ValueMultiset())

    def test_minimum_multiset_size(self):
        assert fault_tolerant_average(2).minimum_multiset_size() == 5
        assert simple_mean().minimum_multiset_size() == 1

    def test_apply_checked_accepts_in_range(self):
        fn = fault_tolerant_average(1)
        app = fn.apply_checked(ms(0, 1, 2), Interval(0.0, 2.0))
        assert app.result == 1.0

    def test_apply_checked_rejects_out_of_range(self):
        fn = simple_mean()
        with pytest.raises(AssertionError, match="P1 violated"):
            fn.apply_checked(ms(0, 0, 100), Interval(0.0, 1.0))

    def test_describe_mentions_stages(self):
        fn = MSRFunction(TrimExtremes(1), SelectAll(), name="X")
        text = fn.describe()
        assert "X" in text and "trim" in text and "all" in text


class TestConcreteAlgorithms:
    def test_ftm_is_midpoint_of_survivors(self):
        fn = fault_tolerant_midpoint(1)
        # survivors of {0,1,2,3,10} are {1,2,3} -> midpoint 2
        assert fn(ms(0, 1, 2, 3, 10)) == 2.0

    def test_fta_is_mean_of_survivors(self):
        fn = fault_tolerant_average(1)
        assert fn(ms(0, 2, 4, 6, 100)) == 4.0

    def test_dolev_selects_every_tau(self):
        fn = dolev_et_al(2)
        # reduce 2 -> {2,3,4,5,6}; select idx 0,2,4 -> {2,4,6}
        assert fn(ms(0, 1, 2, 3, 4, 5, 6, 7, 8)) == 4.0

    def test_dolev_tau_zero_degenerates_to_mean(self):
        assert dolev_et_al(0)(ms(1, 2, 3)) == 2.0

    def test_median_trim(self):
        fn = median_trim(1)
        assert fn(ms(-100, 1, 2, 3, 100)) == 2.0

    def test_simple_mean_is_vulnerable(self):
        # Documented behaviour: one outlier drags the plain mean out of
        # the correct range -- the reason reduction exists.
        fn = simple_mean()
        assert fn(ms(0, 0, 0, 1000)) == 250.0

    def test_unanimous_survivors_fixpoint(self):
        # When the reduced multiset is unanimous every instance returns
        # that value -- the mechanism behind the stall scenarios.
        for factory in (fault_tolerant_midpoint, fault_tolerant_average, dolev_et_al, median_trim):
            fn = factory(1)
            assert fn(ms(0, 5, 5, 5, 9)) == 5.0


class TestRegistry:
    def test_builtins_present(self):
        names = list(algorithm_names())
        for expected in ("ftm", "fta", "dolev", "median-trim"):
            assert expected in names

    def test_make_algorithm_sets_tau(self):
        fn = make_algorithm("ftm", 3)
        assert fn.minimum_multiset_size() == 7

    def test_make_algorithm_case_insensitive(self):
        assert make_algorithm("FTM", 1).name == make_algorithm("ftm", 1).name

    def test_unknown_name_raises_with_catalogue(self):
        with pytest.raises(KeyError, match="known:"):
            make_algorithm("nope", 1)

    def test_register_rejects_duplicates(self):
        with pytest.raises(ValueError, match="already registered"):
            register_algorithm("ftm", fault_tolerant_midpoint)

    def test_register_custom(self):
        register_algorithm(
            "test-custom-instance", lambda tau: fault_tolerant_midpoint(tau)
        )
        assert make_algorithm("test-custom-instance", 1)(ms(0, 1, 2)) == 1.0

"""Algorithm families: registry, Tseng correctness, sweep integration.

Covers the protocol-family abstraction end to end:

* the family registry (resolution, collisions, config validation);
* the re-based Bonomi family (identical objects, identical traces);
* the Tseng family's convergence + validity properties at small ``n``
  across every model, adversary and movement, including the
  equivalence of its distinct-inbox fast path with the per-recipient
  reference (kernel toggles off);
* the M1/M3/M4 identity property (the consistency filter only ever
  fires against unaware cured broadcasts, i.e. under M2);
* the ``family`` axis through ``GridSpec`` / ``CellSpec`` / scenarios /
  the cell cache / the head-to-head experiment.
"""

from __future__ import annotations

import dataclasses

import pytest

import repro
from repro.api import mobile_config
from repro.msr.reduce import IdentityReduction, TrimExtremes
from repro.runtime import (
    BonomiFamily,
    MSRVotingProtocol,
    ProtocolFamily,
    RoundKernel,
    TsengProtocol,
    family_names,
    get_family,
    register_family,
    run_simulation,
)
from repro.runtime.simulator import SynchronousSimulator
from repro.sweep import CellSpec, CellStore, GridSpec, run_cell, run_sweep

ALL_MODELS = ("M1", "M2", "M3", "M4")


def _tseng_lite(config, **kernel_options):
    simulator = SynchronousSimulator(
        config, trace_detail="lite", kernel=RoundKernel(**kernel_options)
    )
    return simulator.run()


class TestRegistry:
    def test_builtin_families_registered(self):
        assert list(family_names()) == ["bonomi", "tseng", "witness"]
        assert isinstance(get_family("bonomi"), BonomiFamily)
        assert get_family("TSENG").name == "tseng"
        assert get_family("witness").requires_complete is False

    def test_unknown_family_is_a_clear_error(self):
        with pytest.raises(KeyError, match="unknown algorithm family 'paxos'"):
            get_family("paxos")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_family(BonomiFamily())

    def test_anonymous_family_rejected(self):
        class Nameless(ProtocolFamily):
            def build_protocol(self, config):  # pragma: no cover
                raise NotImplementedError

        with pytest.raises(ValueError, match="non-empty name"):
            register_family(Nameless())

    def test_config_validates_family(self):
        with pytest.raises(ValueError, match="unknown algorithm family"):
            mobile_config(model="M1", f=1, family="nope")

    def test_family_tag_in_describe_only_off_default(self):
        bonomi = mobile_config(model="M1", f=1)
        tseng = mobile_config(model="M1", f=1, family="tseng")
        assert "family=" not in bonomi.describe()
        assert "family=tseng" in tseng.describe()


class TestBonomiRebase:
    """The default family builds exactly the pre-family protocol."""

    def test_builds_msr_voting_protocol(self):
        config = mobile_config(model="M2", f=1)
        protocol = get_family("bonomi").build_protocol(config)
        assert isinstance(protocol, MSRVotingProtocol)
        assert protocol.function is config.algorithm

    def test_default_family_everywhere(self):
        assert mobile_config(model="M1", f=1).family == "bonomi"
        assert CellSpec(
            model="M1", f=1, n=None, algorithm="ftm", movement="round-robin",
            attack="split", epsilon=1e-3, seed=0,
        ).family == "bonomi"

    def test_predicted_contraction_matches_convergence_module(self):
        from repro.core.convergence import mobile_contraction

        config = mobile_config(model="M1", f=2)
        predicted = get_family("bonomi").predicted_contraction(config)
        assert predicted == mobile_contraction(
            config.algorithm, "M1", config.n, config.f
        ).factor


class TestTsengProperties:
    """Convergence + validity of the Tseng family at small n."""

    @pytest.mark.parametrize("model", ALL_MODELS)
    @pytest.mark.parametrize(
        "attack", ["split", "outlier", "inertia", "noise", "crossfire"]
    )
    def test_satisfies_spec_under_every_model_and_attack(self, model, attack):
        for seed in range(3):
            config = mobile_config(
                model=model, f=2, attack=attack, seed=seed,
                family="tseng", max_rounds=300,
            )
            trace = run_simulation(config, trace_detail="lite")
            verdict = repro.check(trace)
            assert verdict.satisfied, (model, attack, seed, verdict)
            assert trace.terminated, (model, attack, seed)

    @pytest.mark.parametrize("model", ALL_MODELS)
    @pytest.mark.parametrize("movement", ["round-robin", "random", "static"])
    def test_validity_interval_always_holds(self, model, movement):
        config = mobile_config(
            model=model, f=1, movement=movement, seed=11,
            family="tseng", rounds=12,
        )
        trace = run_simulation(config, trace_detail="lite")
        interval = trace.validity_interval()
        for pid, decision in trace.decisions.items():
            assert interval.low - 1e-12 <= decision <= interval.high + 1e-12

    @pytest.mark.parametrize("algorithm", ["ftm", "fta", "dolev"])
    def test_every_msr_algorithm(self, algorithm):
        config = mobile_config(
            model="M2", f=2, algorithm=algorithm, seed=5,
            family="tseng", max_rounds=300,
        )
        trace = run_simulation(config, trace_detail="lite")
        assert repro.check(trace).satisfied

    @pytest.mark.parametrize("model", ["M1", "M3", "M4"])
    def test_identical_to_bonomi_without_unaware_broadcasts(self, model):
        """Only M2's cured nodes broadcast scrambled claims; everywhere
        else the filter is provably inert and the families coincide."""
        for seed in range(4):
            tseng = run_simulation(
                mobile_config(model=model, f=2, seed=seed,
                              family="tseng", rounds=10),
                trace_detail="lite",
            )
            bonomi = run_simulation(
                mobile_config(model=model, f=2, seed=seed, rounds=10),
                trace_detail="lite",
            )
            assert tseng.decisions == bonomi.decisions
            assert tseng.round_extents == bonomi.round_extents

    def test_masks_cured_garbage_under_m2(self):
        """The filter's raison d'etre: M2 outlier runs converge faster."""
        tseng_rounds = []
        bonomi_rounds = []
        for seed in range(4):
            kwargs = dict(
                model="M2", f=3, n=16, attack="outlier",
                seed=seed, max_rounds=300,
            )
            tseng_rounds.append(
                run_simulation(
                    mobile_config(family="tseng", **kwargs), trace_detail="lite"
                ).rounds_executed()
            )
            bonomi_rounds.append(
                run_simulation(
                    mobile_config(**kwargs), trace_detail="lite"
                ).rounds_executed()
            )
        assert sum(tseng_rounds) < sum(bonomi_rounds), (
            tseng_rounds, bonomi_rounds,
        )

    @pytest.mark.parametrize("model", ALL_MODELS)
    @pytest.mark.parametrize(
        "options",
        [
            dict(group_inboxes=False, flat_msr=False),
            dict(group_inboxes=True, flat_msr=False),
            dict(group_inboxes=False, flat_msr=True),
        ],
        ids=["reference", "grouped", "flat"],
    )
    def test_kernel_toggles_bit_identical(self, model, options):
        """The distinct-inbox fast path of the stateful driver agrees
        with its per-recipient object-path reference."""
        for attack in ("split", "outlier", "crossfire"):
            config = mobile_config(
                model=model, f=2, attack=attack, seed=7,
                family="tseng", rounds=10,
            )
            fast = _tseng_lite(config, group_inboxes=True, flat_msr=True)
            other = _tseng_lite(config, **options)
            assert fast.round_extents == other.round_extents
            assert repr(fast.round_extents) == repr(other.round_extents)
            assert fast.decisions == other.decisions

    def test_full_detail_matches_lite_trajectory(self):
        config = mobile_config(model="M2", f=1, family="tseng")
        lite = run_simulation(config, trace_detail="lite")
        full = run_simulation(config, trace_detail="full")
        assert full.decisions == lite.decisions
        assert len(full.rounds) == len(lite.round_extents)
        for extent, record in zip(lite.round_extents, full.rounds):
            diameter = 0.0 if extent is None else extent[1] - extent[0]
            assert record.nonfaulty_diameter_after() == diameter

    def test_full_detail_records_pair_payloads(self):
        config = mobile_config(model="M2", f=1, family="tseng")
        full = run_simulation(config, trace_detail="full")
        record = full.rounds[1]
        assert record.payloads
        for pid, payload in record.payloads.items():
            value, claimed = payload
            outbox = record.sent[pid]
            assert outbox is not None and outbox[0] == value
            # Round 1 broadcasters vouch for round 0 unless an agent
            # scrambled their send-memory in between.
            assert claimed is None or isinstance(claimed, float)

    def test_send_classification_probe_runs_on_stateful_full_traces(self):
        """The Table 1 probe consumes the representative-scalar ``sent``
        matrix, which stateful full traces now populate -- so the probe
        (and the P1/P2 checkers) run for every family, not just bonomi."""
        for family in ("tseng", "witness"):
            cell = CellSpec(
                model="M1", f=2, n=25, algorithm="ftm",
                movement="round-robin", attack="split", epsilon=1e-3,
                seed=3, rounds=8, family=family,
            )
            result = run_cell(
                cell, trace_detail="full", probe="send-classification"
            )
            assert result.error is None
            assert result.p1_ok is True and result.p2_ok is True
            extras = dict(result.extras)
            assert extras["max_cured"] >= 1
            assert "asymmetric" in extras["faulty_classes"]

    def test_adaptive_trim_variants(self):
        protocol = TsengProtocol(9, repro.msr.make_algorithm("ftm", 2))
        protocol.reset(RoundKernel())
        function, evaluate = protocol._variant(1)
        assert isinstance(function.reduction, TrimExtremes)
        assert function.reduction.tau == 1
        assert evaluate is not None
        # The variant table caches by masked count.
        assert protocol._variant(1)[0] is function

    def test_budgetless_reduction_falls_back_to_substitution(self):
        assert IdentityReduction().reduced_by(1) is None
        assert TrimExtremes(3).reduced_by(2) == TrimExtremes(1)
        assert TrimExtremes(1).reduced_by(5) == TrimExtremes(0)
        with pytest.raises(ValueError):
            TrimExtremes(1).reduced_by(-1)

    def test_static_mixed_substrate(self):
        cell = CellSpec(
            model="static", f=3, n=12, algorithm="ftm",
            movement="static", attack="split", epsilon=1e-3, seed=2,
            rounds=12, scenario="static-mixed",
            params={"a": 1, "s": 1, "b": 1}, family="tseng",
        )
        config = cell.to_config()
        assert config.family == "tseng"
        trace = run_simulation(config, trace_detail="lite")
        assert repro.check(trace).satisfied


class TestFamilySweepAxis:
    def test_gridspec_products_families(self):
        grid = GridSpec(models="M1", families=("bonomi", "tseng"), seeds=(0, 1))
        cells = list(grid.cells())
        assert len(grid) == len(cells) == 4
        assert [c.family for c in cells] == [
            "bonomi", "bonomi", "tseng", "tseng",
        ]

    def test_cell_key_and_describe_distinguish_families(self):
        base = dict(
            model="M1", f=1, n=None, algorithm="ftm",
            movement="round-robin", attack="split", epsilon=1e-3, seed=0,
        )
        bonomi = CellSpec(**base)
        tseng = CellSpec(**base, family="tseng")
        assert bonomi.key != tseng.key
        assert "fam=" not in bonomi.describe()
        assert "fam=tseng" in tseng.describe()

    def test_sweep_runs_both_families(self):
        result = repro.sweep_grid(
            models="M2", fs=1, seeds=2, families=("bonomi", "tseng"),
        )
        assert len(result) == 4
        assert result.all_satisfied
        families = {cell.spec.family for cell in result.cells}
        assert families == {"bonomi", "tseng"}

    def test_cache_keys_include_family(self, tmp_path):
        store = CellStore(tmp_path)
        base = dict(
            model="M2", f=1, n=None, algorithm="ftm",
            movement="round-robin", attack="split", epsilon=1e-3, seed=0,
            rounds=5,
        )
        bonomi = CellSpec(**base)
        tseng = CellSpec(**base, family="tseng")
        assert store.cell_key(bonomi, "lite") != store.cell_key(tseng, "lite")
        # Round-trip through the store preserves the family.
        result = run_sweep([tseng], cache=store)
        cached = store.load(tseng, "lite", None)
        assert cached is not None
        assert cached.spec.family == "tseng"
        assert cached == result.cells[0]

    def test_bonomi_cache_payload_unchanged(self):
        """Pre-family cache entries must stay addressable: the default
        family is omitted from the canonical encoding."""
        from repro.sweep.cache import spec_from_dict, spec_to_dict

        cell = CellSpec(
            model="M1", f=1, n=None, algorithm="ftm",
            movement="round-robin", attack="split", epsilon=1e-3, seed=0,
        )
        payload = spec_to_dict(cell)
        assert "family" not in payload
        assert spec_from_dict(payload) == cell
        tseng_payload = spec_to_dict(dataclasses.replace(cell, family="tseng"))
        assert tseng_payload["family"] == "tseng"
        assert spec_from_dict(tseng_payload).family == "tseng"

    def test_lower_bound_scenarios_pin_bonomi(self):
        stall = CellSpec(
            model="M1", f=1, n=None, algorithm="ftm",
            movement="round-robin", attack="split", epsilon=1e-3, seed=0,
            rounds=8, scenario="stall", family="tseng",
        )
        with pytest.raises(ValueError, match="'bonomi' family only"):
            stall.to_config()
        result = run_sweep([stall])
        assert result.cells[0].error is not None

    def test_duplicate_detection_sees_family(self):
        base = dict(
            model="M1", f=1, n=None, algorithm="ftm",
            movement="round-robin", attack="split", epsilon=1e-3, seed=0,
        )
        cells = [CellSpec(**base), CellSpec(**base, family="tseng")]
        assert len(run_sweep(cells)) == 2  # not flagged as duplicates


class TestFamilyComparisonExperiment:
    def test_small_instance_reproduces(self):
        from repro.experiments.family_comparison import run_family_comparison

        result = run_family_comparison(f=2, seeds=(0, 1), max_rounds=200)
        assert result.ok, result.notes
        families = {row[3] for row in result.rows}
        assert families == {"bonomi", "tseng"}
        # M1 control rows are identical between families.
        m1 = {
            (row[1], row[3]): row[4]
            for row in result.rows
            if row[0] == "M1"
        }
        for (attack, family), rounds in m1.items():
            assert rounds == m1[(attack, "bonomi")]
